"""Compiled execution plans: pay per-step interpretation cost at compile time.

The legacy interpreter re-derives per-node facts on every step: name-keyed
dict lookups, schema fetches, string kernel dispatch, ``np.shares_memory``
aliasing scans, refcount bookkeeping, and a fresh allocation per
intermediate. :func:`build_plan_spec` lowers a :class:`~repro.runtime.
program.Program` **once** into a flat instruction stream where all of that
is precomputed:

* every value name is resolved to an integer slot in one registers list
  (feeds, mutable state, and intermediates share the space);
* kernels are referenced by **registry name + variant** — no string
  dispatch or schema lookups at run time, and no live function objects in
  the plan data;
* the state-aliasing materialisation check runs only for instructions that
  both touch mutable state and use a view-capable kernel
  (:data:`repro.kernels.VIEW_OPS`);
* per-instruction free-lists replace runtime refcounting, and the
  transient-byte timeline is simulated at build time (byte-exact against
  the interpreter, hence against ``memory.profile_memory``) so the step
  does zero accounting;
* a :class:`BufferArena` recycles freed intermediate buffers across steps,
  feeding ``out=``-capable kernels so a fixed-shape training step reaches a
  (near-)zero-alloc steady state. Safety is static: only buffers produced
  by fresh-output kernels with no view-op consumers are ever recycled, so a
  recycled buffer can never alias a live value, a returned output, a feed,
  or mutable state.

The lowering is split in two so plans are **portable**:

* :class:`PlanSpec` is a pure, JSON-serializable data object — it names
  kernels, it never holds them. ``to_dict``/``from_dict`` round-trip it
  through deployment artifacts (:mod:`repro.deploy.artifact`), so a plan
  compiled in one process executes in another that never imports the
  compiler.
* :func:`bind_plan` is the thin load-time step that resolves those names
  against the live registries in :mod:`repro.kernels` and produces the
  executable :class:`ExecutionPlan`.

The plan depends only on the graph, schedule, outputs, and state *names* —
never on state values — so one plan is shared by every
:meth:`Program.with_state` tenant overlay (they share the ``meta`` dict the
plan is cached in). Registers and arena live on the executor: concurrent
sessions never share buffers.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Mapping

import numpy as np

from ..errors import ExecutionError
from ..ir.node import Node
from ..ir.ops import get_schema
from ..kernels import (DONATED_INPUTS, DONATING_KERNELS, KERNELS,
                       OUT_ALIAS_SAFE, OUT_KERNELS, VIEW_OPS)

#: arena bucket key: exact (shape, dtype) — fixed-shape steps re-request
#: identical buffers every step, so exact matching recycles everything.
ArenaKey = tuple[tuple[int, ...], Any]

#: bump when the serialized PlanSpec layout changes incompatibly
PLAN_SPEC_VERSION = 1

#: kernel variants an instruction may reference (resolved at bind time)
VARIANT_BASE = "base"
VARIANT_DONATING = "donating"


class BufferArena:
    """Size/dtype-bucketed free-lists of recycled intermediate buffers.

    One arena per executor. ``give`` receives buffers the plan proved
    unaliased at their death; ``take`` hands them back to ``out=``-capable
    instructions. Counters feed the steady-state-allocation metrics.

    ``caps`` bounds each pool at the number of instructions that can
    actually re-request that key (the plan computes this); buffers past the
    cap are dropped to the allocator instead of accumulating — shapes only
    ever produced but never consumed would otherwise grow the pool by a
    fixed amount every step.
    """

    __slots__ = ("_pools", "caps", "takes", "misses", "recycled", "dropped")

    def __init__(self, caps: dict[ArenaKey, int] | None = None) -> None:
        self._pools: dict[ArenaKey, list[np.ndarray]] = {}
        #: per-key pool bound; None = unbounded
        self.caps = caps
        self.takes = 0
        self.misses = 0
        self.recycled = 0
        self.dropped = 0

    def take(self, key: ArenaKey) -> np.ndarray | None:
        pool = self._pools.get(key)
        if pool:
            self.takes += 1
            return pool.pop()
        self.misses += 1
        return None

    def give(self, key: ArenaKey, array: np.ndarray) -> None:
        pool = self._pools.get(key)
        if pool is None:
            pool = self._pools[key] = []
        if self.caps is not None and len(pool) >= self.caps.get(key, 0):
            self.dropped += 1
            return
        self.recycled += 1
        pool.append(array)

    def buffers(self) -> list[np.ndarray]:
        """Snapshot of every pooled buffer (for safety checks/tests)."""
        return [a for pool in self._pools.values() for a in pool]

    def retained_bytes(self) -> int:
        return sum(a.nbytes for a in self.buffers())

    def clear(self) -> None:
        self._pools.clear()


@dataclass(frozen=True)
class InstructionSpec:
    """One lowered node as pure data: slots, names, static decisions.

    The kernel is referenced by registry name (``kernel`` — the op type)
    plus ``variant`` (:data:`VARIANT_BASE` or :data:`VARIANT_DONATING`) and
    ``use_out`` (whether the ``out=`` variant from
    :data:`repro.kernels.OUT_KERNELS` drives this instruction when inputs
    are contiguous). Attributes and input/output names live on the graph
    node ``node`` refers to — the artifact ships the graph anyway, so the
    spec never duplicates them.
    """

    node: str                       #: schedule node name
    kernel: str                     #: kernel registry name (== op type)
    variant: str                    #: base | donating
    input_slots: tuple[int, ...]
    output_slots: tuple[int, ...]
    use_out: bool                   #: bind the out=-writing variant
    out_shape: tuple[int, ...] | None
    out_dtype: str | None
    donate_slot: int                #: dying buffer the out= kernel reuses
    check_state_slots: tuple[int, ...]
    frees: tuple[tuple[int, ArenaKey | None], ...]
    fresh_outputs: int

    def to_dict(self) -> dict[str, Any]:
        return {
            "node": self.node,
            "kernel": self.kernel,
            "variant": self.variant,
            "input_slots": list(self.input_slots),
            "output_slots": list(self.output_slots),
            "use_out": self.use_out,
            "out_shape": list(self.out_shape)
            if self.out_shape is not None else None,
            "out_dtype": self.out_dtype,
            "donate_slot": self.donate_slot,
            "check_state_slots": list(self.check_state_slots),
            "frees": [[slot, _key_to_json(key)] for slot, key in self.frees],
            "fresh_outputs": self.fresh_outputs,
        }

    @classmethod
    def from_dict(cls, doc: dict[str, Any]) -> "InstructionSpec":
        try:
            return cls(
                node=doc["node"],
                kernel=doc["kernel"],
                variant=doc["variant"],
                input_slots=tuple(doc["input_slots"]),
                output_slots=tuple(doc["output_slots"]),
                use_out=bool(doc["use_out"]),
                out_shape=tuple(doc["out_shape"])
                if doc["out_shape"] is not None else None,
                out_dtype=doc["out_dtype"],
                donate_slot=int(doc["donate_slot"]),
                check_state_slots=tuple(doc["check_state_slots"]),
                frees=tuple((int(slot), _key_from_json(key))
                            for slot, key in doc["frees"]),
                fresh_outputs=int(doc["fresh_outputs"]),
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise ExecutionError(
                f"garbled plan instruction spec: {exc!r}") from None


@dataclass(frozen=True)
class PlanSpec:
    """A fully-lowered plan as a pure, serializable data object.

    Everything the executor needs except the kernel functions themselves:
    :func:`bind_plan` resolves those from the registry at load time. The
    spec depends only on graph structure, schedule, outputs, and state
    names, so it is identical whether built in the compiling process or
    reloaded from an artifact.
    """

    num_slots: int
    feed_specs: tuple[tuple[str, int], ...]
    state_bindings: tuple[tuple[int, str], ...]
    output_slots: tuple[tuple[str, int], ...]
    clear_slots: tuple[int, ...]
    arena_caps: tuple[tuple[ArenaKey, int], ...]
    peak_transient_bytes: int
    final_transient_bytes: int
    instructions: tuple[InstructionSpec, ...]

    def to_dict(self) -> dict[str, Any]:
        """JSON-safe encoding (embedded in artifact manifests)."""
        return {
            "plan_version": PLAN_SPEC_VERSION,
            "num_slots": self.num_slots,
            "feed_specs": [[name, slot] for name, slot in self.feed_specs],
            "state_bindings": [[slot, name]
                               for slot, name in self.state_bindings],
            "output_slots": [[name, slot]
                             for name, slot in self.output_slots],
            "clear_slots": list(self.clear_slots),
            "arena_caps": [[_key_to_json(key), count]
                           for key, count in self.arena_caps],
            "peak_transient_bytes": self.peak_transient_bytes,
            "final_transient_bytes": self.final_transient_bytes,
            "instructions": [instr.to_dict() for instr in self.instructions],
        }

    @classmethod
    def from_dict(cls, doc: dict[str, Any]) -> "PlanSpec":
        """Inverse of :meth:`to_dict`.

        Raises:
            ExecutionError: on a version mismatch or structurally garbled
                document.
        """
        version = doc.get("plan_version")
        if version != PLAN_SPEC_VERSION:
            raise ExecutionError(
                f"unsupported plan spec version {version!r} "
                f"(runtime speaks {PLAN_SPEC_VERSION})")
        try:
            return cls(
                num_slots=int(doc["num_slots"]),
                feed_specs=tuple((name, int(slot))
                                 for name, slot in doc["feed_specs"]),
                state_bindings=tuple((int(slot), name)
                                     for slot, name in doc["state_bindings"]),
                output_slots=tuple((name, int(slot))
                                   for name, slot in doc["output_slots"]),
                clear_slots=tuple(doc["clear_slots"]),
                arena_caps=tuple((_key_from_json(key), int(count))
                                 for key, count in doc["arena_caps"]),
                peak_transient_bytes=int(doc["peak_transient_bytes"]),
                final_transient_bytes=int(doc["final_transient_bytes"]),
                instructions=tuple(InstructionSpec.from_dict(entry)
                                   for entry in doc["instructions"]),
            )
        except ExecutionError:
            raise
        except (KeyError, TypeError, ValueError) as exc:
            raise ExecutionError(f"garbled plan spec: {exc!r}") from None

    def required_kernels(self) -> dict[str, set[str]]:
        """Kernel registry names -> the variants this plan binds.

        Variants: ``base``, ``donating``, ``out``. What a runtime must
        provide to execute the plan (the deployment manifest records it).
        """
        needed: dict[str, set[str]] = {}
        for instr in self.instructions:
            variants = needed.setdefault(instr.kernel, set())
            variants.add(instr.variant)
            if instr.use_out:
                variants.add("out")
        return needed


def _key_to_json(key: ArenaKey | None) -> list | None:
    if key is None:
        return None
    shape, dtype = key
    return [list(shape), np.dtype(dtype).name]


def _key_from_json(doc: list | None) -> ArenaKey | None:
    if doc is None:
        return None
    shape, dtype = doc
    return (tuple(int(d) for d in shape), np.dtype(dtype))


class Instruction:
    """One bound node: slots in, slots out, everything else pre-resolved."""

    __slots__ = ("node", "kernel", "attrs", "input_slots", "output_slots",
                 "out_kernel", "out_key", "out_shape", "out_dtype",
                 "donate_slot", "check_state_slots", "frees",
                 "fresh_outputs")

    def __init__(self, node: Node, kernel, attrs, input_slots, output_slots,
                 out_kernel, out_key, out_shape, out_dtype, donate_slot,
                 check_state_slots, frees, fresh_outputs) -> None:
        self.node = node
        self.kernel = kernel
        self.attrs = attrs
        self.input_slots = input_slots
        self.output_slots = output_slots
        #: out=-writing variant (single-output, non-inplace ops only)
        self.out_kernel = out_kernel
        self.out_key = out_key
        self.out_shape = out_shape
        self.out_dtype = out_dtype
        #: slot whose dying buffer the out= kernel writes into (-1: none)
        self.donate_slot = donate_slot
        #: mutable-state slots to scan with shares_memory (view ops only)
        self.check_state_slots = check_state_slots
        #: (slot, arena_key_or_None) freed after this instruction; a key
        #: means the buffer is provably unaliased and returns to the arena
        self.frees = frees
        #: non-inplace outputs allocated fresh when the out= path is not
        #: taken (feeds the steady-state allocation metric)
        self.fresh_outputs = fresh_outputs


class ExecutionPlan:
    """A :class:`PlanSpec` bound to live kernel functions and graph nodes."""

    __slots__ = ("spec", "num_slots", "feed_specs", "state_bindings",
                 "instructions", "output_slots", "clear_slots", "arena_caps",
                 "peak_transient_bytes", "final_transient_bytes")

    def __init__(self, spec, num_slots, feed_specs, state_bindings,
                 instructions, output_slots, clear_slots, arena_caps,
                 peak_transient_bytes, final_transient_bytes) -> None:
        #: the serializable half this plan was bound from
        self.spec = spec
        self.num_slots = num_slots
        #: (name, slot) per graph input, in declaration order
        self.feed_specs = feed_specs
        #: (slot, name) pairs re-bound from program.state at every step
        self.state_bindings = state_bindings
        self.instructions = instructions
        #: (name, slot) per program output
        self.output_slots = output_slots
        #: non-state slots reset after each run (don't pin caller arrays)
        self.clear_slots = clear_slots
        #: per-key pool bounds for this plan's BufferArena instances
        self.arena_caps = arena_caps
        #: static replica of the interpreter's measured transient peak
        self.peak_transient_bytes = peak_transient_bytes
        self.final_transient_bytes = final_transient_bytes

    @property
    def num_instructions(self) -> int:
        return len(self.instructions)


def build_plan_spec(program) -> PlanSpec:
    """Lower ``program`` into a serializable :class:`PlanSpec`.

    Raises:
        ExecutionError: on an op without a registered kernel, or an output
            name nothing produces.
    """
    graph = program.graph
    schedule = program.schedule
    state_names = set(program.state)
    keep = set(program.outputs)

    slots: dict[str, int] = {}

    def slot_of(name: str) -> int:
        slot = slots.get(name)
        if slot is None:
            slot = slots[name] = len(slots)
        return slot

    for name in graph.inputs:
        slot_of(name)
    for name in sorted(state_names):
        slot_of(name)

    producer_op: dict[str, str] = {}
    consumer_ops: dict[str, list[str]] = {}
    for node in schedule:
        for out in node.outputs:
            producer_op[out] = node.op_type
        for inp in node.inputs:
            consumer_ops.setdefault(inp, []).append(node.op_type)

    spec_cache: dict[str, Any] = {}

    def spec(name: str):
        value = spec_cache.get(name)
        if value is None:
            value = spec_cache[name] = graph.spec(name)
        return value

    def recyclable(name: str) -> bool:
        """True when the buffer behind ``name`` is provably unaliased at
        the moment its last consumer retires."""
        op = producer_op.get(name)
        if op is None:
            return False  # feeds and state are caller-owned
        if op in VIEW_OPS or get_schema(op).inplace:
            return False  # may alias another value / mutable state
        if name in keep:
            return False  # returned to the caller, who may hold it
        return all(c not in VIEW_OPS for c in consumer_ops.get(name, ()))

    def arena_key(name: str) -> ArenaKey:
        s = spec(name)
        return (tuple(s.shape), np.dtype(s.dtype.np))

    # --- lower nodes and simulate the interpreter's byte accounting ------
    counts = dict(program.consumer_counts)
    live = set(graph.inputs)
    transient = sum(spec(name).nbytes for name in graph.inputs)
    peak = transient
    instructions: list[InstructionSpec] = []

    for node in schedule:
        op = node.op_type
        if op not in KERNELS:
            raise ExecutionError(f"no kernel registered for op {op!r}")
        schema = get_schema(op)
        inplace = schema.inplace
        try:
            input_slots = tuple(slots[name] for name in node.inputs)
        except KeyError as exc:
            raise ExecutionError(
                f"node {node.name!r} input {exc.args[0]!r} unavailable"
            ) from None
        output_slots = tuple(slot_of(name) for name in node.outputs)

        # The interpreter materialises results aliasing mutable state; only
        # view-capable kernels with state inputs can produce such results.
        check_state_slots = ()
        if not inplace and op in VIEW_OPS:
            check_state_slots = tuple(
                slot_of(name) for name in node.inputs if name in state_names)

        # Accounting, mirroring Executor's interpreter loop exactly.
        for out in node.outputs:
            live.add(out)
            if not inplace:
                transient += spec(out).nbytes
        if transient > peak:
            peak = transient

        frees: list[tuple[int, ArenaKey | None]] = []
        if not inplace:  # dead outputs are released immediately
            for out in node.outputs:
                if counts.get(out, 0) == 0 and out not in keep \
                        and out in live:
                    transient -= spec(out).nbytes
                    live.discard(out)
                    frees.append((slots[out],
                                  arena_key(out) if recyclable(out)
                                  else None))
        dying_inputs: list[str] = []
        for name in node.inputs:
            counts[name] -= 1
            if counts[name] == 0 and name in live \
                    and name not in state_names and name not in keep:
                transient -= spec(name).nbytes
                live.discard(name)
                dying_inputs.append(name)

        # out= + donation: single-output ops with a registered out-variant
        # get a recycled arena buffer; alias-safe ones may instead write
        # straight into a same-shape input dying at this instruction.
        use_out = False
        out_shape = out_dtype = None
        donate_slot = -1
        if not inplace and len(node.outputs) == 1 and op in OUT_KERNELS:
            use_out = True
            out_name = node.outputs[0]
            out_spec = spec(out_name)
            out_shape = tuple(out_spec.shape)
            out_dtype = np.dtype(out_spec.dtype.np).name
            out_key = (out_shape, np.dtype(out_dtype))
            if op in OUT_ALIAS_SAFE:
                for name in dying_inputs:
                    if recyclable(name) and arena_key(name) == out_key:
                        donate_slot = slots[name]
                        break

        variant = VARIANT_BASE
        if op in DONATING_KERNELS:
            clobbered = DONATED_INPUTS[op]
            if all(i < len(node.inputs)
                   and node.inputs[i] in dying_inputs
                   and recyclable(node.inputs[i]) for i in clobbered):
                variant = VARIANT_DONATING

        for name in dying_inputs:
            slot = slots[name]
            if slot == donate_slot:
                # The donated buffer lives on as this node's output.
                frees.append((slot, None))
            else:
                frees.append((slot,
                              arena_key(name) if recyclable(name) else None))

        instructions.append(InstructionSpec(
            node=node.name, kernel=op, variant=variant,
            input_slots=input_slots, output_slots=output_slots,
            use_out=use_out, out_shape=out_shape, out_dtype=out_dtype,
            donate_slot=donate_slot, check_state_slots=check_state_slots,
            frees=tuple(frees),
            fresh_outputs=0 if inplace else len(node.outputs)))

    for name in program.outputs:
        if name not in slots:
            raise ExecutionError(f"output {name!r} is never produced")

    state_slots = {slots[name] for name in state_names if name in slots}
    clear_slots = tuple(slot for name, slot in slots.items()
                        if slot not in state_slots)
    arena_caps: dict[ArenaKey, int] = {}
    for instr in instructions:
        if instr.use_out and instr.donate_slot < 0:
            key = (instr.out_shape, np.dtype(instr.out_dtype))
            arena_caps[key] = arena_caps.get(key, 0) + 1
    return PlanSpec(
        num_slots=len(slots),
        feed_specs=tuple((name, slots[name]) for name in graph.inputs),
        state_bindings=tuple(
            (slots[name], name) for name in sorted(state_names)
            if name in slots),
        output_slots=tuple((name, slots[name]) for name in program.outputs),
        clear_slots=clear_slots,
        arena_caps=tuple(sorted(arena_caps.items(),
                                key=lambda item: repr(item[0]))),
        peak_transient_bytes=peak,
        final_transient_bytes=transient,
        instructions=tuple(instructions),
    )


def bind_plan(spec: PlanSpec, nodes: Mapping[str, Node]) -> ExecutionPlan:
    """Resolve a :class:`PlanSpec` against the live kernel registry.

    ``nodes`` maps schedule node names to their :class:`~repro.ir.node.
    Node` objects (attributes and the observer identity come from there).
    This is the *entire* load-time step — no graph analysis, no compiler.

    Raises:
        ExecutionError: when the spec references a node the schedule lacks,
            a kernel the registry lacks, or a kernel whose op type
            disagrees with the node's.
    """
    instructions: list[Instruction] = []
    for ispec in spec.instructions:
        node = nodes.get(ispec.node)
        if node is None:
            raise ExecutionError(
                f"plan references unknown node {ispec.node!r}")
        if node.op_type != ispec.kernel:
            raise ExecutionError(
                f"plan instruction {ispec.node!r} binds kernel "
                f"{ispec.kernel!r} but the node is {node.op_type!r}")
        if ispec.variant == VARIANT_DONATING:
            kernel = DONATING_KERNELS.get(ispec.kernel)
        elif ispec.variant == VARIANT_BASE:
            kernel = KERNELS.get(ispec.kernel)
        else:
            raise ExecutionError(
                f"unknown kernel variant {ispec.variant!r} for "
                f"{ispec.kernel!r}")
        if kernel is None:
            raise ExecutionError(
                f"runtime lacks {ispec.variant!r} kernel for "
                f"{ispec.kernel!r}")
        out_kernel = out_key = out_shape = out_dtype = None
        if ispec.use_out:
            out_kernel = OUT_KERNELS.get(ispec.kernel)
            if out_kernel is None:
                raise ExecutionError(
                    f"runtime lacks out= kernel for {ispec.kernel!r}")
            out_shape = ispec.out_shape
            out_dtype = np.dtype(ispec.out_dtype)
            out_key = (out_shape, out_dtype)
        instructions.append(Instruction(
            node=node, kernel=kernel, attrs=node.attrs,
            input_slots=ispec.input_slots, output_slots=ispec.output_slots,
            out_kernel=out_kernel, out_key=out_key, out_shape=out_shape,
            out_dtype=out_dtype, donate_slot=ispec.donate_slot,
            check_state_slots=ispec.check_state_slots, frees=ispec.frees,
            fresh_outputs=ispec.fresh_outputs))
    return ExecutionPlan(
        spec=spec,
        num_slots=spec.num_slots,
        feed_specs=spec.feed_specs,
        state_bindings=spec.state_bindings,
        instructions=tuple(instructions),
        output_slots=spec.output_slots,
        clear_slots=spec.clear_slots,
        arena_caps=dict(spec.arena_caps),
        peak_transient_bytes=spec.peak_transient_bytes,
        final_transient_bytes=spec.final_transient_bytes,
    )


def build_plan(program) -> ExecutionPlan:
    """Lower ``program`` and bind the result in one step (in-process use).

    Raises:
        ExecutionError: on an op without a registered kernel, or an output
            name nothing produces.
    """
    return bind_plan(build_plan_spec(program),
                     {node.name: node for node in program.schedule})
