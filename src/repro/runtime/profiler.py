"""Runtime profiling: per-op breakdowns and chrome-trace export.

Two event sources feed one report type:

* :func:`profile_run` — wall-clock timings from the numpy executor
  (the measurement plane),
* :func:`analytical_profile` — per-node costs from the device roofline
  model (the simulation plane; what a kernel-level profiler on the real
  device would show).

Either result renders as a per-op-type summary table or exports to the
``chrome://tracing`` / Perfetto JSON format for timeline inspection.
"""

from __future__ import annotations

import json
from collections import defaultdict
from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from ..devices import DeviceSpec, estimate_latency
from ..ir import Graph
from ..ir.node import Node
from ..obs.chrome import duration_event, trace_document
from .executor import Executor
from .program import Program


@dataclass(frozen=True)
class NodeTiming:
    """One executed (or modelled) kernel."""

    name: str
    op_type: str
    start_us: float
    duration_us: float


@dataclass
class RuntimeProfile:
    """Per-node timings for one iteration."""

    source: str                      # 'executor' or a device key
    timings: list[NodeTiming] = field(default_factory=list)

    @property
    def total_us(self) -> float:
        return sum(t.duration_us for t in self.timings)

    def by_op_type(self) -> dict[str, tuple[int, float]]:
        """op_type -> (count, total microseconds), heaviest first."""
        counts: dict[str, int] = defaultdict(int)
        totals: dict[str, float] = defaultdict(float)
        for t in self.timings:
            counts[t.op_type] += 1
            totals[t.op_type] += t.duration_us
        return {
            op: (counts[op], totals[op])
            for op in sorted(totals, key=lambda o: -totals[o])
        }

    def top(self, n: int = 10) -> list[NodeTiming]:
        """The ``n`` slowest individual kernels."""
        return sorted(self.timings, key=lambda t: -t.duration_us)[:n]

    def to_chrome_trace(self) -> dict:
        """Perfetto/chrome://tracing 'traceEvents' document.

        Shares the serving layer's writer (:mod:`repro.obs.chrome`), so a
        profile saved here and a ``/v1/trace`` export are the same
        dialect and can be diffed or merged event-for-event.
        """
        return trace_document([
            duration_event(
                t.name, cat=t.op_type, ts_us=t.start_us,
                dur_us=t.duration_us,
                args={"op_type": t.op_type, "source": self.source})
            for t in self.timings
        ])

    def save_chrome_trace(self, path: str | Path) -> Path:
        path = Path(path)
        path.write_text(json.dumps(self.to_chrome_trace()))
        return path


def profile_run(program: Program,
                feeds: dict[str, np.ndarray] | None = None,
                warmup: int = 1, repeats: int = 3) -> RuntimeProfile:
    """Measure per-kernel wall time over ``repeats`` runs (median).

    Warmup runs absorb numpy's lazy allocations; medians damp scheduler
    noise. Training programs mutate parameters in place, so warmup and
    repeat runs do advance the model — profile a throwaway program copy
    when that matters.
    """
    if repeats < 1:
        raise ValueError("repeats must be >= 1")
    samples: list[list[tuple[Node, float]]] = []

    for iteration in range(warmup + repeats):
        events: list[tuple[Node, float]] = []
        executor = Executor(program,
                            observer=lambda n, s: events.append((n, s)))
        executor.run(feeds)
        if iteration >= warmup:
            samples.append(events)

    profile = RuntimeProfile(source="executor")
    cursor = 0.0
    for i, (node, _) in enumerate(samples[0]):
        median_s = float(np.median([run[i][1] for run in samples]))
        duration = median_s * 1e6
        profile.timings.append(NodeTiming(
            name=node.name, op_type=node.op_type,
            start_us=cursor, duration_us=duration))
        cursor += duration
    return profile


def analytical_profile(graph: Graph, schedule: list[Node],
                       device: DeviceSpec, **kwargs) -> RuntimeProfile:
    """Per-node latency breakdown from the device cost model.

    Keyword arguments pass through to
    :func:`repro.devices.estimate_latency` (``interpreted``,
    ``kernel_quality``, ...).
    """
    events: list[tuple[str, str, float]] = []
    estimate_latency(graph, schedule, device, events=events, **kwargs)
    profile = RuntimeProfile(source=device.key)
    cursor = 0.0
    for name, op_type, us in events:
        profile.timings.append(NodeTiming(
            name=name, op_type=op_type, start_us=cursor, duration_us=us))
        cursor += us
    return profile
