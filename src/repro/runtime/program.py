"""Compiled programs: a graph plus schedule, state, and bookkeeping.

A :class:`Program` is what the compiler hands the runtime: the transformed
graph, a concrete node schedule, mutable state (parameters and optimizer
buffers, copied once from the graph initializers), and the reference counts
the executor uses to free buffers eagerly.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field, replace
from typing import TYPE_CHECKING, Any

if TYPE_CHECKING:  # pragma: no cover - circular-import guard for hints
    from .plan import ExecutionPlan, PlanSpec

import numpy as np

from ..errors import ExecutionError
from ..ir import Graph
from ..ir.node import Node
from ..ir.ops import get_schema
from ..ir.serialize import canonical_graph_bytes


@dataclass
class Program:
    """An executable training or inference step."""

    graph: Graph
    schedule: list[Node]
    state: dict[str, np.ndarray]
    outputs: list[str]
    #: value name -> number of schedule consumers (for eager freeing)
    consumer_counts: dict[str, int] = field(default_factory=dict)
    #: free-form compiler report (passes applied, savings measured, ...)
    meta: dict[str, Any] = field(default_factory=dict)

    @classmethod
    def from_graph(cls, graph: Graph, schedule: list[Node] | None = None,
                   copy_state: bool = True) -> "Program":
        if schedule is None:
            schedule = graph.topological_order()
        counts: dict[str, int] = {}
        for node in schedule:
            for inp in node.inputs:
                counts[inp] = counts.get(inp, 0) + 1
        state = {
            name: (array.copy() if copy_state else array)
            for name, array in graph.initializers.items()
        }
        return cls(
            graph=graph,
            schedule=list(schedule),
            state=state,
            outputs=list(graph.outputs),
            consumer_counts=counts,
        )

    def plan_spec(self) -> "PlanSpec":
        """The serializable half of the compiled plan.

        Lowered once — through the pass pipeline selected by
        ``meta["plan_passes"]`` (:mod:`repro.runtime.passes`; the compiler
        sets it from ``CompileOptions.plan_passes``) — and cached in
        ``meta``; deployment artifacts embed exactly this object
        (:mod:`repro.deploy.artifact`), so saving a program never re-runs
        the lowering. A spec loaded from an artifact is installed here by
        the loader instead of being rebuilt.
        """
        spec = self.meta.get("__plan_spec__")
        if spec is None:
            from .plan import build_plan_spec

            spec = self.meta.setdefault("__plan_spec__",
                                        build_plan_spec(self))
        return spec

    def attach_plan_spec(self, spec: "PlanSpec") -> None:
        """Install a deserialized :class:`PlanSpec` (artifact load path).

        The next :meth:`plan` call binds it against the kernel registry
        instead of lowering the graph again.
        """
        self.meta["__plan_spec__"] = spec

    def plan(self) -> "ExecutionPlan":
        """The compiled :class:`~repro.runtime.plan.ExecutionPlan`.

        Bound once from :meth:`plan_spec` and cached in ``meta`` — which
        :meth:`with_state` shares across overlays, so every tenant session
        executing one compiled program reuses a single plan. The plan
        depends on state *names* only, never values, which is what makes
        that sharing sound.
        """
        plan = self.meta.get("__plan__")
        if plan is None:
            from .plan import bind_plan

            # setdefault resolves the benign race when two sessions lower
            # the same program concurrently: both plans are identical, one
            # wins, the other is dropped.
            plan = self.meta.setdefault("__plan__", bind_plan(
                self.plan_spec(),
                {node.name: node for node in self.schedule}))
        return plan

    def validate_schedule(self) -> None:
        """Check the schedule is a permutation of the graph in topo order."""
        if len(self.schedule) != len(self.graph.nodes):
            raise ExecutionError(
                f"schedule has {len(self.schedule)} nodes, graph has "
                f"{len(self.graph.nodes)}"
            )
        available = set(self.graph.inputs) | set(self.graph.initializers)
        for node in self.schedule:
            for inp in node.inputs:
                if inp not in available:
                    raise ExecutionError(
                        f"schedule uses {inp!r} before it is produced"
                    )
            available.update(node.outputs)

    @property
    def num_nodes(self) -> int:
        return len(self.schedule)

    def state_bytes(self) -> int:
        return sum(a.nbytes for a in self.state.values())

    def inplace_nodes(self) -> list[Node]:
        return [n for n in self.schedule if get_schema(n.op_type).inplace]

    def fingerprint(self) -> str:
        """Stable identity of the *compiled* artifact.

        Covers the transformed graph structure, the schedule order, and the
        output list — everything that determines what executing this
        program computes, but not the mutable state values (two tenants
        running different weights through one compiled program share a
        fingerprint). Deterministic across processes.
        """
        digest = hashlib.sha256(canonical_graph_bytes(self.graph))
        for node in self.schedule:
            digest.update(node.name.encode())
            digest.update(b"\x00")
        digest.update("|".join(self.outputs).encode())
        return digest.hexdigest()

    def mutable_state_names(self) -> set[str]:
        """State entries that executing one step writes into.

        In-place ``apply_*`` nodes mutate their state-resident inputs (the
        parameter plus optimizer slots / accumulation buffers); everything
        else in ``state`` — frozen weights, folded constants — is read-only.
        This is exactly the set a multi-tenant server must replicate per
        session while sharing the rest (:mod:`repro.serve.sessions`).
        """
        names: set[str] = set()
        for node in self.inplace_nodes():
            names.update(inp for inp in node.inputs if inp in self.state)
        return names

    def with_state(self, overlay: dict[str, np.ndarray]) -> "Program":
        """A view of this program whose state is ``{**state, **overlay}``.

        Graph, schedule, consumer counts, and meta are shared (read-only at
        run time); only the state mapping is rebuilt. In-place kernels
        mutate the overlay's arrays, so callers providing a fresh overlay
        for each tenant get isolated training state over one compiled
        program.
        """
        unknown = set(overlay) - set(self.state)
        if unknown:
            raise ExecutionError(
                f"state overlay names not in program state: {sorted(unknown)}"
            )
        return replace(self, state={**self.state, **overlay})
