"""Runtime: compiled programs and the numpy executor.

The compiler entry points (:func:`repro.runtime.compiler.compile_training`)
live in :mod:`repro.runtime.compiler`; they are re-exported here once the
pass pipeline is assembled.
"""

from .executor import Executor, interpret
from .plan import (BufferArena, ExecutionPlan, FusedLinkSpec, PlanSpec,
                   PrecomputedSpec, bind_plan, build_plan, build_plan_spec)
from .profiler import (NodeTiming, RuntimeProfile, analytical_profile,
                       profile_run)
from .program import Program

__all__ = [
    "BufferArena",
    "ExecutionPlan",
    "Executor",
    "FusedLinkSpec",
    "NodeTiming",
    "PlanSpec",
    "PrecomputedSpec",
    "Program",
    "RuntimeProfile",
    "analytical_profile",
    "bind_plan",
    "build_plan",
    "build_plan_spec",
    "interpret",
    "profile_run",
]
