"""The numpy executor: runs compiled programs and measures real memory.

The executor is deliberately dumb — all intelligence lives in the compiler.
It walks the schedule, dispatches kernels, frees buffers the moment their
reference count drops to zero, and records the observed peak of transient
bytes (which tests cross-check against the analytical profiler).
"""

from __future__ import annotations

import time
from typing import Any, Callable

import numpy as np

from ..errors import ExecutionError
from ..ir import Graph
from ..ir.node import Node
from ..kernels import run_op
from ..ir.ops import get_schema
from .program import Program

#: Per-node observer: (node, seconds) after each kernel completes.
NodeObserver = Callable[[Node, float], None]


class Executor:
    """Executes a :class:`Program` over its mutable state."""

    def __init__(self, program: Program,
                 observer: NodeObserver | None = None) -> None:
        self.program = program
        self.observer = observer
        self.peak_transient_bytes = 0
        self.last_transient_bytes = 0

    def run(self, feeds: dict[str, np.ndarray] | None = None
            ) -> dict[str, np.ndarray]:
        """Execute one step; returns the graph outputs by name."""
        program = self.program
        graph = program.graph
        feeds = dict(feeds or {})
        for name in graph.inputs:
            if name not in feeds:
                raise ExecutionError(f"missing feed for graph input {name!r}")
            expected = graph.spec(name)
            got = np.asarray(feeds[name])
            if tuple(got.shape) != expected.shape:
                raise ExecutionError(
                    f"feed {name!r} has shape {got.shape}, "
                    f"expected {expected.shape}"
                )
            feeds[name] = got.astype(expected.dtype.np, copy=False)

        env: dict[str, np.ndarray] = {}
        env.update(feeds)
        refcounts = dict(program.consumer_counts)
        keep = set(program.outputs)
        # Input batches occupy memory until their last use, exactly as the
        # analytical profiler accounts them.
        transient = sum(array.nbytes for array in feeds.values())
        peak = transient

        for node in program.schedule:
            inputs = []
            state_inputs = []
            for name in node.inputs:
                if name in env:
                    inputs.append(env[name])
                elif name in program.state:
                    inputs.append(program.state[name])
                    state_inputs.append(program.state[name])
                else:
                    raise ExecutionError(
                        f"node {node.name!r} input {name!r} unavailable"
                    )
            began = time.perf_counter() if self.observer else 0.0
            try:
                results = run_op(node.op_type, inputs, node.attrs)
            except ExecutionError:
                raise
            except Exception as exc:  # pragma: no cover - defensive
                raise ExecutionError(
                    f"kernel {node.op_type!r} failed at node "
                    f"{node.name!r}: {exc}"
                ) from exc
            if self.observer:
                self.observer(node, time.perf_counter() - began)

            # Kernels like transpose/reshape return views. A view of a
            # *parameter* would silently observe later in-place optimizer
            # updates (the reorder pass schedules those early), so results
            # aliasing mutable state are materialised.
            if state_inputs and not get_schema(node.op_type).inplace:
                results = [
                    value.copy() if any(np.shares_memory(value, s)
                                        for s in state_inputs) else value
                    for value in results
                ]

            inplace = get_schema(node.op_type).inplace
            for out, value in zip(node.outputs, results):
                env[out] = value
                if not inplace:
                    transient += value.nbytes
            peak = max(peak, transient)

            # Outputs nobody consumes (dead values in unoptimized graphs)
            # are released immediately after production.
            if not inplace:
                for out in node.outputs:
                    if refcounts.get(out, 0) == 0 and out not in keep \
                            and out in env:
                        transient -= env[out].nbytes
                        del env[out]

            # Release inputs (including feeds) whose last consumer just ran.
            for name in node.inputs:
                refcounts[name] -= 1
                if (refcounts[name] == 0 and name in env
                        and name not in program.state
                        and name not in keep):
                    transient -= env[name].nbytes
                    del env[name]

        self.peak_transient_bytes = peak
        self.last_transient_bytes = transient
        outputs = {}
        for name in program.outputs:
            if name in env:
                outputs[name] = env[name]
            elif name in program.state:
                outputs[name] = program.state[name]
            else:
                raise ExecutionError(f"output {name!r} was never produced")
        return outputs


def interpret(graph: Graph, feeds: dict[str, np.ndarray] | None = None,
              copy_state: bool = True) -> dict[str, np.ndarray]:
    """One-shot convenience: build a program for ``graph`` and run it."""
    program = Program.from_graph(graph, copy_state=copy_state)
    return Executor(program).run(feeds)
