"""The numpy executor: runs compiled programs and measures real memory.

Two backends share one feed-validation front door:

* ``"plan"`` (default) — executes the program's compiled
  :class:`~repro.runtime.plan.ExecutionPlan`: slot-indexed registers,
  pre-bound kernels, precomputed free-lists, and a per-executor
  :class:`~repro.runtime.plan.BufferArena` recycling intermediate buffers
  across steps. Transient-byte accounting was simulated at plan-build time
  (byte-exact against the interpreter), so the step itself does none.
* ``"interpreter"`` — the legacy per-node loop, kept as the cross-check
  oracle for the plan path and as the backend of :func:`interpret`. It is
  deliberately dumb: walks the schedule, dispatches kernels by name, frees
  buffers the moment their reference count drops to zero, and records the
  observed peak of transient bytes.

Both backends produce byte-identical outputs, state, and
``peak_transient_bytes`` (tests cross-check against the analytical
profiler).
"""

from __future__ import annotations

import time
from typing import Any, Callable

import numpy as np

from ..errors import ExecutionError
from ..ir import Graph
from ..ir.node import Node
from ..kernels import run_op, workspace
from ..ir.ops import get_schema
from .plan import BufferArena, ExecutionPlan
from .program import Program

#: Per-node observer: (node, seconds) after each kernel completes.
NodeObserver = Callable[[Node, float], None]

#: Per-instruction observer (plan backend only): (instruction, began,
#: ended) in perf_counter seconds — the kernel-level tracing hook, which
#: unlike NodeObserver sees the bound variant actually dispatched.
InstrObserver = Callable[[Any, float, float], None]

BACKENDS = ("plan", "interpreter")


class Executor:
    """Executes a :class:`Program` over its mutable state."""

    def __init__(self, program: Program,
                 observer: NodeObserver | None = None,
                 backend: str = "plan") -> None:
        if backend not in BACKENDS:
            raise ValueError(
                f"unknown executor backend {backend!r}; options: {BACKENDS}")
        self.program = program
        self.observer = observer
        #: opt-in kernel-level tracing hook; None keeps the hot path free
        #: of timing calls (see InstrObserver)
        self.instr_observer: InstrObserver | None = None
        self.backend = backend
        self.peak_transient_bytes = 0
        self.last_transient_bytes = 0
        #: fresh output buffers the last plan-backed run had to allocate
        #: (0 in steady state for fully out=-covered programs)
        self.last_step_fresh_allocs = 0
        #: per-executor recycling pool — sessions never share buffers
        self.arena = BufferArena()
        #: kernel-internal scratch pool (im2col columns, pad buffers);
        #: installed thread-locally around plan runs so kernels recycle
        #: their workspaces without a calling-convention change. Uncapped
        #: (caps=None): pool size is bounded by the kernels' own
        #: take/give discipline plus the per-buffer workspace size cap.
        self.workspace = BufferArena()
        self._registers: list[np.ndarray | None] | None = None
        #: per-executor cache of plan-owned precomputed constants
        #: (slot -> (source state array, transformed value)). Keyed by the
        #: source array's *identity*: frozen state is never written by the
        #: program, so the same array always yields the same bytes, and a
        #: with_state overlay swapping the array in is recomputed.
        self._precomputed: dict[int, tuple[np.ndarray, np.ndarray]] = {}

    @property
    def plan(self) -> ExecutionPlan:
        return self.program.plan()

    def detach(self) -> None:
        """Drop register bindings left over from the last run.

        State slots stay bound in ``_registers`` between steps; callers
        whose state arrays view borrowed memory (e.g. shared-memory slab
        slots in :mod:`repro.deploy.stepworker`) call this after a step
        so the executor does not pin the buffer once the slot is
        released. Costs one list allocation on the next run.
        """
        self._registers = None

    def run(self, feeds: dict[str, np.ndarray] | None = None
            ) -> dict[str, np.ndarray]:
        """Execute one step; returns the graph outputs by name."""
        feeds = self._validate_feeds(feeds)
        if self.backend == "plan":
            return self._run_plan(feeds)
        return self._run_interpreter(feeds)

    def _validate_feeds(self, feeds: dict[str, np.ndarray] | None
                        ) -> dict[str, np.ndarray]:
        """Shape-check, dtype-coerce, and reject unknown feed names."""
        graph = self.program.graph
        feeds = dict(feeds or {})
        for name in graph.inputs:
            if name not in feeds:
                raise ExecutionError(f"missing feed for graph input {name!r}")
            expected = graph.spec(name)
            got = np.asarray(feeds[name])
            if tuple(got.shape) != expected.shape:
                raise ExecutionError(
                    f"feed {name!r} has shape {got.shape}, "
                    f"expected {expected.shape}"
                )
            feeds[name] = got.astype(expected.dtype.np, copy=False)
        if len(feeds) != len(graph.inputs):
            extra = sorted(set(feeds) - set(graph.inputs))
            raise ExecutionError(
                f"unknown feed name(s) {extra}; graph inputs are "
                f"{sorted(graph.inputs)}"
            )
        return feeds

    # -- plan backend --------------------------------------------------------

    def _run_plan(self, feeds: dict[str, np.ndarray]
                  ) -> dict[str, np.ndarray]:
        plan = self.plan
        regs = self._registers
        if regs is None or len(regs) != plan.num_slots:
            regs = self._registers = [None] * plan.num_slots
            self.arena.caps = plan.arena_caps
        state = self.program.state
        # Re-bound every step (not pre-bound at plan build) so the one plan
        # serves every with_state overlay and survives state rebinding.
        for slot, name in plan.state_bindings:
            regs[slot] = state[name]
        for name, slot in plan.feed_specs:
            regs[slot] = feeds[name]
        # Plan-owned constants hoisted from frozen state (e.g. Winograd
        # weight transforms): computed on this executor's first step,
        # republished for free afterwards.
        for slot, name, transform in plan.precomputed:
            source = state[name]
            cached = self._precomputed.get(slot)
            if cached is None or cached[0] is not source:
                cached = (source, transform(source))
                self._precomputed[slot] = cached
            regs[slot] = cached[1]

        # Kernels borrow internal scratch (im2col columns, pad buffers)
        # from this executor's workspace pool for the duration of the run;
        # the interpreter backend deliberately does not install one, so it
        # stays the allocation-naive oracle.
        previous_workspace = workspace.set_arena(self.workspace)
        try:
            fresh_allocs = self._execute_instructions(plan, regs)
        finally:
            workspace.set_arena(previous_workspace)

        self.peak_transient_bytes = plan.peak_transient_bytes
        self.last_transient_bytes = plan.final_transient_bytes
        self.last_step_fresh_allocs = fresh_allocs
        outputs = {name: regs[slot] for name, slot in plan.output_slots}
        for slot in plan.clear_slots:  # don't pin feeds/outputs across steps
            regs[slot] = None
        return outputs

    def _execute_instructions(self, plan: ExecutionPlan, regs: list) -> int:
        """Run the instruction stream over ``regs``; returns fresh allocs."""
        arena = self.arena
        observer = self.observer
        instr_observer = self.instr_observer
        timed = observer is not None or instr_observer is not None
        fresh_allocs = 0
        perf_counter = time.perf_counter
        state = self.program.state
        for instr in plan.instructions:
            inputs = [regs[slot] for slot in instr.input_slots]
            # Scalar-constant folded inputs: spliced from live state (the
            # overlay's value, not a baked copy) at their original
            # positions, so the kernel sees the exact pre-fold input list.
            for pos, name in instr.const_args:
                inputs.insert(pos, state[name])
            began = perf_counter() if timed else 0.0
            try:
                out_fn = instr.out_kernel
                # The out= path requires C-contiguous inputs: ufuncs follow
                # their operands' memory order, so a view-layout input would
                # naturally produce a non-C result, and forcing it into a C
                # buffer shifts downstream BLAS onto different (1-ulp
                # different) code paths. Non-contiguous inputs fall back to
                # the base kernel, preserving bitwise interpreter parity.
                if out_fn is not None and \
                        all(a.flags.c_contiguous for a in inputs):
                    donate = instr.donate_slot
                    buf = regs[donate] if donate >= 0 \
                        else arena.take(instr.out_key)
                    if buf is None:
                        buf = np.empty(instr.out_shape, instr.out_dtype)
                        fresh_allocs += 1
                    elif buf.shape != instr.out_shape:
                        # Byte-bucketed arena: a pooled buffer of another
                        # shape with the same byte count is reshaped into
                        # place — a free view, since only C-contiguous
                        # buffers ever enter the pool.
                        buf = buf.reshape(instr.out_shape)
                    results = (out_fn(inputs, instr.attrs, buf),)
                else:
                    results = instr.kernel(inputs, instr.attrs)
                    fresh_allocs += instr.fresh_outputs
            except ExecutionError:
                raise
            except Exception as exc:  # pragma: no cover - defensive
                raise ExecutionError(
                    f"kernel {instr.node.op_type!r} failed at node "
                    f"{instr.node.name!r}: {exc}"
                ) from exc
            if timed:
                ended = perf_counter()
                if observer is not None:
                    observer(instr.node, ended - began)
                if instr_observer is not None:
                    instr_observer(instr, began, ended)

            # View-capable kernels over mutable state: materialise results
            # aliasing a parameter (same semantics as the interpreter).
            if instr.check_state_slots:
                state_arrays = [regs[s] for s in instr.check_state_slots]
                results = [
                    value.copy() if any(np.shares_memory(value, s)
                                        for s in state_arrays) else value
                    for value in results
                ]

            outs = instr.output_slots
            if len(outs) == 1:
                regs[outs[0]] = results[0]
            else:
                for slot, value in zip(outs, results):
                    regs[slot] = value

            for slot, key in instr.frees:
                if key is not None:
                    value = regs[slot]
                    # Pool only standard-layout buffers: a view-shaped
                    # (non-C) array handed to a later out= instruction
                    # would leak its layout into the result.
                    if value.flags.c_contiguous:
                        arena.give(key, value)
                regs[slot] = None
        return fresh_allocs

    # -- interpreter backend -------------------------------------------------

    def _run_interpreter(self, feeds: dict[str, np.ndarray]
                         ) -> dict[str, np.ndarray]:
        program = self.program

        env: dict[str, np.ndarray] = {}
        env.update(feeds)
        refcounts = dict(program.consumer_counts)
        keep = set(program.outputs)
        fresh_allocs = 0  # every non-inplace output is a fresh buffer here
        # Input batches occupy memory until their last use, exactly as the
        # analytical profiler accounts them.
        transient = sum(array.nbytes for array in feeds.values())
        peak = transient

        for node in program.schedule:
            inputs = []
            state_inputs = []
            for name in node.inputs:
                if name in env:
                    inputs.append(env[name])
                elif name in program.state:
                    inputs.append(program.state[name])
                    state_inputs.append(program.state[name])
                else:
                    raise ExecutionError(
                        f"node {node.name!r} input {name!r} unavailable"
                    )
            began = time.perf_counter() if self.observer else 0.0
            try:
                results = run_op(node.op_type, inputs, node.attrs)
            except ExecutionError:
                raise
            except Exception as exc:  # pragma: no cover - defensive
                raise ExecutionError(
                    f"kernel {node.op_type!r} failed at node "
                    f"{node.name!r}: {exc}"
                ) from exc
            if self.observer:
                self.observer(node, time.perf_counter() - began)

            inplace = get_schema(node.op_type).inplace
            # Kernels like transpose/reshape return views. A view of a
            # *parameter* would silently observe later in-place optimizer
            # updates (the reorder pass schedules those early), so results
            # aliasing mutable state are materialised.
            if state_inputs and not inplace:
                results = [
                    value.copy() if any(np.shares_memory(value, s)
                                        for s in state_inputs) else value
                    for value in results
                ]

            for out, value in zip(node.outputs, results):
                env[out] = value
                if not inplace:
                    transient += value.nbytes
                    fresh_allocs += 1
            peak = max(peak, transient)

            # Outputs nobody consumes (dead values in unoptimized graphs)
            # are released immediately after production.
            if not inplace:
                for out in node.outputs:
                    if refcounts.get(out, 0) == 0 and out not in keep \
                            and out in env:
                        transient -= env[out].nbytes
                        del env[out]

            # Release inputs (including feeds) whose last consumer just ran.
            for name in node.inputs:
                refcounts[name] -= 1
                if (refcounts[name] == 0 and name in env
                        and name not in program.state
                        and name not in keep):
                    transient -= env[name].nbytes
                    del env[name]

        self.peak_transient_bytes = peak
        self.last_transient_bytes = transient
        self.last_step_fresh_allocs = fresh_allocs
        outputs = {}
        for name in program.outputs:
            if name in env:
                outputs[name] = env[name]
            elif name in program.state:
                outputs[name] = program.state[name]
            else:
                raise ExecutionError(f"output {name!r} was never produced")
        return outputs


def interpret(graph: Graph, feeds: dict[str, np.ndarray] | None = None,
              copy_state: bool = True) -> dict[str, np.ndarray]:
    """One-shot convenience: build a program for ``graph`` and run it.

    Uses the legacy interpreter backend — no plan lowering, no arena — so
    it stays the reference oracle for the compiled path.
    """
    program = Program.from_graph(graph, copy_state=copy_state)
    return Executor(program, backend="interpreter").run(feeds)
