"""Reverse-mode differentiation over IR graphs, performed at compile time.

:func:`build_backward` extends a forward graph in place with the nodes that
compute ``d loss / d t`` for every requested tensor ``t``. Two structural
properties fall out of the construction and are load-bearing for the paper's
claims:

* **Backward stops at the deepest trainable tensor.** Gradient flow is only
  materialised for values on a path between a ``wrt`` tensor and the loss,
  so when only the last blocks are trainable, no ``dX`` chain is emitted for
  the early layers (paper Figure 5: "backpropagation stops here").
* **Channel-sparse weight gradients slice the saved activation**, so the
  large input feature map is not retained for backward (paper Figure 3).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable

import numpy as np

from ..errors import AutodiffError
from ..ir import Graph, GraphBuilder
from .rules import GRAD_RULES, NON_DIFFERENTIABLE, GradientContext


@dataclass
class BackwardResult:
    """Outcome of :func:`build_backward`."""

    graph: Graph
    #: requested tensor name -> gradient value name
    grads: dict[str, str] = field(default_factory=dict)
    #: weight name -> k for channel-sparse gradients (subset of requested)
    slice_k: dict[str, int] = field(default_factory=dict)


def build_backward(
    graph: Graph,
    loss: str,
    wrt: Iterable[str],
    slice_k: dict[str, int] | None = None,
) -> BackwardResult:
    """Extend ``graph`` with gradient computation for ``wrt`` tensors.

    Args:
        graph: forward graph; modified in place (clone first if needed).
        loss: name of the scalar (or any-shape) loss value.
        wrt: tensors whose gradients are needed (parameters and/or inputs).
        slice_k: optional channel-sparse map ``weight name -> k`` (paper's
            sub-layer sparse backpropagation).

    Returns:
        A :class:`BackwardResult` with the gradient value name per tensor.

    Raises:
        AutodiffError: when a needed op has no gradient rule, or a requested
            tensor cannot influence the loss.
    """
    wrt = list(dict.fromkeys(wrt))
    slice_k = dict(slice_k or {})
    for name in wrt:
        if name not in graph.values:
            raise AutodiffError(f"unknown tensor in wrt: {name!r}")
    if loss not in graph.values:
        raise AutodiffError(f"unknown loss value {loss!r}")
    for name in slice_k:
        if name not in wrt:
            raise AutodiffError(
                f"slice_k given for {name!r} which is not in wrt"
            )

    order = graph.topological_order()

    # Forward propagation of "requires gradient".
    requires: set[str] = set(wrt)
    for node in order:
        if node.op_type in NON_DIFFERENTIABLE:
            continue
        if any(inp in requires for inp in node.inputs):
            requires.update(node.outputs)

    if loss not in requires:
        raise AutodiffError(
            "loss does not depend on any requested tensor; nothing to train"
        )

    builder = GraphBuilder(graph=graph)
    ctx = GradientContext(builder, slice_k=slice_k)

    # Seed: d loss / d loss = 1.
    loss_spec = graph.spec(loss)
    seed = builder.initializer(
        builder.fresh("grad_seed"),
        np.ones(loss_spec.shape, dtype=loss_spec.dtype.np),
    )

    # Accumulated gradient per value (summed lazily on second contribution).
    grad_of: dict[str, str] = {loss: seed}

    for node in reversed(order):
        if node.op_type in NON_DIFFERENTIABLE:
            continue
        if not any(inp in requires for inp in node.inputs):
            continue
        out_grads = [grad_of.get(out) for out in node.outputs]
        if all(g is None for g in out_grads):
            continue
        if len(node.outputs) != 1:
            raise AutodiffError(
                f"op {node.op_type!r} has multiple outputs; unsupported"
            )
        rule = GRAD_RULES.get(node.op_type)
        if rule is None:
            raise AutodiffError(f"no gradient rule for op {node.op_type!r}")
        input_grads = rule(ctx, node, out_grads[0])
        if len(input_grads) != len(node.inputs):
            raise AutodiffError(
                f"rule for {node.op_type!r} returned {len(input_grads)} "
                f"gradients for {len(node.inputs)} inputs"
            )
        for inp, grad in zip(node.inputs, input_grads):
            if grad is None or inp not in requires:
                continue
            # Mixed precision: gradients live in the dtype of the value they
            # differentiate (fp16 models backpropagate in fp16).
            want = graph.spec(inp).dtype
            if graph.spec(grad).dtype != want:
                grad = builder.emit("cast", [grad], {"dtype": want.value})
            if inp in grad_of:
                grad_of[inp] = builder.add(grad_of[inp], grad)
            else:
                grad_of[inp] = grad

    result = BackwardResult(graph=graph, slice_k=dict(slice_k))
    for name in wrt:
        grad = grad_of.get(name)
        if grad is None:
            raise AutodiffError(
                f"tensor {name!r} does not influence the loss"
            )
        result.grads[name] = grad
        builder.mark_output(grad)
    return result
