"""Per-operator gradient rules.

Each rule takes the forward node and the gradient of its output and returns
one gradient value name per input (``None`` where no gradient flows). Rules
emit *inference* ops through the shared :class:`GradientContext` builder —
the property that lets inference-only backends run training (paper §2.5).

Channel-sparse updates (paper §2.6, "Sub-layer Sparse Backpropagation") are
implemented here for ``matmul`` and ``conv2d``: when the weight appears in
``ctx.slice_k``, the rule slices the *input activation* to the first ``k``
input channels/features before computing the weight gradient, so only the
small slice — not the full activation — must survive until backward.
"""

from __future__ import annotations

from typing import Callable, Optional

import numpy as np

from ..errors import AutodiffError
from ..ir import GraphBuilder
from ..ir.node import Node

# Rule signature: (ctx, node, grad_of_output) -> [grad_or_None per input]
Rule = Callable[["GradientContext", Node, str], list[Optional[str]]]

GRAD_RULES: dict[str, Rule] = {}

#: Ops through which no gradient flows (masks, indices, in-place updates).
NON_DIFFERENTIABLE = {"step", "sign", "equal", "onehot",
                      "quantize_linear", "dequantize_linear",
                      "conv2d_i8", "matmul_i8", "add_i8",
                      "global_avg_pool_i8",
                      "apply_sgd", "apply_adam", "apply_lion"}


def rule(name: str) -> Callable[[Rule], Rule]:
    def wrap(fn: Rule) -> Rule:
        GRAD_RULES[name] = fn
        return fn

    return wrap


class GradientContext:
    """Shared state for gradient emission: the builder plus scheme info."""

    def __init__(self, builder: GraphBuilder,
                 slice_k: dict[str, int] | None = None) -> None:
        self.b = builder
        self.slice_k = dict(slice_k or {})

    def shape(self, name: str) -> tuple[int, ...]:
        return self.b.shape(name)

    def scalar(self, value: float) -> str:
        return self.b.constant(np.float32(value), hint="c")

    def unbroadcast(self, grad: str, target: tuple[int, ...]) -> str:
        """Reduce a broadcasted gradient back to the operand's shape."""
        gshape = self.shape(grad)
        if gshape == tuple(target):
            return grad
        extra = len(gshape) - len(target)
        if extra > 0:
            grad = self.b.reduce_sum(grad, axes=tuple(range(extra)))
            gshape = self.shape(grad)
        axes = tuple(
            i for i, (g, t) in enumerate(zip(gshape, target))
            if t == 1 and g != 1
        )
        if axes:
            grad = self.b.reduce_sum(grad, axes=axes, keepdims=True)
        if self.shape(grad) != tuple(target):
            grad = self.b.reshape(grad, target)
        return grad


# ---------------------------------------------------------------------------
# Elementwise arithmetic
# ---------------------------------------------------------------------------

@rule("add")
def _add_grad(ctx, node, g):
    a, b = node.inputs
    return [ctx.unbroadcast(g, ctx.shape(a)), ctx.unbroadcast(g, ctx.shape(b))]


@rule("sub")
def _sub_grad(ctx, node, g):
    a, b = node.inputs
    return [
        ctx.unbroadcast(g, ctx.shape(a)),
        ctx.unbroadcast(ctx.b.neg(g), ctx.shape(b)),
    ]


@rule("mul")
def _mul_grad(ctx, node, g):
    a, b = node.inputs
    return [
        ctx.unbroadcast(ctx.b.mul(g, b), ctx.shape(a)),
        ctx.unbroadcast(ctx.b.mul(g, a), ctx.shape(b)),
    ]


@rule("div")
def _div_grad(ctx, node, g):
    a, b = node.inputs
    ga = ctx.unbroadcast(ctx.b.div(g, b), ctx.shape(a))
    quotient = ctx.b.div(a, ctx.b.mul(b, b))
    gb = ctx.unbroadcast(ctx.b.neg(ctx.b.mul(g, quotient)), ctx.shape(b))
    return [ga, gb]


@rule("neg")
def _neg_grad(ctx, node, g):
    return [ctx.b.neg(g)]


@rule("maximum")
def _maximum_grad(ctx, node, g):
    a, b = node.inputs
    y = node.outputs[0]
    ga = ctx.b.mul(g, ctx.b.emit("equal", [y, a]))
    gb = ctx.b.mul(g, ctx.b.emit("equal", [y, b]))
    return [ctx.unbroadcast(ga, ctx.shape(a)), ctx.unbroadcast(gb, ctx.shape(b))]


@rule("minimum")
def _minimum_grad(ctx, node, g):
    return _maximum_grad(ctx, node, g)


@rule("exp")
def _exp_grad(ctx, node, g):
    return [ctx.b.mul(g, node.outputs[0])]


@rule("log")
def _log_grad(ctx, node, g):
    return [ctx.b.div(g, node.inputs[0])]


@rule("sqrt")
def _sqrt_grad(ctx, node, g):
    two_y = ctx.b.mul(ctx.scalar(2.0), node.outputs[0])
    return [ctx.b.div(g, two_y)]


@rule("abs")
def _abs_grad(ctx, node, g):
    return [ctx.b.mul(g, ctx.b.emit("sign", [node.inputs[0]]))]


@rule("cast")
def _cast_grad(ctx, node, g):
    # Mixed-precision boundary: the gradient casts back to the input dtype.
    source = ctx.b.graph.spec(node.inputs[0]).dtype
    return [ctx.b.emit("cast", [g], {"dtype": source.value})]


# ---------------------------------------------------------------------------
# Activations (gradients built from inference primitives)
# ---------------------------------------------------------------------------

@rule("fake_quant")
def _fake_quant_grad(ctx, node, g):
    """Straight-through estimator (standard QAT): the rounding step is
    treated as identity inside the representable range and blocks the
    gradient outside it, where the forward clamps."""
    (x,) = node.inputs
    b = ctx.b
    bits = int(node.attrs.get("bits", 8))
    qmin, qmax = -(2 ** (bits - 1)), 2 ** (bits - 1) - 1
    scale = np.asarray(node.attrs["scale"], dtype=np.float32)
    zp = np.asarray(node.attrs.get("zero_point", 0), dtype=np.float32)
    lo = (qmin - zp) * scale
    hi = (qmax - zp) * scale
    axis = node.attrs.get("axis")
    if axis is not None and lo.ndim:
        shape = [1] * len(ctx.shape(x))
        shape[int(axis)] = lo.shape[0]
        lo, hi = lo.reshape(shape), hi.reshape(shape)
    lo_c = b.initializer("fq.lo", lo.astype(np.float32))
    hi_c = b.initializer("fq.hi", hi.astype(np.float32))
    inside_lo = b.emit("step", [b.sub(x, lo_c)])
    inside_hi = b.emit("step", [b.sub(hi_c, x)])
    return [b.mul(g, b.mul(inside_lo, inside_hi))]


@rule("relu")
def _relu_grad(ctx, node, g):
    mask = ctx.b.emit("step", [node.inputs[0]])
    return [ctx.b.mul(g, mask)]


@rule("relu6")
def _relu6_grad(ctx, node, g):
    x = node.inputs[0]
    below = ctx.b.emit("step", [x])
    headroom = ctx.b.sub(ctx.scalar(6.0), x)
    above = ctx.b.emit("step", [headroom])
    return [ctx.b.mul(g, ctx.b.mul(below, above))]


@rule("sigmoid")
def _sigmoid_grad(ctx, node, g):
    y = node.outputs[0]
    one_minus = ctx.b.sub(ctx.scalar(1.0), y)
    return [ctx.b.mul(g, ctx.b.mul(y, one_minus))]


@rule("tanh")
def _tanh_grad(ctx, node, g):
    y = node.outputs[0]
    sech2 = ctx.b.sub(ctx.scalar(1.0), ctx.b.mul(y, y))
    return [ctx.b.mul(g, sech2)]


@rule("gelu")
def _gelu_grad(ctx, node, g):
    # d/dx of the tanh-approximated GELU, expressed as elementwise primitives
    # (the fusion pass later collapses this chain for the cost model).
    x = node.inputs[0]
    b = ctx.b
    c_half = ctx.scalar(0.5)
    c_a = ctx.scalar(float(np.sqrt(2.0 / np.pi)))
    c_b = ctx.scalar(0.044715)
    c_3b = ctx.scalar(3 * 0.044715)
    one = ctx.scalar(1.0)
    x2 = b.mul(x, x)
    x3 = b.mul(x2, x)
    inner = b.mul(c_a, b.add(x, b.mul(c_b, x3)))
    t = b.emit("tanh", [inner])
    one_plus_t = b.add(one, t)
    sech2 = b.sub(one, b.mul(t, t))
    dinner = b.mul(c_a, b.add(one, b.mul(c_3b, x2)))
    left = b.mul(c_half, one_plus_t)
    right = b.mul(b.mul(b.mul(c_half, x), sech2), dinner)
    return [b.mul(g, b.add(left, right))]


# ---------------------------------------------------------------------------
# Shape manipulation
# ---------------------------------------------------------------------------

@rule("reshape")
def _reshape_grad(ctx, node, g):
    return [ctx.b.reshape(g, ctx.shape(node.inputs[0]))]


@rule("transpose")
def _transpose_grad(ctx, node, g):
    perm = tuple(node.attrs["perm"])
    inverse = tuple(int(np.argsort(perm)[i]) for i in range(len(perm)))
    return [ctx.b.transpose(g, inverse)]


@rule("slice")
def _slice_grad(ctx, node, g):
    in_shape = ctx.shape(node.inputs[0])
    axis = int(node.attrs["axis"])
    start = int(node.attrs["start"])
    end = min(int(node.attrs["end"]), in_shape[axis])
    pads = [(0, 0)] * len(in_shape)
    pads[axis] = (start, in_shape[axis] - end)
    return [ctx.b.emit("pad", [g], {"pads": tuple(pads)})]


@rule("concat")
def _concat_grad(ctx, node, g):
    axis = int(node.attrs["axis"])
    grads = []
    offset = 0
    for inp in node.inputs:
        width = ctx.shape(inp)[axis]
        grads.append(ctx.b.slice(g, axis, offset, offset + width))
        offset += width
    return grads


@rule("pad")
def _pad_grad(ctx, node, g):
    in_shape = ctx.shape(node.inputs[0])
    out = g
    for axis, (lo, _hi) in enumerate(node.attrs["pads"]):
        lo = int(lo)
        out = ctx.b.slice(out, axis, lo, lo + in_shape[axis])
    return [out]


@rule("broadcast_to")
def _broadcast_grad(ctx, node, g):
    return [ctx.unbroadcast(g, ctx.shape(node.inputs[0]))]


# ---------------------------------------------------------------------------
# Reductions
# ---------------------------------------------------------------------------

def _restore_keepdims(ctx, node, g) -> str:
    """Reshape a reduced gradient back to the keepdims form of the input."""
    in_shape = ctx.shape(node.inputs[0])
    axes = node.attrs.get("axes")
    axes = tuple(range(len(in_shape))) if axes is None else tuple(axes)
    if not node.attrs.get("keepdims", False):
        keep_shape = tuple(
            1 if i in axes else d for i, d in enumerate(in_shape)
        )
        g = ctx.b.reshape(g, keep_shape)
    return g


@rule("reduce_sum")
def _reduce_sum_grad(ctx, node, g):
    in_shape = ctx.shape(node.inputs[0])
    g = _restore_keepdims(ctx, node, g)
    return [ctx.b.broadcast_to(g, in_shape)]


@rule("reduce_mean")
def _reduce_mean_grad(ctx, node, g):
    in_shape = ctx.shape(node.inputs[0])
    axes = node.attrs.get("axes")
    axes = tuple(range(len(in_shape))) if axes is None else tuple(axes)
    count = int(np.prod([in_shape[a] for a in axes])) or 1
    g = _restore_keepdims(ctx, node, g)
    scaled = ctx.b.mul(g, ctx.scalar(1.0 / count))
    return [ctx.b.broadcast_to(scaled, in_shape)]


@rule("reduce_max")
def _reduce_max_grad(ctx, node, g):
    x = node.inputs[0]
    in_shape = ctx.shape(x)
    g = _restore_keepdims(ctx, node, g)
    y = _restore_keepdims(ctx, node, node.outputs[0])
    mask = ctx.b.emit("equal", [x, ctx.b.broadcast_to(y, in_shape)])
    return [ctx.b.mul(ctx.b.broadcast_to(g, in_shape), mask)]


# ---------------------------------------------------------------------------
# Linear algebra
# ---------------------------------------------------------------------------

def _swap_last(rank: int) -> tuple[int, ...]:
    perm = list(range(rank))
    perm[-1], perm[-2] = perm[-2], perm[-1]
    return tuple(perm)


@rule("matmul")
def _matmul_grad(ctx, node, g):
    if len(node.inputs) != 2 or node.attrs.get("activation") not in (None, "none"):
        raise AutodiffError(
            "autodiff must run before fusion: fused matmul has no rule"
        )
    a, w = node.inputs
    a_shape, w_shape = ctx.shape(a), ctx.shape(w)
    b = ctx.b
    # dA = G @ Wᵀ
    da = b.matmul(g, b.transpose(w, _swap_last(len(w_shape))))
    da = ctx.unbroadcast(da, a_shape)
    # dW: collapse leading batch dims of A and G, optionally channel-sliced.
    k = ctx.slice_k.get(w)
    if len(w_shape) == 2:
        a2 = b.reshape(a, (-1, a_shape[-1])) if len(a_shape) > 2 else a
        g2 = b.reshape(g, (-1, w_shape[-1])) if len(a_shape) > 2 else g
        if k is not None:
            # Paper Fig. 3: save only X[:, :k]; dW covers W[:k, :].
            a2 = b.slice(a2, 1, 0, k)
        dw = b.matmul(b.transpose(a2, (1, 0)), g2)
    else:
        if k is not None:
            raise AutodiffError("channel-sparse matmul requires a 2-D weight")
        dw = b.matmul(b.transpose(a, _swap_last(len(a_shape))), g)
        dw = ctx.unbroadcast(dw, w_shape)
    return [da, dw]


@rule("conv2d")
def _conv2d_grad(ctx, node, g):
    if len(node.inputs) != 2 or node.attrs.get("activation") not in (None, "none"):
        raise AutodiffError(
            "autodiff must run before fusion: fused conv2d has no rule"
        )
    x, w = node.inputs
    x_shape, w_shape = ctx.shape(x), ctx.shape(w)
    stride = node.attrs.get("stride", 1)
    padding = node.attrs.get("padding", 0)
    groups = int(node.attrs.get("groups", 1))
    b = ctx.b
    dx = b.emit("conv2d_dx", [g, w], {
        "stride": stride, "padding": padding, "groups": groups,
        "input_shape": x_shape,
    })
    k = ctx.slice_k.get(w)
    x_for_dw = x
    if k is not None:
        if groups != 1:
            raise AutodiffError("channel-sparse update needs groups == 1")
        x_for_dw = b.slice(x, 1, 0, k)
    dw = b.emit("conv2d_dw", [x_for_dw, g], {
        "stride": stride, "padding": padding, "groups": groups,
        "kernel_hw": (w_shape[2], w_shape[3]),
    })
    return [dx, dw]


@rule("bias_add")
def _bias_add_grad(ctx, node, g):
    axis = int(node.attrs.get("axis", 1))
    rank = len(ctx.shape(node.inputs[0]))
    axes = tuple(i for i in range(rank) if i != axis)
    return [g, ctx.b.reduce_sum(g, axes=axes)]


# ---------------------------------------------------------------------------
# Pooling / normalization / softmax
# ---------------------------------------------------------------------------

@rule("maxpool2d")
def _maxpool_grad(ctx, node, g):
    return [ctx.b.emit("maxpool2d_grad", [node.inputs[0], g], dict(node.attrs))]


@rule("avgpool2d")
def _avgpool_grad(ctx, node, g):
    attrs = dict(node.attrs)
    attrs["input_shape"] = ctx.shape(node.inputs[0])
    return [ctx.b.emit("avgpool2d_grad", [g], attrs)]


@rule("global_avg_pool")
def _gap_grad(ctx, node, g):
    n, c, h, w = ctx.shape(node.inputs[0])
    scaled = ctx.b.mul(g, ctx.scalar(1.0 / (h * w)))
    expanded = ctx.b.reshape(scaled, (n, c, 1, 1))
    return [ctx.b.broadcast_to(expanded, (n, c, h, w))]


@rule("softmax")
def _softmax_grad(ctx, node, g):
    axis = int(node.attrs.get("axis", -1))
    rank = len(ctx.shape(node.inputs[0]))
    axis = axis % rank
    y = node.outputs[0]
    inner = ctx.b.reduce_sum(ctx.b.mul(g, y), axes=(axis,), keepdims=True)
    return [ctx.b.mul(y, ctx.b.sub(g, inner))]


@rule("log_softmax")
def _log_softmax_grad(ctx, node, g):
    axis = int(node.attrs.get("axis", -1))
    rank = len(ctx.shape(node.inputs[0]))
    axis = axis % rank
    soft = ctx.b.emit("softmax", [node.inputs[0]], {"axis": axis})
    total = ctx.b.reduce_sum(g, axes=(axis,), keepdims=True)
    return [ctx.b.sub(g, ctx.b.mul(soft, total))]


@rule("layernorm")
def _layernorm_grad(ctx, node, g):
    x, gamma, _beta = node.inputs
    b = ctx.b
    rank = len(ctx.shape(x))
    eps = float(node.attrs.get("eps", 1e-5))
    mean = b.reduce_mean(x, axes=(rank - 1,), keepdims=True)
    centered = b.sub(x, mean)
    var = b.reduce_mean(b.mul(centered, centered), axes=(rank - 1,),
                        keepdims=True)
    rstd = b.div(ctx.scalar(1.0), b.emit("sqrt", [b.add(var, ctx.scalar(eps))]))
    xhat = b.mul(centered, rstd)
    lead_axes = tuple(range(rank - 1))
    dgamma = b.reduce_sum(b.mul(g, xhat), axes=lead_axes)
    dbeta = b.reduce_sum(g, axes=lead_axes)
    dxhat = b.mul(g, gamma)
    m1 = b.reduce_mean(dxhat, axes=(rank - 1,), keepdims=True)
    m2 = b.reduce_mean(b.mul(dxhat, xhat), axes=(rank - 1,), keepdims=True)
    dx = b.mul(rstd, b.sub(b.sub(dxhat, m1), b.mul(xhat, m2)))
    return [dx, dgamma, dbeta]


@rule("rmsnorm")
def _rmsnorm_grad(ctx, node, g):
    x, gamma = node.inputs
    b = ctx.b
    rank = len(ctx.shape(x))
    eps = float(node.attrs.get("eps", 1e-6))
    ms = b.reduce_mean(b.mul(x, x), axes=(rank - 1,), keepdims=True)
    rinv = b.div(ctx.scalar(1.0), b.emit("sqrt", [b.add(ms, ctx.scalar(eps))]))
    xhat = b.mul(x, rinv)
    dgamma = b.reduce_sum(b.mul(g, xhat), axes=tuple(range(rank - 1)))
    dxhat = b.mul(g, gamma)
    proj = b.reduce_mean(b.mul(dxhat, xhat), axes=(rank - 1,), keepdims=True)
    dx = b.mul(rinv, b.sub(dxhat, b.mul(xhat, proj)))
    return [dx, dgamma]


@rule("embedding")
def _embedding_grad(ctx, node, g):
    table, ids = node.inputs
    rows = ctx.shape(table)[0]
    dtable = ctx.b.emit("embedding_grad", [ids, g], {"num_rows": rows})
    return [dtable, None]
