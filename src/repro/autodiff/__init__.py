"""Compile-time automatic differentiation.

PockEngine derives the backward graph ahead of time (paper Figure 7): the
rules in :mod:`repro.autodiff.rules` emit ordinary inference ops, and
:func:`build_backward` stitches them into the forward graph, stopping at the
deepest tensor that requires a gradient.
"""

from .engine import BackwardResult, build_backward
from .rules import GRAD_RULES, NON_DIFFERENTIABLE, GradientContext

__all__ = [
    "BackwardResult",
    "GRAD_RULES",
    "GradientContext",
    "NON_DIFFERENTIABLE",
    "build_backward",
]
