"""Int8 on-device fine-tuning: the full TinyEngine-style MCU pipeline.

Walks the complete integer training story the paper's MCU backend relies
on (§4.3 "Microcontrollers", building on reference [41]):

1. calibrate activation ranges on a few representative batches,
2. quantization-aware training with weights stored on the int8 grid —
   which stalls until QAS rescales the gradients,
3. convert the tuned model to a pure int8 deployment graph,
4. check the int8 model agrees with the float one and measure what int8
   buys on the STM32F746 (latency via the device cost model, memory via
   the static arena planner).

Run:  python examples/int8_mcu_finetune.py
"""

import numpy as np

from repro.data import vision_task
from repro.devices import estimate_latency, get_device
from repro.memory import plan_arena, profile_memory
from repro.models import build_model
from repro.quant import (apply_qas, collect_ranges, insert_fake_quant,
                         int8_grid_training_graph, quantize_inference_graph)
from repro.report import render_table
from repro.runtime import Executor
from repro.runtime.compiler import (CompileOptions, compile_inference,
                                    compile_training)
from repro.train import SGD

STEPS = 150
BATCH = 8


def accuracy(program, feeds_name, images, labels):
    executor = Executor(program)
    logits = executor.run({feeds_name: images})[program.outputs[0]]
    return float((logits.argmax(1) == labels).mean())


def main():
    rng = np.random.default_rng(0)
    mcu = get_device("stm32f746")
    forward = build_model("mcunet_micro", batch=BATCH, num_classes=2)
    x_name = forward.inputs[0]
    resolution = forward.spec(x_name).shape[-1]
    task = vision_task("vww", resolution=resolution,
                       n_train=BATCH * 48, n_test=128)

    # -- 1. calibrate ------------------------------------------------------
    calib = [{x_name: images}
             for images, _ in task.batches(BATCH, rng, steps=4)]
    ranges = collect_ranges(forward, calib)
    print(f"Calibrated {len(ranges)} activation ranges "
          f"on {len(calib)} batches")

    # -- 2. int8-grid QAT with QAS ----------------------------------------
    qat = insert_fake_quant(forward, ranges)
    grid = int8_grid_training_graph(qat)
    program = compile_training(grid, optimizer=SGD(0.08))
    n_scaled = apply_qas(program.graph)
    print(f"QAS rescaled {n_scaled} int8-grid parameters")
    executor = Executor(program)
    losses = []
    for images, labels in task.batches(BATCH, rng, steps=STEPS):
        out = executor.run({x_name: images,
                            program.meta["labels"]: labels})
        losses.append(float(out[program.meta["loss"]]))
    print(f"QAT loss: {losses[0]:.3f} -> {losses[-1]:.3f} "
          f"over {len(losses)} steps")

    # -- 3. deploy as pure int8 -------------------------------------------
    tuned = forward.clone()
    for name in tuned.trainable:
        if name in program.state:
            value = program.state[name]
            if name in grid.metadata["int8_grid_params"]:
                # grid weights store W/s (per-channel); undo with the
                # same scale constant the training graph used
                value = value * program.state[f"{name}.scale"]
            tuned.initializers[name] = value.astype(np.float32)
    ranges_tuned = collect_ranges(tuned, calib)
    int8 = quantize_inference_graph(tuned, ranges_tuned)

    test_x, test_y = task.x_test, task.y_test
    float_prog = compile_inference(
        tuned, options=CompileOptions(materialize_state=True))
    # the int8 graph expects the train batch size; evaluate in chunks
    accs = {"fp32": [], "int8": []}
    int8_prog = compile_inference(
        int8, options=CompileOptions(materialize_state=True))
    for start in range(0, len(test_y) - BATCH + 1, BATCH):
        chunk = slice(start, start + BATCH)
        accs["fp32"].append(accuracy(
            float_prog, x_name, test_x[chunk], test_y[chunk]))
        accs["int8"].append(accuracy(
            int8_prog, int8.inputs[0], test_x[chunk], test_y[chunk]))
    print(f"Test accuracy — fp32: {np.mean(accs['fp32']):.2%}, "
          f"int8: {np.mean(accs['int8']):.2%}")

    # -- 4. what int8 buys on the MCU -------------------------------------
    rows = []
    for label, graph in (("fp32", tuned), ("int8", int8)):
        prog = compile_inference(graph, options=CompileOptions(
            device=mcu, materialize_state=False, winograd=False))
        latency = estimate_latency(prog.graph, prog.schedule, mcu)
        arena = plan_arena(prog.graph, prog.schedule)
        resident = profile_memory(prog.graph, prog.schedule).resident_bytes
        rows.append([
            label, f"{latency.total_ms:.1f}ms",
            f"{arena.arena_bytes / 1024:.1f}KB",
            f"{resident / 1024:.1f}KB",
            "yes" if arena.arena_bytes + resident <= mcu.ram_bytes
            else "NO (OOM)",
        ])
    print()
    print(render_table(
        ["Precision", "latency", "activation arena", "weights",
         "fits 320KB?"], rows,
        title=f"MCUNet-micro inference on {mcu.name} (batch {BATCH})"))


if __name__ == "__main__":
    main()
