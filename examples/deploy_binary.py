"""Compile -> freeze -> ship: the slim-binary deployment story.

Compiles an MCUNet training step three ways (full backprop, the paper's
sparse scheme, and the sparse scheme in int8), freezes each into a
deployable artifact, reloads them with the minimal runtime, and prints
the flash budget each binary needs — kernels linked, code bytes, weights,
arena — next to the footprint of shipping a host-language framework
instead (paper Table 1 "Run without Host Language" and §2.1's >300MB).

Run:  python examples/deploy_binary.py
"""

import tempfile
from pathlib import Path

import numpy as np

from repro.deploy import (FRAMEWORK_BINARY_BYTES, estimate_binary_size,
                          load_artifact, save_artifact)
from repro.models import build_model, paper_scheme
from repro.quant import collect_ranges, quantize_inference_graph
from repro.report import render_table
from repro.runtime import Program
from repro.runtime.compiler import compile_training
from repro.train import SGD


def human(nbytes: float) -> str:
    for unit in ("B", "KB", "MB", "GB"):
        if nbytes < 1024:
            return f"{nbytes:.1f}{unit}"
        nbytes /= 1024
    return f"{nbytes:.1f}TB"


def main():
    rng = np.random.default_rng(0)
    forward = build_model("mcunet_micro", batch=2, num_classes=2)
    feeds = {forward.inputs[0]: rng.standard_normal(
        forward.spec(forward.inputs[0]).shape).astype(np.float32)}

    programs = {
        "train, full BP": compile_training(forward, optimizer=SGD(0.05)),
        "train, sparse BP": compile_training(
            forward, optimizer=SGD(0.05), scheme=paper_scheme(forward)),
        "infer, int8": Program.from_graph(quantize_inference_graph(
            forward, collect_ranges(forward, [feeds]))),
    }

    rows = []
    with tempfile.TemporaryDirectory() as root:
        for label, program in programs.items():
            path = Path(root) / label.replace(" ", "_").replace(",", "")
            save_artifact(program, path)
            deployed = load_artifact(path)
            deployed.run({**feeds, **(
                {program.meta["labels"]: np.zeros(2, np.int64)}
                if "labels" in deployed.meta else {})})
            report = estimate_binary_size(deployed.graph,
                                          deployed.program.schedule)
            disk = sum(f.stat().st_size for f in path.iterdir())
            rows.append([
                label, report.num_kernels, human(report.code_bytes),
                human(report.weight_bytes), human(deployed.arena_bytes),
                human(disk),
            ])
    print(render_table(
        ["Artifact", "kernels", "code", "weights", "arena", "on disk"],
        rows, title="PockEngine artifacts (MCUNet-micro)"))

    print()
    ref = [[name, human(size)]
           for name, size in sorted(FRAMEWORK_BINARY_BYTES.items(),
                                    key=lambda kv: -kv[1])]
    print(render_table(["Runtime", "install footprint"], ref,
                       title="...versus shipping a framework"))
    print("\nEvery artifact above reloaded and executed with the minimal "
          "runtime\n(kernel registry + executor; no compiler, no autodiff, "
          "no Python host\nassumed on device).")


if __name__ == "__main__":
    main()
