"""LoRA vs sparse backpropagation: the Table 5 trade-off, end to end.

Fine-tunes the same pre-trained micro-Llama three ways on the built-in
instruction corpus — full backprop, real rank-4 LoRA adapters, and the
paper's sparse scheme — then compares:

* held-out loss (quality: all three should land close),
* backward depth and compiled-graph size (why LoRA is *not* faster:
  its backward still reaches block 0),
* simulated iteration latency and memory on Jetson AGX Orin for the
  full-size 7B graphs,
* the LoRA merge: adapters fold back into the base weights for free.

Run:  python examples/lora_vs_sparse.py
"""

import numpy as np

from repro.baselines import FRAMEWORKS, simulate_training
from repro.data import instruction_batches
from repro.devices import get_device
from repro.models import build_model, paper_scheme
from repro.report import render_table
from repro.runtime import interpret
from repro.runtime.compiler import compile_training
from repro.sparse import (LoRAConfig, full_update, inject_lora, lora_scheme,
                          merge_lora)
from repro.train import Adam, Lion, Trainer, load_checkpoint, \
    snapshot_weights

SEQ = 24
BATCH = 4


def pretrain(forward):
    _, batches, heldout = instruction_batches(
        seq_len=SEQ, batch_size=BATCH, steps=150, seed=0)
    program = compile_training(forward, optimizer=Adam(2e-3),
                               scheme=full_update(forward))
    trainer = Trainer(program, forward, input_name="ids")
    trainer.fit(batches)
    return snapshot_weights(program, forward), heldout


def heldout_loss(trainer, x_test, y_test):
    losses = [trainer.mean_loss(x_test[i:i + BATCH], y_test[i:i + BATCH])
              for i in range(0, len(x_test) - BATCH + 1, BATCH)]
    return float(np.mean(losses))


def main():
    forward = build_model("llama_micro", batch=BATCH, seq_len=SEQ)
    print("Pre-training micro-Llama on the instruction corpus...")
    checkpoint, (x_test, y_test) = pretrain(forward)

    rows = []
    lora_graph = None
    lora_program = None
    for method in ("full", "sparse", "lora"):
        _, batches, _ = instruction_batches(
            seq_len=SEQ, batch_size=BATCH, steps=80, seed=1)
        load_checkpoint(forward, checkpoint)
        if method == "lora":
            graph = inject_lora(forward, LoRAConfig(rank=4, alpha=8.0))
            scheme = lora_scheme(graph)
        else:
            graph = forward
            scheme = full_update(forward) if method == "full" \
                else paper_scheme(forward)
        program = compile_training(graph, optimizer=Adam(1e-3),
                                   scheme=scheme)
        trainer = Trainer(program, graph, input_name="ids")
        trainer.fit(batches)
        if method == "lora":
            lora_graph, lora_program = graph, program

        updates = sum(1 for n in program.graph.nodes
                      if n.op_type.startswith("apply_"))
        rows.append([method, f"{heldout_loss(trainer, x_test, y_test):.3f}",
                     len(program.graph.nodes), updates])
    print(render_table(
        ["Method", "held-out loss", "train-graph nodes", "updated tensors"],
        rows, title="Micro-Llama fine-tuning quality"))

    # -- why LoRA doesn't speed up iteration: the 7B cost picture ---------
    print("\nSimulating full-size LlamaV2-7B on Jetson AGX Orin...")
    llama = build_model("llama7b", batch=1, seq_len=512)
    llama_lora = inject_lora(llama, LoRAConfig(rank=8, alpha=16.0))
    orin = get_device("jetson_orin")
    pe = FRAMEWORKS["pockengine"]
    sims = {
        "full BP": simulate_training(llama, pe, orin, full_update(llama),
                                     Lion(1e-4), "transformer"),
        "LoRA r=8": simulate_training(llama_lora, pe, orin,
                                      lora_scheme(llama_lora), Lion(1e-4),
                                      "transformer"),
        "sparse BP": simulate_training(llama, pe, orin, paper_scheme(llama),
                                       Lion(1e-4), "transformer"),
    }
    table = [[name, f"{r.latency_ms / 1000:.2f}s",
              f"{r.memory_mb / 1024:.1f}GB",
              f"{512 / (r.latency_ms / 1000):.0f} tok/s"]
             for name, r in sims.items()]
    print(render_table(["Method", "iter latency", "memory", "throughput"],
                       table, title="LlamaV2-7B, one iteration (PockEngine)"))
    print("LoRA cuts memory (small optimizer state) but must backprop to "
          "block 0;\nsparse BP prunes the backward depth and wins latency "
          "too.")

    # -- merge adapters for deployment -------------------------------------
    for name in lora_graph.initializers:
        if name in lora_program.state:
            lora_graph.initializers[name] = lora_program.state[name]
    merged = merge_lora(lora_graph)
    ids = x_test[:BATCH]
    a = interpret(lora_graph, {"ids": ids})[lora_graph.outputs[0]]
    b = interpret(merged, {"ids": ids})[merged.outputs[0]]
    print(f"\nAdapter merge: {len(lora_graph.nodes)} -> "
          f"{len(merged.nodes)} nodes, max logit drift "
          f"{np.abs(a - b).max():.2e} (free at inference).")


if __name__ == "__main__":
    main()
