"""Training under 320 KB of SRAM: the paper's microcontroller story.

Compiles MCUNet training for the STM32F746 budget and prints the static
arena plan per update scheme — full backprop does not fit; bias-only and
the paper's sparse scheme do. Also shows the simulated latency comparison
against projected TF-Lite-Micro (paper Figure 9c).

Run:  python examples/mcu_training.py
"""

from repro.baselines import (FRAMEWORKS, simulate_inference_projection,
                             simulate_training)
from repro.devices import get_device
from repro.memory import plan_arena, profile_memory
from repro.models import build_model, paper_scheme
from repro.report import render_table
from repro.runtime.compiler import CompileOptions, compile_training
from repro.sparse import bias_only, full_update
from repro.train import SGD


def main():
    mcu = get_device("stm32f746")
    sram_bytes = int(mcu.ram_mb * 1024 * 1024)
    forward = build_model("mcunet_micro", batch=1)

    print(f"Target: {mcu.name} - {sram_bytes // 1024} KB SRAM\n")
    rows = []
    for name, scheme in (("Full BP", full_update(forward)),
                         ("Bias only", bias_only(forward)),
                         ("Sparse BP", paper_scheme(forward))):
        program = compile_training(
            forward, optimizer=SGD(0.05), scheme=scheme,
            options=CompileOptions(materialize_state=False))
        plan = plan_arena(program.graph, program.schedule)
        plan.validate(program.graph)
        profile = profile_memory(program.graph, program.schedule)
        total = plan.arena_bytes + profile.resident_bytes
        rows.append([
            name,
            f"{plan.arena_bytes / 1024:.1f}KB",
            f"{profile.resident_bytes / 1024:.1f}KB",
            f"{total / 1024:.1f}KB",
            "yes" if total <= sram_bytes else "NO (OOM)",
            len(program.graph.nodes),
        ])
    print(render_table(
        ["Scheme", "activation arena", "weights+state", "total",
         "fits in SRAM?", "nodes"], rows,
        title="Static arena planning per update scheme"))

    print("\nSimulated training throughput (paper Figure 9c):")
    projected = simulate_inference_projection(
        forward, FRAMEWORKS["tflite_micro"], mcu)
    pe = FRAMEWORKS["pockengine"]
    full = simulate_training(forward, pe, mcu, scheme=full_update(forward))
    sparse = simulate_training(forward, pe, mcu,
                               scheme=paper_scheme(forward))
    print(render_table(
        ["Engine", "images/sec"],
        [["TF-Lite Micro (projected)", f"{projected.throughput_per_s:.3f}"],
         ["PockEngine full-BP", f"{full.throughput_per_s:.3f}"],
         ["PockEngine sparse-BP", f"{sparse.throughput_per_s:.3f}"]]))


if __name__ == "__main__":
    main()
