"""Fine-tuning a chatbot in a pocket: the paper's Section 5 story.

1. Pre-trains llama_micro on the built-in instruction corpus (the Alpaca
   stand-in), then fine-tunes with Full-BP and Sparse-BP and compares
   held-out perplexity.
2. Generates a response greedily from the fine-tuned model through the
   compiled inference program.
3. Prints the simulated Jetson AGX Orin Table-5 row for the full-size
   LlamaV2-7B graph (PyTorch vs PockEngine, full vs sparse vs LoRA).

Run:  python examples/chatbot_finetune.py
"""

import dataclasses

import numpy as np

from repro.baselines import FRAMEWORKS, simulate_training
from repro.data import instruction_batches
from repro.data.instruct import BOS, SEP, build_corpus, build_tokenizer
from repro.devices import get_device
from repro.models import build_model, lora_like_scheme, paper_scheme
from repro.report import render_table
from repro.runtime import Executor
from repro.runtime.compiler import compile_inference, compile_training
from repro.sparse import full_update
from repro.train import (Adam, Lion, Trainer, load_checkpoint, perplexity,
                         snapshot_weights)

SEQ = 24


def generate(forward, state, tok, prompt: str, max_new: int = 10) -> str:
    """Greedy decoding through the compiled inference program."""
    program = compile_inference(forward)
    for key in program.state:
        if key in state:
            program.state[key] = state[key]
    executor = Executor(program)
    batch = program.graph.spec("ids").shape[0]
    ids = [tok.vocab[BOS]] + tok.encode(prompt) + [tok.vocab[SEP]]
    for _ in range(max_new):
        window = ids[-SEQ:]
        padded = window + [0] * (SEQ - len(window))
        # The program is compiled for a fixed batch; tile the prompt row.
        feed = np.repeat(np.asarray([padded], dtype=np.int64), batch,
                         axis=0)
        logits = executor.run({"ids": feed})[program.outputs[0]]
        nxt = int(logits[0, len(window) - 1].argmax())
        if nxt == tok.vocab.get("<eos>"):
            break
        ids.append(nxt)
    reply = ids[len(tok.encode(prompt)) + 2:]
    return tok.decode(reply)


def main():
    forward = build_model("llama_micro", batch=4, seq_len=SEQ)
    tok, batches, (x_test, y_test) = instruction_batches(
        seq_len=SEQ, batch_size=4, steps=220, seed=0)

    print("Pre-training llama_micro on the instruction corpus ...")
    pre = compile_training(forward, optimizer=Adam(2e-3),
                           scheme=full_update(forward))
    pre_trainer = Trainer(pre, forward, input_name="ids")
    pre_trainer.fit(batches)
    checkpoint = snapshot_weights(pre, forward)

    def heldout(trainer):
        losses = [trainer.mean_loss(x_test[i:i + 4], y_test[i:i + 4])
                  for i in range(0, len(x_test) - 3, 4)]
        return float(np.mean(losses))

    print("\nFine-tuning full vs sparse from the checkpoint ...")
    trainers = {}
    for name, scheme in (("full", full_update(forward)),
                         ("sparse", paper_scheme(forward))):
        _, more, _ = instruction_batches(seq_len=SEQ, batch_size=4,
                                         steps=100, seed=1)
        load_checkpoint(forward, checkpoint)
        program = compile_training(forward, optimizer=Adam(1e-3),
                                   scheme=scheme)
        trainer = Trainer(program, forward, input_name="ids")
        trainer.fit(more)
        nll = heldout(trainer)
        trainers[name] = (program, nll)
        print(f"  {name:6s}: held-out loss {nll:.3f} "
              f"(ppl {perplexity(nll):.2f})")

    prompt = "does the cat likes apples ?"
    program, _ = trainers["sparse"]
    print(f"\nprompt: {prompt!r}")
    print(f"sparse-tuned reply: "
          f"{generate(forward, program.state, tok, prompt)!r}")

    print("\nSimulated Table-5 row (LlamaV2-7B on Jetson AGX Orin):")
    big = build_model("llama7b", batch=1, seq_len=512)
    orin = get_device("jetson_orin")
    pt = FRAMEWORKS["pytorch"]
    pe = FRAMEWORKS["pockengine"]
    pt_lora = dataclasses.replace(pt, key="pytorch_lora",
                                  sparse_mode="pruned")
    rows = []
    for label, fw, scheme in (
        ("PyTorch FT-Full", pt, full_update(big)),
        ("PyTorch LoRA", pt_lora, lora_like_scheme(big)),
        ("PockEngine FT-Full", pe, full_update(big)),
        ("PockEngine Sparse", pe, paper_scheme(big)),
    ):
        sim = simulate_training(big, fw, orin, scheme=scheme,
                                optimizer=Lion(1e-4),
                                model_family="transformer")
        rows.append([label, f"{sim.latency_ms / 1000:.2f}s",
                     f"{sim.memory_mb / 1024:.1f}GB",
                     f"{512 / (sim.latency_ms / 1000):.0f} tok/s"])
    print(render_table(["Setup", "iter latency", "memory", "speed"], rows))


if __name__ == "__main__":
    main()
