"""Quickstart: compile and run a sparse-backpropagation training step.

Builds a small CNN, compiles three training programs (full backprop,
bias-only, and a channel-sparse scheme), trains each on a synthetic task,
and prints the compiled-graph sizes, measured peak memory, and accuracy —
the whole PockEngine story in ~80 lines.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import (Conv2d, InputSpec, Linear, Sequential, Trainer,
                   UpdateScheme, compile_training, trace)
from repro.frontend import GlobalAvgPool
from repro.sparse import bias_only, full_update
from repro.train import Adam


def build_model(rng):
    head = Linear(16, 4, rng=rng)
    head.meta["classifier"] = True
    return Sequential(
        Conv2d(3, 12, 3, padding=1, activation="relu", rng=rng),
        Conv2d(12, 16, 3, padding=1, activation="relu", rng=rng),
        GlobalAvgPool(),
        head,
    )


def make_batch(rng, prototypes, batch=8, noise=0.35):
    labels = rng.integers(0, len(prototypes), batch)
    images = prototypes[labels] + noise * rng.standard_normal(
        (batch,) + prototypes.shape[1:])
    return images.astype(np.float32), labels.astype(np.int64)


def main():
    rng = np.random.default_rng(0)
    model = build_model(rng)
    forward = trace(model, [InputSpec("x", (8, 3, 8, 8))], name="quickcnn")
    prototypes = rng.standard_normal((4, 3, 8, 8)).astype(np.float32)

    schemes = {
        "full backprop": full_update(forward),
        "bias only": bias_only(forward),
        "channel-sparse": UpdateScheme("sparse", {
            "1.weight": 0.5, "1.bias": 1.0,   # half the conv2 input channels
            "3.weight": 1.0, "3.bias": 1.0,   # classifier head
        }),
    }

    print(f"{'scheme':16s} {'nodes':>6s} {'peak KB':>8s} "
          f"{'final loss':>11s} {'accuracy':>9s}")
    for name, scheme in schemes.items():
        program = compile_training(forward, optimizer=Adam(5e-3),
                                   scheme=scheme)
        trainer = Trainer(program, forward)
        loss = None
        for _ in range(120):
            loss = trainer.step(*make_batch(rng, prototypes))
        x_test, y_test = make_batch(rng, prototypes, batch=64)
        acc = trainer.evaluate(x_test, y_test, batch_size=8)
        report = program.meta["report"]
        print(f"{name:16s} {report.num_nodes:6d} "
              f"{report.peak_transient_bytes / 1024:8.1f} "
              f"{loss:11.4f} {acc:9.2%}")

    print("\nSparse schemes compile to smaller graphs and lower peak "
          "memory while reaching comparable accuracy - the PockEngine "
          "claim, end to end.")


if __name__ == "__main__":
    main()
