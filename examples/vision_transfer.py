"""Vision transfer learning on the edge: the paper's Table 2 story.

Pre-trains MobileNetV2-micro on the synthetic source domain, then
fine-tunes on a downstream task under full, bias-only, and the paper's
sparse scheme; alongside accuracy, prints the simulated Raspberry Pi 4
latency/memory for each scheme, so the cost-quality trade-off (paper
Figure 2) is visible in one table.

Run:  python examples/vision_transfer.py
"""

import numpy as np

from repro.baselines import FRAMEWORKS, simulate_training
from repro.data import vision_source, vision_task
from repro.devices import get_device
from repro.models import build_model, paper_scheme
from repro.report import render_table
from repro.runtime.compiler import compile_training
from repro.sparse import bias_only, full_update
from repro.train import Adam, Trainer, load_checkpoint, snapshot_weights


def main():
    forward = build_model("mobilenetv2_micro", batch=8, num_classes=10)
    source = vision_source(n_train=256)
    print("Pre-training MobileNetV2-micro on the source domain ...")
    program = compile_training(forward, optimizer=Adam(3e-3),
                               scheme=full_update(forward))
    trainer = Trainer(program, forward)
    trainer.fit(source.batches(8, np.random.default_rng(0), 260))
    src_acc = trainer.evaluate(source.x_test, source.y_test)
    print(f"  source accuracy: {src_acc:.2%}")
    checkpoint = snapshot_weights(program, forward)

    task = vision_task("flowers", n_train=256, n_test=128)
    device = get_device("raspberry_pi_4")
    pockengine = FRAMEWORKS["pockengine"]

    rows = []
    for name, scheme in (("Full BP", full_update(forward)),
                         ("Bias only", bias_only(forward)),
                         ("Sparse BP", paper_scheme(forward))):
        load_checkpoint(forward, checkpoint)
        ft = compile_training(forward, optimizer=Adam(3.5e-3), scheme=scheme)
        ft_trainer = Trainer(ft, forward)
        ft_trainer.fit(task.batches(8, np.random.default_rng(1), 320))
        acc = ft_trainer.evaluate(task.x_test, task.y_test)
        sim = simulate_training(forward, pockengine, device, scheme=scheme)
        rows.append([name, f"{acc:.2%}",
                     f"{sim.latency_ms:.0f}ms",
                     f"{sim.throughput_per_s:.1f} img/s",
                     f"{sim.memory_mb:.0f}MB",
                     ft.meta["report"].num_nodes])
    print()
    print(render_table(
        ["Scheme", "downstream acc", "iter latency (Pi4, sim)",
         "throughput", "memory", "graph nodes"], rows,
        title="Transfer to 'flowers' — accuracy vs on-device cost"))


if __name__ == "__main__":
    main()
