"""Searching for a sparse-update scheme (paper §3.1, Eq. 1).

Runs the full pipeline on MobileNetV2-micro:

1. sensitivity analysis — fine-tune one candidate tensor at a time and
   record its accuracy contribution,
2. evolutionary search — maximise summed contribution under a memory
   budget,
3. verification — fine-tune with the found scheme and compare against the
   hand-crafted paper scheme and full backprop.

Run:  python examples/scheme_search.py
"""

import numpy as np

from repro.data import vision_source, vision_task
from repro.models import build_model, paper_scheme
from repro.report import render_table
from repro.runtime.compiler import compile_training
from repro.sparse import (SearchSpace, UpdateScheme, analyze_sensitivity,
                          evolutionary_search, full_update,
                          scheme_memory_cost)
from repro.train import Adam, Trainer, load_checkpoint, snapshot_weights


def main():
    forward = build_model("mobilenetv2_micro", batch=8, num_classes=10)
    source = vision_source(n_train=256)
    print("Pre-training backbone ...")
    pre = compile_training(forward, optimizer=Adam(3e-3),
                           scheme=full_update(forward))
    trainer = Trainer(pre, forward)
    trainer.fit(source.batches(8, np.random.default_rng(0), 240))
    checkpoint = snapshot_weights(pre, forward)

    probe_task = vision_task("cifar", n_train=192, n_test=96)

    def evaluate(scheme: UpdateScheme) -> float:
        """Short fine-tune with `scheme`; returns downstream accuracy."""
        load_checkpoint(forward, checkpoint)
        if not scheme.updates:  # baseline: nothing trains
            program = compile_training(
                forward, optimizer=Adam(1e-9),
                scheme=UpdateScheme("fr", {"classifier.bias": 1.0}))
        else:
            program = compile_training(forward, optimizer=Adam(3e-3),
                                       scheme=scheme)
        t = Trainer(program, forward)
        t.fit(probe_task.batches(8, np.random.default_rng(3), 60))
        return t.evaluate(probe_task.x_test, probe_task.y_test)

    meta = forward.metadata["params"]
    candidates = sorted(
        p for p, m in meta.items()
        if m.get("role") == "weight" and m.get("block", -1) >= 0
    )[:8]  # probe a subset to keep the demo quick
    print(f"Sensitivity analysis over {len(candidates)} tensors ...")
    sens = analyze_sensitivity(forward, candidates, evaluate, ratios=(1.0,))
    for param, ratio, delta in sens.top(5):
        print(f"  {param:28s} contribution {delta:+.3f}")

    budget = scheme_memory_cost(
        forward, paper_scheme(forward), optimizer="adam").total_bytes
    print(f"\nEvolutionary search under {budget / 1024:.0f}KB budget ...")
    space = SearchSpace(
        weight_options={p: (0, 0.5, 1.0) for p in candidates},
        bias_candidates=tuple(
            p for p, m in meta.items() if m.get("role") == "bias"
        ),
        always=tuple(p for p, m in meta.items() if m.get("classifier")),
    )
    result = evolutionary_search(forward, space, sens, budget,
                                 optimizer="adam", population=32,
                                 generations=15, seed=0)
    print(f"  best fitness {result.fitness:.3f}, "
          f"memory {result.memory_bytes / 1024:.0f}KB, "
          f"{len(result.scheme.updates)} tensors selected")

    print("\nVerification fine-tune (fresh task draw):")
    rows = []
    for name, scheme in (("full BP", full_update(forward)),
                         ("paper scheme", paper_scheme(forward)),
                         ("searched scheme", result.scheme)):
        acc = evaluate(scheme)
        cost = scheme_memory_cost(forward, scheme, optimizer="adam")
        rows.append([name, f"{acc:.2%}",
                     f"{cost.total_bytes / 1024:.0f}KB",
                     len(scheme.updates)])
    print(render_table(["Scheme", "accuracy", "scheme memory", "tensors"],
                       rows))


if __name__ == "__main__":
    main()
