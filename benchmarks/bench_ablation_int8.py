"""Ablation: int8 execution and quantization-aware scaling.

The paper's vendor backends run integer models (SNPE on the Hexagon DSP,
TinyEngine on microcontrollers); PockEngine "easily extends [SNPE] with
training capability" and trains int8 graphs on MCUs. This bench quantifies
what the int8 path buys on our simulated devices, and reproduces the QAS
finding of reference [41] (On-Device Training Under 256KB Memory) that
int8-grid weights do not train without gradient-scale compensation.

Two parts:

1. MCUNet int8 vs fp32 inference on STM32F746 and the Hexagon DSP —
   latency (int8 MAC throughput + 4x fewer bytes moved) and peak memory.
2. Loss curves for int8-grid training with and without QAS against the
   fp32 reference (numeric runs through the executor).
"""

import numpy as np

from repro.devices import estimate_latency, get_device
from repro.ir import GraphBuilder
from repro.memory import profile_memory
from repro.models import build_model
from repro.quant import (apply_qas, collect_ranges, insert_fake_quant,
                         int8_grid_training_graph, quantize_inference_graph)
from repro.report import render_series, render_table
from repro.runtime import Executor
from repro.runtime.compiler import (CompileOptions, compile_inference,
                                    compile_training)
from repro.train import SGD

from _helpers import banner, fast_mode


def _deploy_comparison():
    rng = np.random.default_rng(0)
    model = "mcunet_micro" if fast_mode() else "mcunet"
    # Materialized weights: calibration actually runs the network.
    forward = build_model(model, batch=1, num_classes=2, lazy=False)
    res = forward.spec(forward.inputs[0]).shape
    batches = [{forward.inputs[0]:
                rng.standard_normal(res).astype(np.float32)}
               for _ in range(2)]
    ranges = collect_ranges(forward, batches)
    int8 = quantize_inference_graph(forward, ranges)

    rows = []
    speedups = {}
    for device_key in ("stm32f746", "snapdragon_dsp"):
        device = get_device(device_key)
        options = CompileOptions(device=device, materialize_state=False,
                                 winograd=False)
        for label, graph in (("fp32", forward), ("int8", int8)):
            program = compile_inference(graph, options=options)
            latency = estimate_latency(program.graph, program.schedule,
                                       device)
            memory = profile_memory(program.graph, program.schedule)
            rows.append([
                device.name.split(" (")[0], label,
                f"{latency.total_ms:.2f}ms",
                f"{memory.peak_total_bytes / 1024:.0f}KB",
                latency.num_kernels,
            ])
            speedups.setdefault(device_key, {})[label] = (
                latency.total_ms, memory.peak_total_bytes)
    return model, rows, speedups


def _qas_curves(steps: int):
    rng = np.random.default_rng(1)
    b = GraphBuilder("mlp")
    x = b.input("x", (8, 16))
    w1 = b.initializer("w1", (rng.standard_normal((16, 32)) * 0.3)
                       .astype(np.float32), trainable=True)
    h = b.emit("relu", [b.matmul(x, w1)])
    w2 = b.initializer("w2", (rng.standard_normal((32, 4)) * 0.3)
                       .astype(np.float32), trainable=True)
    b.mark_output(b.matmul(h, w2))
    forward = b.graph

    batches = [{"x": rng.standard_normal((8, 16)).astype(np.float32)}
               for _ in range(3)]
    qat = insert_fake_quant(forward, collect_ranges(forward, batches))
    grid = int8_grid_training_graph(qat)
    X = rng.standard_normal((8, 16)).astype(np.float32)
    Y = rng.integers(0, 4, size=8).astype(np.int64)

    def curve(graph, use_qas):
        program = compile_training(graph, optimizer=SGD(0.1))
        if use_qas:
            apply_qas(program.graph)
        executor = Executor(program)
        return [float(executor.run(
            {"x": X, program.meta["labels"]: Y})[program.meta["loss"]])
            for _ in range(steps)]

    return {
        "fp32 QAT reference": curve(qat, False),
        "int8-grid, no QAS": curve(grid, False),
        "int8-grid, with QAS": curve(grid, True),
    }


def run():
    model, rows, speedups = _deploy_comparison()
    curves = _qas_curves(steps=12 if fast_mode() else 30)
    return model, rows, speedups, curves


def test_int8_and_qas_ablation(benchmark):
    model, rows, speedups, curves = benchmark.pedantic(
        run, rounds=1, iterations=1)

    banner(f"Ablation — int8 deployment of {model} (SNPE/TinyEngine path)")
    print(render_table(
        ["Device", "precision", "latency", "peak memory", "kernels"], rows))
    for device_key, entry in speedups.items():
        lat32, mem32 = entry["fp32"]
        lat8, mem8 = entry["int8"]
        print(f"{device_key}: int8 {lat32 / lat8:.2f}x faster, "
              f"{mem32 / mem8:.2f}x smaller")

    banner("Ablation — QAS on int8-grid training (paper ref [41])")
    for name, losses in curves.items():
        print(render_series(name, losses[:: max(1, len(losses) // 10)]))

    for device_key, entry in speedups.items():
        lat32, mem32 = entry["fp32"]
        lat8, mem8 = entry["int8"]
        assert lat8 < lat32, f"int8 should be faster on {device_key}"
        assert mem8 < mem32 / 2, f"int8 should be <half memory {device_key}"

    no_qas = curves["int8-grid, no QAS"]
    with_qas = curves["int8-grid, with QAS"]
    ref = curves["fp32 QAT reference"]
    assert no_qas[-1] > no_qas[0] * 0.9, "grid training should stall"
    assert with_qas[-1] < with_qas[0] * 0.7, "QAS should restore learning"
    assert abs(with_qas[-1] - ref[-1]) < 0.35 * ref[0]
