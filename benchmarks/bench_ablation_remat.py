"""Ablation: sparse-BP vs rematerialization vs paging (paper §2.2).

The paper dismisses POET-style approaches because they "introduce extra
computation" and "rely on large external Flash", while sparse
backpropagation reduces memory *and* computation together. This bench puts
all three under the same memory budget — the peak of the paper's sparse
scheme — and measures what each pays:

* full-BP + rematerialization: fits, but with extra FLOPs -> slower,
* full-BP + paging: fits, but with flash traffic -> slower + wear,
* sparse-BP: fits natively and is the only variant *faster* than full-BP.
"""

from repro.devices import estimate_latency, get_device
from repro.memory import plan_paging, profile_memory, rematerialize
from repro.models import build_model, paper_scheme
from repro.report import render_table
from repro.runtime.compiler import CompileOptions, compile_training
from repro.train import SGD

from _helpers import banner, fast_mode

#: QSPI-flash class bandwidth POET assumes for its paging store (GB/s).
FLASH_BW_GBS = 0.08


def run():
    model = "mobilenetv2_micro" if fast_mode() else "mobilenetv2_035"
    device = get_device("jetson_nano")
    batch = 4 if fast_mode() else 8
    forward = build_model(model, batch=batch)
    options = CompileOptions(materialize_state=False, device=device)

    full = compile_training(forward, optimizer=SGD(0.05), options=options)
    sparse = compile_training(forward, optimizer=SGD(0.05),
                              scheme=paper_scheme(forward), options=options)

    full_mem = profile_memory(full.graph, full.schedule)
    sparse_mem = profile_memory(sparse.graph, sparse.schedule)
    # POET's evaluation regime: fit training into under half the RAM
    # full-BP wants. Sparse-BP lands far below this budget natively.
    budget = int(full_mem.peak_total_bytes * 0.45)

    remat = rematerialize(full.graph, full.schedule, budget,
                          max_evictions=256)
    paging = plan_paging(full.graph, full.schedule, budget)

    full_lat = estimate_latency(full.graph, full.schedule, device)
    sparse_lat = estimate_latency(sparse.graph, sparse.schedule, device)
    remat_lat = estimate_latency(remat.graph, remat.schedule, device)
    paging_ms = full_lat.total_ms + paging.transfer_ms(FLASH_BW_GBS)

    return {
        "model": model,
        "budget": budget,
        "rows": [
            ["full BP (reference)", full_mem.peak_total_bytes,
             full_lat.total_ms, "no", "-"],
            ["full BP + remat", remat.peak_after, remat_lat.total_ms,
             "yes" if remat.fits else "NO",
             f"+{remat.extra_flops / 1e6:.0f} MFLOPs"],
            ["full BP + paging", paging.peak_after, paging_ms,
             "yes" if paging.fits else "NO",
             f"{paging.flash_traffic_bytes / 2 ** 20:.1f}MB flash/iter"],
            ["sparse BP (ours)", sparse_mem.peak_total_bytes,
             sparse_lat.total_ms, "yes", "-"],
        ],
        "full_ms": full_lat.total_ms,
        "remat_ms": remat_lat.total_ms,
        "paging_ms": paging_ms,
        "sparse_ms": sparse_lat.total_ms,
        "remat_fits": remat.fits,
        "paging_fits": paging.fits,
    }


def test_remat_vs_sparse_bp(benchmark):
    r = benchmark.pedantic(run, rounds=1, iterations=1)
    banner(f"Ablation — same memory budget ({r['budget'] / 2 ** 20:.1f}MB), "
           f"three ways to get there ({r['model']}, Jetson Nano)")
    rows = [[name, f"{peak / 2 ** 20:.2f}MB", f"{ms:.1f}ms", fits, cost]
            for name, peak, ms, fits, cost in r["rows"]]
    print(render_table(
        ["Variant", "peak memory", "iter latency", "fits budget?",
         "extra cost"], rows))

    assert r["remat_fits"] and r["paging_fits"]
    # Sparse-BP sits far below the budget the others had to fight for.
    assert r["rows"][3][1] < r["budget"]
    # Remat and paging both pay latency over full-BP; sparse-BP gains it.
    assert r["remat_ms"] > r["full_ms"]
    assert r["paging_ms"] > r["full_ms"]
    assert r["sparse_ms"] < r["full_ms"]
