"""Table 2: vision transfer accuracy — Full-BP vs Bias-only vs Sparse-BP.

Protocol (DESIGN.md §2 substitution): pre-train each micro model on the
synthetic source domain with full BP, then fine-tune on the seven named
downstream tasks under each update scheme and report top-1 accuracy.
Reproduction target: the ordering Full ≈ Sparse > Bias-only (paper: sparse
within 1 point of full, bias-only 1.5–3 points behind).
"""

import numpy as np

from repro.data import vision_source, vision_task
from repro.data.tasks import VISION_TASKS
from repro.models import build_model, paper_scheme
from repro.report import render_table
from repro.report.paper_data import TABLE2_AVG_ACC
from repro.runtime.compiler import compile_training
from repro.sparse import bias_only, full_update
from repro.train import Adam, Trainer, load_checkpoint, snapshot_weights

from _helpers import banner, fast_mode

MODELS = ["mcunet_micro", "mobilenetv2_micro", "resnet_micro"]
PAPER_KEYS = {"mcunet_micro": "mcunet", "mobilenetv2_micro": "mobilenetv2",
              "resnet_micro": "resnet50"}


def pretrain(model_key):
    forward = build_model(model_key, batch=8, num_classes=10)
    source = vision_source(n_train=256)
    program = compile_training(forward, optimizer=Adam(3e-3),
                               scheme=full_update(forward))
    trainer = Trainer(program, forward)
    steps = 120 if fast_mode() else 260
    trainer.fit(source.batches(8, np.random.default_rng(0), steps))
    return forward, snapshot_weights(program, forward)


def finetune(forward, checkpoint, scheme, task):
    load_checkpoint(forward, checkpoint)
    program = compile_training(forward, optimizer=Adam(3.5e-3), scheme=scheme)
    trainer = Trainer(program, forward)
    steps = 120 if fast_mode() else 320
    trainer.fit(task.batches(8, np.random.default_rng(1), steps))
    return 100.0 * trainer.evaluate(task.x_test, task.y_test)


def run_table2():
    datasets = list(VISION_TASKS) if not fast_mode() \
        else list(VISION_TASKS)[:2]
    results = {}
    for model_key in MODELS:
        forward, checkpoint = pretrain(model_key)
        schemes = {
            "Full BP": full_update(forward),
            "Bias Only": bias_only(forward),
            "Sparse BP": paper_scheme(forward),
        }
        for method, scheme in schemes.items():
            accs = {}
            for name in datasets:
                task = vision_task(name, n_train=256, n_test=128)
                accs[name] = finetune(forward, checkpoint, scheme, task)
            results[(model_key, method)] = accs
    return results, datasets


def test_table2_vision_accuracy(benchmark):
    results, datasets = benchmark.pedantic(run_table2, rounds=1,
                                           iterations=1)
    banner("Table 2 — vision transfer accuracy (%), synthetic downstream "
           "suites")
    rows = []
    for (model, method), accs in results.items():
        avg = np.mean(list(accs.values()))
        rows.append([model, method, f"{avg:.1f}"]
                    + [f"{accs[d]:.1f}" for d in datasets])
    print(render_table(["Model", "Method", "Avg"] + datasets, rows))
    print("\nPaper averages (real datasets):")
    for model, vals in TABLE2_AVG_ACC.items():
        print(f"  {model}: full {vals['full']}, bias {vals['bias']}, "
              f"sparse {vals['sparse']}")

    for model_key in MODELS:
        avg = {
            method: np.mean(list(results[(model_key, method)].values()))
            for method in ("Full BP", "Bias Only", "Sparse BP")
        }
        # Ordering claim: sparse is not behind bias-only; both trail full.
        assert avg["Sparse BP"] >= avg["Bias Only"] - 2.0, model_key
        assert avg["Full BP"] >= avg["Bias Only"], model_key
