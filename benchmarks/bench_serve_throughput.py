"""`repro.serve` steady-state throughput vs compile-per-request.

The serving claim: because the paper's engine front-loads autodiff and
graph optimization into compilation, a long-lived service that caches
compiled programs (and coalesces single-example requests into micro-batch
steps) turns every request into a cheap runtime step. The naive
alternative — what the repo offered before `repro.serve` — pays the full
build-forward + compile pipeline on every request.

Workload: 16 tenants fine-tuning MCUNet (micro variant, so steps really
execute) with the paper's sparse scheme, interleaved single-example step
requests. Reported via the service's own metrics registry: throughput,
cache hit rate, p50/p95 step latency, per-program peak transient bytes.

Acceptance: >= 5x steady-state speedup over compile-per-request.
"""

from __future__ import annotations

import time

import numpy as np

from repro.models import build_model, paper_scheme
from repro.report import render_table
from repro.runtime import Executor
from repro.runtime.compiler import compile_training
from repro.serve import FineTuneService
from repro.train import SGD

from _helpers import banner, fast_mode

MODEL = "mcunet_micro"
TENANTS = 16
NUM_CLASSES = 10


def _example(rng, shape):
    return (rng.standard_normal(shape).astype(np.float32),
            np.int64(rng.integers(0, NUM_CLASSES)))


def run_compile_per_request(requests: int, rng) -> dict:
    """Baseline: every request builds + compiles + runs one step."""
    shape = build_model(MODEL, batch=1).spec("x").shape[1:]
    began = time.perf_counter()
    for _ in range(requests):
        forward = build_model(MODEL, batch=1)
        program = compile_training(forward, optimizer=SGD(0.01),
                                   scheme=paper_scheme(forward))
        x, y = _example(rng, shape)
        Executor(program).run({"x": x[None, ...],
                               program.meta["labels"]: y[None, ...]})
    elapsed = time.perf_counter() - began
    return {"requests": requests, "seconds": elapsed,
            "throughput": requests / elapsed}


def run_served(requests_per_tenant: int, warmup_per_tenant: int, rng,
               workers: int = 4, max_batch: int = 8) -> dict:
    """16 tenants over one cached program family, interleaved traffic."""
    with FineTuneService(max_batch=max_batch, workers=workers) as service:
        sessions = [
            service.create_session(MODEL, scheme="paper",
                                   tenant=f"tenant-{i:02d}")
            for i in range(TENANTS)
        ]
        family = sessions[0].family
        shape = family.example_shape

        def burst(steps):
            futures = []
            for _ in range(steps):
                for session in sessions:
                    x, y = _example(rng, shape)
                    futures.append(service.submit(session.id, x, y))
            for future in futures:
                future.result()
            return len(futures)

        # Warm-up: first requests pay the (cached-forever) compiles.
        burst(warmup_per_tenant)

        began = time.perf_counter()
        count = burst(requests_per_tenant)
        elapsed = time.perf_counter() - began

        stats = service.stats()
        return {
            "requests": count,
            "seconds": elapsed,
            "throughput": count / elapsed,
            "cache_hit_rate": stats["serve.cache.hit_rate"],
            "cache_misses": stats["serve.cache.misses"],
            "step_p50_ms": stats["serve.step_latency_ms"]["p50"],
            "step_p95_ms": stats["serve.step_latency_ms"]["p95"],
            "request_p95_ms": stats["serve.request_latency_ms"]["p95"],
            "metrics_table": service.render_metrics(
                title="serve metrics (16-tenant MCUNet, sparse scheme)"),
        }


def run() -> dict:
    rng = np.random.default_rng(0)
    baseline_requests = 16 if fast_mode() else 48
    steps_per_tenant = 6 if fast_mode() else 16
    warmup_per_tenant = 2 if fast_mode() else 4

    baseline = run_compile_per_request(baseline_requests, rng)
    served = run_served(steps_per_tenant, warmup_per_tenant, rng)
    speedup = served["throughput"] / baseline["throughput"]
    return {"baseline": baseline, "served": served, "speedup": speedup}


def test_serve_throughput(benchmark):
    result = benchmark.pedantic(run, rounds=1, iterations=1)
    _report(result)
    # Fast mode is a correctness smoke that deliberately never reaches
    # steady state (few steps, cold caches); only the full run measures
    # the >=5x acceptance claim.
    threshold = 2.5 if fast_mode() else 5.0
    assert result["speedup"] >= threshold, (
        f"expected >={threshold}x steady-state speedup, "
        f"got {result['speedup']:.2f}x"
    )
    # Exactly one compile per bucketed program variant, no matter how many
    # tenants or requests; everything else hits.
    assert result["served"]["cache_misses"] <= 4
    assert result["served"]["cache_hit_rate"] > 0.5


def _report(result: dict) -> None:
    baseline, served = result["baseline"], result["served"]
    banner("repro.serve — steady-state throughput vs compile-per-request "
           f"({TENANTS}-tenant {MODEL}, paper sparse scheme)")
    print(render_table(
        ["mode", "requests", "time", "steps/s"],
        [
            ["compile-per-request", baseline["requests"],
             f"{baseline['seconds']:.2f}s",
             f"{baseline['throughput']:.1f}"],
            ["served (cache+batch)", served["requests"],
             f"{served['seconds']:.2f}s", f"{served['throughput']:.1f}"],
        ]))
    print()
    print(served["metrics_table"])
    print()
    print(f"steady-state speedup: {result['speedup']:.1f}x "
          f"(cache hit rate {served['cache_hit_rate']:.1%}, "
          f"step p95 {served['step_p95_ms']:.1f}ms)")


if __name__ == "__main__":
    _report(run())
