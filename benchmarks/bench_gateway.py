"""Gateway benchmark: end-to-end HTTP latency, shed behaviour, shutdown.

Boots ``repro serve --http`` on an ephemeral port as a real subprocess
(the exact artifact CI deploys) and drives it with the blocking client:

* **closed loop** — 2 concurrent tenants, sessions created over HTTP,
  steps submitted back-to-back: p50/p95 end-to-end latency and aggregate
  throughput, with per-session FIFO verified from the returned step
  counters;
* **open loop** — every tenant fires on a fixed schedule at ~3x the
  measured closed-loop capacity against a small ``--max-queue-depth``:
  the gateway must shed with 429 + Retry-After rather than queue without
  bound. Latency is measured from the *scheduled* send time, so queueing
  delay is not hidden (no coordinated omission);
* **rate limit** — a second server with ``--rate-limit``; a tenant
  bursting past its budget collects 429s while a polite tenant is
  untouched;
* **shutdown** — SIGINT lands while requests are in flight; the process
  must exit 0 within the deadline with every client answered (zero hung
  futures);
* **tracing overhead** — the closed loop repeated against a server with
  kernel sampling on (``--trace-sample 16``): per-stage latency means
  from the ``Server-Timing`` breakdowns, span-sum coverage of the
  measured totals, and a gate that tracing keeps >= 95% of the untraced
  closed-loop throughput;
* **trace propagation** — a ``--backend process`` server: the
  ``/v1/trace`` export must contain gateway-process stage rows and
  worker-process ``worker_execute`` rows correlated by request ID.

Writes ``BENCH_gateway.json`` and exits non-zero if any gate fails.
Single-core honesty: numbers from CI containers measure protocol +
scheduler behaviour, not hardware throughput.

Usage::

    PYTHONPATH=src python benchmarks/bench_gateway.py [--quick]
"""

from __future__ import annotations

import argparse
import json
import os
import signal
import subprocess
import sys
import threading
import time
from pathlib import Path

import numpy as np

from _helpers import banner, fast_mode

MODEL = "mcunet_micro"
SRC = Path(__file__).resolve().parent.parent / "src"


class GatewayProcess:
    """A ``repro serve --http`` subprocess on an ephemeral port.

    A daemon thread pumps the child's stdout into a queue, so waiting for
    the address line has a real deadline (a server that stalls *before*
    printing anything fails this benchmark fast instead of hanging CI on
    a blocked ``readline``).
    """

    def __init__(self, *extra_args: str) -> None:
        import queue

        env = dict(os.environ)
        env["PYTHONPATH"] = f"{SRC}{os.pathsep}" \
            + env.get("PYTHONPATH", "")
        self.proc = subprocess.Popen(
            [sys.executable, "-m", "repro.cli", "serve", "--http", "0",
             "--model", MODEL, *extra_args],
            stdout=subprocess.PIPE, stderr=subprocess.STDOUT, text=True,
            env=env)
        self.output: list[str] = []
        self._lines: "queue.Queue[str | None]" = queue.Queue()
        self._reader = threading.Thread(target=self._pump, daemon=True)
        self._reader.start()
        self.url = self._await_listening()

    def _pump(self) -> None:
        for line in self.proc.stdout:
            self.output.append(line)
            self._lines.put(line)
        self._lines.put(None)

    def _await_listening(self, timeout: float = 120.0) -> str:
        import queue

        deadline = time.monotonic() + timeout
        while True:
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                self.kill()
                raise RuntimeError("server never reported its address")
            try:
                line = self._lines.get(timeout=remaining)
            except queue.Empty:
                continue
            if line is None:
                raise RuntimeError(
                    f"server exited early (rc={self.proc.poll()})")
            if "listening on http://" in line:
                return line.split("listening on ")[1].split()[0]

    def interrupt_and_wait(self, timeout: float = 60.0) -> dict:
        """SIGINT; returns {exit_code, seconds, drained} or fails loudly."""
        began = time.monotonic()
        self.proc.send_signal(signal.SIGINT)
        try:
            self.proc.wait(timeout=timeout)
        except subprocess.TimeoutExpired:
            self.proc.kill()
            self.proc.wait()
            raise RuntimeError(
                f"server hung past {timeout}s after SIGINT "
                f"(futures left unresolved?)")
        self._reader.join(timeout=10)
        return {
            "exit_code": self.proc.returncode,
            "seconds": time.monotonic() - began,
            "drained": "drained cleanly" in "".join(self.output),
        }

    def kill(self) -> None:
        if self.proc.poll() is None:
            self.proc.kill()
            self.proc.wait()
        self._reader.join(timeout=10)


def _open_sessions(client, tenants: int) -> list[dict]:
    return [client.create_session(MODEL, scheme="paper",
                                  tenant=f"tenant-{i:02d}")
            for i in range(tenants)]


def _example(doc: dict, rng) -> tuple[list, int]:
    x = rng.standard_normal(doc["input_shape"]).astype(np.float32)
    return x, int(rng.integers(0, doc["num_classes"]))


def closed_loop(client, docs: list[dict], steps_per_tenant: int) -> dict:
    latencies: list[float] = []
    stage_samples: dict[str, list[float]] = {}
    coverages: list[float] = []
    fifo_ok = True
    lock = threading.Lock()

    def drive(doc, seed):
        nonlocal fifo_ok
        rng = np.random.default_rng(seed)
        last_step = 0
        for _ in range(steps_per_tenant):
            x, y = _example(doc, rng)
            began = time.perf_counter()
            result = client.step(doc["session_id"], x, y)
            elapsed = (time.perf_counter() - began) * 1e3
            timings = result.get("timings") or {}
            total = timings.get("total", 0.0)
            span_sum = sum(ms for stage, ms in timings.items()
                           if stage != "total")
            with lock:
                latencies.append(elapsed)
                for stage, ms in timings.items():
                    stage_samples.setdefault(stage, []).append(ms)
                if total > 0:
                    coverages.append(span_sum / total)
                if result["step"] <= last_step:
                    fifo_ok = False
            last_step = result["step"]

    began = time.perf_counter()
    threads = [threading.Thread(target=drive, args=(doc, i))
               for i, doc in enumerate(docs)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    elapsed = time.perf_counter() - began
    arr = np.asarray(latencies)
    return {
        "tenants": len(docs),
        "requests": len(latencies),
        "expected_requests": len(docs) * steps_per_tenant,
        "seconds": elapsed,
        "throughput_rps": len(latencies) / elapsed,
        "p50_ms": float(np.quantile(arr, 0.5)),
        "p95_ms": float(np.quantile(arr, 0.95)),
        "fifo_ok": fifo_ok,
        # per-stage breakdown from the gateway's Server-Timing headers
        "stages_ms": {
            stage: {"mean": float(np.mean(vals)),
                    "p50": float(np.quantile(vals, 0.5)),
                    "p95": float(np.quantile(vals, 0.95))}
            for stage, vals in sorted(stage_samples.items())
        },
        #: fraction of each request's span-derived total covered by the
        #: sum of its stage spans (1.0 = no unaccounted time)
        "span_coverage": float(np.mean(coverages)) if coverages else 0.0,
    }


def open_loop(client, docs: list[dict], offered_rps: float,
              duration_s: float, senders_per_tenant: int = 8) -> dict:
    """Fixed-schedule load: send at offered_rps regardless of responses.

    A pool of sender threads per tenant approximates a true open loop with a
    blocking client: up to ``tenants * senders_per_tenant`` requests are
    outstanding at once, so offered load genuinely exceeds service
    capacity instead of self-throttling to it. Latency is measured from
    each request's *scheduled* time, so a backed-up sender cannot hide
    queueing delay (no coordinated omission).
    """
    from repro.serve import GatewayError, RateLimited

    ok_latencies: list[float] = []
    counts = {"ok": 0, "shed": 0, "error": 0}
    lock = threading.Lock()
    per_sender_rps = offered_rps / (len(docs) * senders_per_tenant)
    interval = 1.0 / per_sender_rps

    def drive(doc, slot, seed):
        rng = np.random.default_rng(seed)
        start = time.perf_counter() + slot * interval / senders_per_tenant
        n = int(duration_s * per_sender_rps)
        for i in range(n):
            scheduled = start + i * interval
            now = time.perf_counter()
            if scheduled > now:
                time.sleep(scheduled - now)
            x, y = _example(doc, rng)
            try:
                client.step(doc["session_id"], x, y, wait=False)
                outcome = "ok"
            except RateLimited:
                outcome = "shed"
            except GatewayError:
                outcome = "error"
            elapsed = (time.perf_counter() - scheduled) * 1e3
            with lock:
                counts[outcome] += 1
                if outcome == "ok":
                    ok_latencies.append(elapsed)

    threads = [threading.Thread(target=drive,
                                args=(doc, slot, 100 + 10 * t + slot))
               for t, doc in enumerate(docs)
               for slot in range(senders_per_tenant)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    total = sum(counts.values())
    arr = np.asarray(ok_latencies) if ok_latencies else np.zeros(1)
    return {
        "offered_rps": offered_rps,
        "duration_s": duration_s,
        "sent": total,
        **counts,
        "shed_rate": counts["shed"] / total if total else 0.0,
        "ok_p50_ms": float(np.quantile(arr, 0.5)),
        "ok_p95_ms": float(np.quantile(arr, 0.95)),
    }


def rate_limit_phase(url: str, burst_requests: int) -> dict:
    from repro.serve import RateLimited, ServeClient

    with ServeClient(url) as client:
        greedy, polite = _open_sessions(client, 2)
        rng = np.random.default_rng(7)
        limited = ok = 0
        for _ in range(burst_requests):
            try:
                client.step(greedy["session_id"], *_example(greedy, rng),
                            wait=False)
                ok += 1
            except RateLimited:
                limited += 1
        # The polite tenant has its own bucket: its first request sails.
        polite_result = client.step(polite["session_id"],
                                    *_example(polite, rng), wait=False)
        return {
            "burst_requests": burst_requests,
            "ok": ok,
            "limited": limited,
            "other_tenant_unaffected":
                bool(np.isfinite(polite_result["loss"])),
        }


def shutdown_phase(server: GatewayProcess, client, docs: list[dict],
                   inflight: int) -> dict:
    """SIGINT with requests in flight; every client must get an answer."""
    from repro.serve import GatewayError

    settled: list[str] = []
    lock = threading.Lock()
    # SIGINT must land while requests are genuinely on the wire, not
    # before slow CI threads have connected: every sender passes the
    # barrier immediately before its POST, and the main thread gives the
    # sends a beat to reach the server.
    barrier = threading.Barrier(inflight + 1)

    def fire(doc, seed):
        rng = np.random.default_rng(seed)
        example = _example(doc, rng)
        try:
            barrier.wait(timeout=30)
            client.step(doc["session_id"], *example, wait=False)
            outcome = "ok"
        except GatewayError as exc:
            # 503 (cancelled by shutdown) or connection loss: answered,
            # not hung.
            outcome = f"refused-{exc.status}"
        except threading.BrokenBarrierError:
            outcome = "never-started"
        with lock:
            settled.append(outcome)

    threads = [threading.Thread(target=fire, args=(docs[i % len(docs)], i))
               for i in range(inflight)]
    for t in threads:
        t.start()
    barrier.wait(timeout=30)
    time.sleep(0.2)
    result = server.interrupt_and_wait()
    for t in threads:
        t.join(timeout=30)
    result["inflight_at_sigint"] = inflight
    result["clients_settled"] = len(settled)
    result["client_outcomes"] = sorted(set(settled))
    result["zero_hung_futures"] = len(settled) == inflight \
        and not any(t.is_alive() for t in threads)
    return result


def trace_propagation_phase(url: str, steps: int) -> dict:
    """Drive a process-backend server and check /v1/trace correlation."""
    from repro.serve import ServeClient

    with ServeClient(url) as client:
        doc = _open_sessions(client, 1)[0]
        rng = np.random.default_rng(11)
        request_ids = [client.step(doc["session_id"],
                                   *_example(doc, rng))["request_id"]
                       for _ in range(steps)]
        events = client.trace()["traceEvents"]
    stage_pids = {e["pid"] for e in events if e["cat"] == "stage"
                  and e["name"] != "worker_execute"}
    worker_rows = [e for e in events if e["name"] == "worker_execute"]
    worker_pids = {e["pid"] for e in worker_rows}
    worker_rids: set[str] = set()
    for event in worker_rows:
        worker_rids.update(event["args"].get("request_id", ()))
    return {
        "steps": steps,
        "events": len(events),
        "gateway_pids": sorted(stage_pids),
        "worker_pids": sorted(worker_pids),
        "worker_execute_rows": len(worker_rows),
        "kernel_rows": sum(1 for e in events if e["cat"] == "kernel"),
        #: worker rows come from a different process than the gateway rows
        "cross_process": bool(worker_pids) and worker_pids.isdisjoint(
            stage_pids),
        #: every request the client saw is echoed back by some worker row
        "request_ids_correlated": set(request_ids) <= worker_rids,
    }


def run(quick: bool) -> dict:
    from repro.serve import ServeClient

    steps = 8 if quick else 32
    duration = 2.0 if quick else 6.0
    result: dict = {"workload": {
        "model": MODEL, "scheme": "paper sparse-update",
        "backend": "thread", "max_batch": 8, "workers": 2,
        "cpu_count": os.cpu_count(),
    }}

    # -- server A: watermark backpressure, no rate limit ---------------------
    server = GatewayProcess("--max-queue-depth", "8", "--workers", "2",
                            "--drain-timeout", "10")
    try:
        client = ServeClient(server.url)
        docs = _open_sessions(client, 2)
        banner(f"closed loop: 2 tenants x {steps} steps over HTTP")
        result["closed_loop"] = closed_loop(client, docs, steps)
        capacity = result["closed_loop"]["throughput_rps"]
        offered = max(20.0, 3.0 * capacity)
        banner(f"open loop: offering {offered:.0f} req/s "
               f"(~3x measured capacity) for {duration:.0f}s")
        result["open_loop"] = open_loop(client, docs, offered, duration)
        result["shutdown"] = shutdown_phase(server, client, docs,
                                            inflight=6)
        client.close()
    finally:
        server.kill()

    # -- server B: per-tenant rate limits ------------------------------------
    banner("rate limit: greedy tenant bursts past 2 req/s (burst 2)")
    server = GatewayProcess("--rate-limit", "2", "--rate-burst", "2",
                            "--max-queue-depth", "64")
    try:
        result["rate_limit"] = rate_limit_phase(server.url,
                                                burst_requests=8)
        result["rate_limit_shutdown"] = server.interrupt_and_wait()
    finally:
        server.kill()

    # -- server C: kernel sampling on — what does tracing cost? --------------
    banner("tracing overhead: closed loop with --trace-sample 16")
    server = GatewayProcess("--max-queue-depth", "8", "--workers", "2",
                            "--trace-sample", "16")
    try:
        client = ServeClient(server.url)
        docs = _open_sessions(client, 2)
        # Same closed loop as server A; the untraced run is the baseline.
        traced = closed_loop(client, docs, steps)
        baseline_rps = result["closed_loop"]["throughput_rps"]
        result["tracing_overhead"] = {
            "traced": traced,
            "baseline_rps": baseline_rps,
            "throughput_ratio": traced["throughput_rps"] / baseline_rps,
        }
        client.close()
    finally:
        server.kill()

    # -- server D: process backend — spans must cross the pickle boundary ----
    banner("trace propagation: process backend, /v1/trace correlation")
    server = GatewayProcess("--backend", "process", "--workers", "1",
                            "--max-batch", "2", "--trace-sample", "4")
    try:
        result["trace_propagation"] = trace_propagation_phase(
            server.url, steps=4 if quick else 8)
    finally:
        server.kill()
    return result


def _report(result: dict) -> None:
    closed = result["closed_loop"]
    print(f"{'closed loop':>12}: {closed['throughput_rps']:6.1f} req/s   "
          f"p50 {closed['p50_ms']:7.2f} ms   p95 {closed['p95_ms']:7.2f} ms"
          f"   fifo_ok={closed['fifo_ok']}")
    over = result["open_loop"]
    print(f"{'open loop':>12}: offered {over['offered_rps']:6.1f} req/s   "
          f"ok {over['ok']}   shed {over['shed']} "
          f"({over['shed_rate']:.0%})   ok p95 {over['ok_p95_ms']:7.2f} ms")
    rate = result["rate_limit"]
    print(f"{'rate limit':>12}: {rate['limited']}/{rate['burst_requests']} "
          f"limited, other tenant unaffected="
          f"{rate['other_tenant_unaffected']}")
    down = result["shutdown"]
    print(f"{'shutdown':>12}: SIGINT with {down['inflight_at_sigint']} in "
          f"flight -> exit {down['exit_code']} in {down['seconds']:.1f}s, "
          f"outcomes {down['client_outcomes']}, "
          f"zero_hung={down['zero_hung_futures']}")
    stages = closed["stages_ms"]
    if stages:
        breakdown = "  ".join(f"{stage} {stats['mean']:.2f}"
                              for stage, stats in stages.items())
        print(f"{'stages (ms)':>12}: {breakdown}   "
              f"coverage {closed['span_coverage']:.0%}")
    overhead = result["tracing_overhead"]
    print(f"{'tracing':>12}: sampled closed loop "
          f"{overhead['traced']['throughput_rps']:6.1f} req/s = "
          f"{overhead['throughput_ratio']:.0%} of untraced")
    prop = result["trace_propagation"]
    print(f"{'propagation':>12}: {prop['worker_execute_rows']} worker rows "
          f"(pids {prop['worker_pids']}), {prop['kernel_rows']} kernel "
          f"rows, cross_process={prop['cross_process']}, "
          f"correlated={prop['request_ids_correlated']}")


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true",
                        help="CI smoke mode: shorter phases")
    parser.add_argument("--out", type=Path,
                        default=Path("BENCH_gateway.json"))
    args = parser.parse_args(argv)
    sys.path.insert(0, str(SRC))

    banner("repro.serve HTTP gateway benchmark")
    result = run(args.quick or fast_mode())
    _report(result)
    args.out.write_text(json.dumps(result, indent=1))
    print(f"\nwrote {args.out}")

    failures = []
    closed = result["closed_loop"]
    if closed["requests"] != closed["expected_requests"] \
            or not closed["fifo_ok"]:
        failures.append("closed loop lost requests or broke FIFO")
    if result["open_loop"]["shed_rate"] <= 0.0:
        failures.append("overload never shed (queue grew unbounded?)")
    if result["open_loop"]["error"] > 0:
        failures.append(f"open loop saw {result['open_loop']['error']} "
                        f"non-429 errors")
    if result["rate_limit"]["limited"] < 1 \
            or not result["rate_limit"]["other_tenant_unaffected"]:
        failures.append("rate limiting did not behave per-tenant")
    for phase in ("shutdown", "rate_limit_shutdown"):
        if result[phase]["exit_code"] != 0:
            failures.append(f"{phase}: exit {result[phase]['exit_code']}")
    if not result["shutdown"]["zero_hung_futures"]:
        failures.append("shutdown left a client hanging")
    if not 0.9 <= closed["span_coverage"] <= 1.1:
        failures.append(f"stage spans cover {closed['span_coverage']:.0%} "
                        f"of request totals (want within 10%)")
    if result["tracing_overhead"]["throughput_ratio"] < 0.95:
        failures.append(
            f"tracing cost "
            f"{1 - result['tracing_overhead']['throughput_ratio']:.0%} "
            f"of closed-loop throughput (budget: 5%)")
    prop = result["trace_propagation"]
    if not (prop["cross_process"] and prop["request_ids_correlated"]):
        failures.append("process-backend trace rows missing or "
                        "uncorrelated with gateway request IDs")
    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
