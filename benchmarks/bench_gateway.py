"""Gateway benchmark: end-to-end HTTP latency, shed behaviour, shutdown.

Boots ``repro serve --http`` on an ephemeral port as a real subprocess
(the exact artifact CI deploys) and drives it with the blocking client:

* **closed loop** — 2 tenants x 16 keep-alive connections each, sessions
  created over HTTP, steps submitted back-to-back per connection:
  p50/p95 end-to-end latency and aggregate throughput, with per-session
  FIFO verified from the returned step counters. This is the gated
  throughput number: concurrent same-session submits are what the
  scheduler coalesces into micro-batches (batch-8 kernel time per
  example is ~2.3x cheaper than batch-1), so it exercises the front
  door *and* batch-aware dispatch together;
* **serial closed loop** — the pre-asyncio workload kept verbatim
  (2 tenants x 1 connection, one request in flight per tenant): this
  one is kernel-bound, not transport-bound (batch-1 step compute alone
  caps it at ~320 req/s on 1 core), so it gates *no regression* vs the
  committed baseline rather than a speedup. It also serves as the
  paired control for the 1.5x gate: serial, concurrent, and
  concurrent-JSON loops run in interleaved bursts so host steal-time
  weather (measured swinging 3%-24% within a run) cancels out of every
  ratio instead of deciding it;
* **open loop** — every tenant fires on a fixed schedule at ~3x the
  measured closed-loop capacity against a small ``--max-queue-depth``:
  the gateway must shed with 429 + Retry-After rather than queue without
  bound. Latency is measured from the *scheduled* send time, so queueing
  delay is not hidden (no coordinated omission);
* **rate limit** — a second server with ``--rate-limit``; a tenant
  bursting past its budget collects 429s while a polite tenant is
  untouched;
* **shutdown** — SIGINT lands while requests are in flight; the process
  must exit 0 within the deadline with every client answered (zero hung
  futures);
* **tracing overhead** — the closed loop repeated against a server with
  kernel sampling on (``--trace-sample 16``): per-stage latency means
  from the ``Server-Timing`` breakdowns, span-sum coverage of the
  measured totals, and a gate that tracing keeps >= 95% of the untraced
  closed-loop throughput;
* **trace propagation** — a ``--backend process`` server: the
  ``/v1/trace`` export must contain gateway-process stage rows and
  worker-process ``worker_execute`` rows correlated by request ID;
* **held connections** — >= 512 keep-alive connections opened and held
  simultaneously against the asyncio gateway, every one answering
  round trips while all the others stay open (the thread-per-connection
  design this replaced could not hold that many);
* **wire formats** — the same MCUNet batch-8 workload driven through a
  JSON+pickle server and a binary+shm server (``--backend process``),
  recording ``bytes_copied_per_step`` from the server's own byte
  counters; the binary+shm path must serialize >= 5x fewer bytes per
  step, and the (binary, concurrent) closed loop must clear 1.5x the
  committed pre-asyncio baseline throughput.

Writes ``BENCH_gateway.json`` and exits non-zero if any gate fails.
Single-core honesty: numbers from CI containers measure protocol +
scheduler behaviour, not hardware throughput.

Usage::

    PYTHONPATH=src python benchmarks/bench_gateway.py [--quick]
"""

from __future__ import annotations

import argparse
import json
import os
import signal
import subprocess
import sys
import threading
import time
from pathlib import Path

import numpy as np

from _helpers import banner, fast_mode

MODEL = "mcunet_micro"
SRC = Path(__file__).resolve().parent.parent / "src"

#: closed-loop req/s from the committed pre-asyncio BENCH_gateway.json
#: (threaded gateway, JSON bodies, 2 tenants x 1 connection, 1 CI
#: core). Deliberately hardcoded — gating against the *current* file
#: would ratchet against ourselves. Two gates hang off it: the serial
#: loop (same workload as the baseline) must not regress below 0.8x,
#: and the concurrent loop (16 connections/tenant — the load the asyncio
#: front door plus batch-aware dispatch exist for) must clear 1.5x.
BASELINE_CLOSED_RPS = 204.9

#: connections per tenant in the gated concurrent closed loop. 16 keeps
#: the batch scheduler near-saturated (mean fill ~0.9 of max-batch 8);
#: at 8 the fill hovers near 0.6 and the measured speedup rides the
#: host's steal-time weather instead of the coalescing win.
CLOSED_LOOP_SENDERS = 16

#: the front door must hold at least this many simultaneous keep-alive
#: connections with zero errors (thread-per-connection could not)
HELD_CONNECTIONS_TARGET = 512


class GatewayProcess:
    """A ``repro serve --http`` subprocess on an ephemeral port.

    A daemon thread pumps the child's stdout into a queue, so waiting for
    the address line has a real deadline (a server that stalls *before*
    printing anything fails this benchmark fast instead of hanging CI on
    a blocked ``readline``).
    """

    def __init__(self, *extra_args: str) -> None:
        import queue

        env = dict(os.environ)
        env["PYTHONPATH"] = f"{SRC}{os.pathsep}" \
            + env.get("PYTHONPATH", "")
        # Own process group: kill() must take the --backend process
        # pool workers down with the parent, or orphaned spawn workers
        # linger and steal CPU from every later phase (1 CI core).
        self.proc = subprocess.Popen(
            [sys.executable, "-m", "repro.cli", "serve", "--http", "0",
             "--model", MODEL, *extra_args],
            stdout=subprocess.PIPE, stderr=subprocess.STDOUT, text=True,
            env=env, start_new_session=True)
        self.output: list[str] = []
        self._lines: "queue.Queue[str | None]" = queue.Queue()
        self._reader = threading.Thread(target=self._pump, daemon=True)
        self._reader.start()
        self.url = self._await_listening()

    def _pump(self) -> None:
        for line in self.proc.stdout:
            self.output.append(line)
            self._lines.put(line)
        self._lines.put(None)

    def _await_listening(self, timeout: float = 120.0) -> str:
        import queue

        deadline = time.monotonic() + timeout
        while True:
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                self.kill()
                raise RuntimeError("server never reported its address")
            try:
                line = self._lines.get(timeout=remaining)
            except queue.Empty:
                continue
            if line is None:
                raise RuntimeError(
                    f"server exited early (rc={self.proc.poll()})")
            if "listening on http://" in line:
                return line.split("listening on ")[1].split()[0]

    def interrupt_and_wait(self, timeout: float = 60.0) -> dict:
        """SIGINT; returns {exit_code, seconds, drained} or fails loudly."""
        began = time.monotonic()
        self.proc.send_signal(signal.SIGINT)
        try:
            self.proc.wait(timeout=timeout)
        except subprocess.TimeoutExpired:
            self._kill_group()
            self.proc.wait()
            raise RuntimeError(
                f"server hung past {timeout}s after SIGINT "
                f"(futures left unresolved?)")
        self._kill_group()  # reap any pool worker the drain left behind
        self._reader.join(timeout=10)
        return {
            "exit_code": self.proc.returncode,
            "seconds": time.monotonic() - began,
            "drained": "drained cleanly" in "".join(self.output),
        }

    def _kill_group(self) -> None:
        """SIGKILL the server's whole process group (pool workers too)."""
        try:
            os.killpg(self.proc.pid, signal.SIGKILL)
        except (ProcessLookupError, PermissionError):
            pass

    def kill(self) -> None:
        if self.proc.poll() is None:
            self._kill_group()
            self.proc.kill()
            self.proc.wait()
        else:
            self._kill_group()
        self._reader.join(timeout=10)


def _open_sessions(client, tenants: int) -> list[dict]:
    return [client.create_session(MODEL, scheme="paper",
                                  tenant=f"tenant-{i:02d}")
            for i in range(tenants)]


def _example(doc: dict, rng) -> tuple[list, int]:
    x = rng.standard_normal(doc["input_shape"]).astype(np.float32)
    return x, int(rng.integers(0, doc["num_classes"]))


class ClosedLoop:
    """One closed-loop workload, drivable in interleaved bursts.

    Every sender keeps exactly one request in flight, so offered load is
    self-throttling; concurrent senders on the *same* session are what
    the scheduler coalesces into micro-batches.

    Shared-host honesty: absolute req/s on a 1-CI-core VM swing with
    host steal time from minute to minute (measured 3%-24% within one
    bench run), so a ratio of two loops measured in *different* windows
    mostly measures the weather. Loops that are compared against each
    other are driven in alternating bursts — ``a.burst(); b.burst()``
    repeated — so drift lands on both sides, and each loop's aggregate
    comes out of :meth:`result`.
    """

    def __init__(self, client, docs: list[dict],
                 senders_per_tenant: int = 1) -> None:
        self.client = client
        self.docs = docs
        self.senders = senders_per_tenant
        self._latencies: list[float] = []
        self._stage_samples: dict[str, list[float]] = {}
        self._coverages: list[float] = []
        self._fifo_ok = True
        self._seconds = 0.0
        self._expected = 0
        #: per-sender view of the session step counter; FIFO must hold
        #: across bursts and warmup alike
        self._last_step: dict[tuple[int, int], int] = {}
        self._bursts = 0
        self._lock = threading.Lock()

    def _drive(self, tenant: int, slot: int, steps: int,
               record: bool) -> None:
        doc = self.docs[tenant]
        rng = np.random.default_rng(
            10_000 * self._bursts + 100 * tenant + slot)
        key = (tenant, slot)
        for _ in range(steps):
            x, y = _example(doc, rng)
            began = time.perf_counter()
            result = self.client.step(doc["session_id"], x, y)
            elapsed = (time.perf_counter() - began) * 1e3
            timings = result.get("timings") or {}
            total = timings.get("total", 0.0)
            span_sum = sum(ms for stage, ms in timings.items()
                           if stage != "total")
            with self._lock:
                if record:
                    self._latencies.append(elapsed)
                    for stage, ms in timings.items():
                        self._stage_samples.setdefault(stage,
                                                       []).append(ms)
                    if total > 0:
                        self._coverages.append(span_sum / total)
                if result["step"] <= self._last_step.get(key, 0):
                    self._fifo_ok = False
                self._last_step[key] = result["step"]

    def _fan_out(self, steps: int, record: bool) -> None:
        self._bursts += 1
        threads = [threading.Thread(target=self._drive,
                                    args=(tenant, slot, steps, record))
                   for tenant in range(len(self.docs))
                   for slot in range(self.senders)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()

    def warmup(self, steps: int) -> None:
        """Untimed steps per sender: bucket-variant compiles and
        allocator warm-up land here, not in a measured burst."""
        self._fan_out(steps, record=False)

    def burst(self, steps: int) -> None:
        """One timed burst of ``steps`` requests per sender."""
        began = time.perf_counter()
        self._fan_out(steps, record=True)
        self._seconds += time.perf_counter() - began
        self._expected += len(self.docs) * self.senders * steps

    def result(self) -> dict:
        arr = np.asarray(self._latencies)
        return {
            "tenants": len(self.docs),
            "senders_per_tenant": self.senders,
            "requests": len(self._latencies),
            "expected_requests": self._expected,
            "seconds": self._seconds,
            "throughput_rps": len(self._latencies) / self._seconds,
            "p50_ms": float(np.quantile(arr, 0.5)),
            "p95_ms": float(np.quantile(arr, 0.95)),
            "fifo_ok": self._fifo_ok,
            # per-stage breakdown from the Server-Timing headers
            "stages_ms": {
                stage: {"mean": float(np.mean(vals)),
                        "p50": float(np.quantile(vals, 0.5)),
                        "p95": float(np.quantile(vals, 0.95))}
                for stage, vals in sorted(self._stage_samples.items())
            },
            #: fraction of each request's span-derived total covered by
            #: the sum of its stage spans (1.0 = no unaccounted time)
            "span_coverage": float(np.mean(self._coverages))
            if self._coverages else 0.0,
        }


def open_loop(client, docs: list[dict], offered_rps: float,
              duration_s: float, senders_per_tenant: int = 8) -> dict:
    """Fixed-schedule load: send at offered_rps regardless of responses.

    A pool of sender threads per tenant approximates a true open loop with a
    blocking client: up to ``tenants * senders_per_tenant`` requests are
    outstanding at once, so offered load genuinely exceeds service
    capacity instead of self-throttling to it. Latency is measured from
    each request's *scheduled* time, so a backed-up sender cannot hide
    queueing delay (no coordinated omission).
    """
    from repro.serve import GatewayError, RateLimited

    ok_latencies: list[float] = []
    counts = {"ok": 0, "shed": 0, "error": 0}
    lock = threading.Lock()
    per_sender_rps = offered_rps / (len(docs) * senders_per_tenant)
    interval = 1.0 / per_sender_rps

    def drive(doc, slot, seed):
        rng = np.random.default_rng(seed)
        start = time.perf_counter() + slot * interval / senders_per_tenant
        n = int(duration_s * per_sender_rps)
        for i in range(n):
            scheduled = start + i * interval
            now = time.perf_counter()
            if scheduled > now:
                time.sleep(scheduled - now)
            x, y = _example(doc, rng)
            try:
                client.step(doc["session_id"], x, y, wait=False)
                outcome = "ok"
            except RateLimited:
                outcome = "shed"
            except GatewayError:
                outcome = "error"
            elapsed = (time.perf_counter() - scheduled) * 1e3
            with lock:
                counts[outcome] += 1
                if outcome == "ok":
                    ok_latencies.append(elapsed)

    threads = [threading.Thread(target=drive,
                                args=(doc, slot, 100 + 10 * t + slot))
               for t, doc in enumerate(docs)
               for slot in range(senders_per_tenant)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    total = sum(counts.values())
    arr = np.asarray(ok_latencies) if ok_latencies else np.zeros(1)
    return {
        "offered_rps": offered_rps,
        "duration_s": duration_s,
        "sent": total,
        **counts,
        "shed_rate": counts["shed"] / total if total else 0.0,
        "ok_p50_ms": float(np.quantile(arr, 0.5)),
        "ok_p95_ms": float(np.quantile(arr, 0.95)),
    }


def rate_limit_phase(url: str, burst_requests: int) -> dict:
    from repro.serve import RateLimited, ServeClient

    with ServeClient(url) as client:
        greedy, polite = _open_sessions(client, 2)
        rng = np.random.default_rng(7)
        limited = ok = 0
        for _ in range(burst_requests):
            try:
                client.step(greedy["session_id"], *_example(greedy, rng),
                            wait=False)
                ok += 1
            except RateLimited:
                limited += 1
        # The polite tenant has its own bucket: its first request sails.
        polite_result = client.step(polite["session_id"],
                                    *_example(polite, rng), wait=False)
        return {
            "burst_requests": burst_requests,
            "ok": ok,
            "limited": limited,
            "other_tenant_unaffected":
                bool(np.isfinite(polite_result["loss"])),
        }


def shutdown_phase(server: GatewayProcess, client, docs: list[dict],
                   inflight: int) -> dict:
    """SIGINT with requests in flight; every client must get an answer."""
    from repro.serve import GatewayError

    settled: list[str] = []
    lock = threading.Lock()
    # SIGINT must land while requests are genuinely on the wire, not
    # before slow CI threads have connected: every sender passes the
    # barrier immediately before its POST, and the main thread gives the
    # sends a beat to reach the server.
    barrier = threading.Barrier(inflight + 1)

    def fire(doc, seed):
        rng = np.random.default_rng(seed)
        example = _example(doc, rng)
        try:
            barrier.wait(timeout=30)
            client.step(doc["session_id"], *example, wait=False)
            outcome = "ok"
        except GatewayError as exc:
            # 503 (cancelled by shutdown) or connection loss: answered,
            # not hung.
            outcome = f"refused-{exc.status}"
        except threading.BrokenBarrierError:
            outcome = "never-started"
        with lock:
            settled.append(outcome)

    threads = [threading.Thread(target=fire, args=(docs[i % len(docs)], i))
               for i in range(inflight)]
    for t in threads:
        t.start()
    barrier.wait(timeout=30)
    time.sleep(0.2)
    result = server.interrupt_and_wait()
    for t in threads:
        t.join(timeout=30)
    result["inflight_at_sigint"] = inflight
    result["clients_settled"] = len(settled)
    result["client_outcomes"] = sorted(set(settled))
    result["zero_hung_futures"] = len(settled) == inflight \
        and not any(t.is_alive() for t in threads)
    return result


def trace_propagation_phase(url: str, steps: int) -> dict:
    """Drive a process-backend server and check /v1/trace correlation."""
    from repro.serve import ServeClient

    with ServeClient(url) as client:
        doc = _open_sessions(client, 1)[0]
        rng = np.random.default_rng(11)
        request_ids = [client.step(doc["session_id"],
                                   *_example(doc, rng))["request_id"]
                       for _ in range(steps)]
        events = client.trace()["traceEvents"]
    stage_pids = {e["pid"] for e in events if e["cat"] == "stage"
                  and e["name"] != "worker_execute"}
    worker_rows = [e for e in events if e["name"] == "worker_execute"]
    worker_pids = {e["pid"] for e in worker_rows}
    worker_rids: set[str] = set()
    for event in worker_rows:
        worker_rids.update(event["args"].get("request_id", ()))
    return {
        "steps": steps,
        "events": len(events),
        "gateway_pids": sorted(stage_pids),
        "worker_pids": sorted(worker_pids),
        "worker_execute_rows": len(worker_rows),
        "kernel_rows": sum(1 for e in events if e["cat"] == "kernel"),
        #: worker rows come from a different process than the gateway rows
        "cross_process": bool(worker_pids) and worker_pids.isdisjoint(
            stage_pids),
        #: every request the client saw is echoed back by some worker row
        "request_ids_correlated": set(request_ids) <= worker_rids,
    }


def held_connections_phase(url: str, target: int) -> dict:
    """Open and *hold* ``target`` keep-alive connections at once.

    Every connection does two healthz round trips while all the others
    stay open — proving the event loop serves them concurrently — and a
    real training step runs mid-hold to show the step path is live, not
    just the accept loop.
    """
    import http.client as hc
    from urllib.parse import urlsplit

    from repro.serve import ServeClient

    try:  # headroom for target sockets + the server's side of each
        import resource

        soft, hard = resource.getrlimit(resource.RLIMIT_NOFILE)
        want = target * 2 + 256
        if soft < want:
            resource.setrlimit(resource.RLIMIT_NOFILE,
                               (min(want, hard), hard))
    except (ImportError, ValueError, OSError):  # pragma: no cover
        pass

    parsed = urlsplit(url)
    conns: list[hc.HTTPConnection] = []
    errors = 0
    for _ in range(target):
        try:
            conn = hc.HTTPConnection(parsed.hostname, parsed.port,
                                     timeout=60)
            conn.connect()
            conns.append(conn)
        except OSError:
            errors += 1
    held = len(conns)

    ok_roundtrips = 0
    lock = threading.Lock()

    def sweep(shard: list[hc.HTTPConnection]) -> None:
        nonlocal ok_roundtrips, errors
        for conn in shard:
            try:
                conn.request("GET", "/v1/healthz")
                response = conn.getresponse()
                response.read()
                good = response.status == 200
            except (OSError, hc.HTTPException):
                good = False
            with lock:
                if good:
                    ok_roundtrips += 1
                else:
                    errors += 1

    rounds = 2
    step_loss = None
    for round_no in range(rounds):
        shards = [conns[i::16] for i in range(16)]
        threads = [threading.Thread(target=sweep, args=(shard,))
                   for shard in shards if shard]
        for t in threads:
            t.start()
        if round_no == 0:
            # a full step while every connection above is being held
            with ServeClient(url) as client:
                doc = _open_sessions(client, 1)[0]
                rng = np.random.default_rng(21)
                step_loss = client.step(doc["session_id"],
                                        *_example(doc, rng))["loss"]
        for t in threads:
            t.join()
    for conn in conns:
        conn.close()
    return {
        "target": target,
        "held": held,
        "roundtrips_expected": held * rounds,
        "roundtrips_ok": ok_roundtrips,
        "errors": errors,
        "step_served_while_held": step_loss is not None
        and bool(np.isfinite(step_loss)),
    }


def wire_bytes_phase(url: str, fmt: str, senders: int,
                     steps_each: int) -> dict:
    """Drive the MCUNet batch-8 workload and read the server's own byte
    counters: HTTP step-body bytes by format, pool pickle bytes, and shm
    slab copy bytes. ``senders`` concurrent threads give the scheduler
    real coalescing pressure, so the per-step costs reflect batched
    dispatch, not batch-of-one."""
    from repro.serve import ServeClient

    errors: list[Exception] = []
    with ServeClient(url, binary=(fmt == "binary")) as client:
        doc = _open_sessions(client, 1)[0]

        def drive(seed: int) -> None:
            rng = np.random.default_rng(seed)
            for _ in range(steps_each):
                try:
                    client.step(doc["session_id"], *_example(doc, rng))
                except Exception as exc:  # noqa: BLE001 - gated below
                    errors.append(exc)

        threads = [threading.Thread(target=drive, args=(30 + i,))
                   for i in range(senders)]
        began = time.perf_counter()
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        elapsed = time.perf_counter() - began
        metrics = client.metrics()

    steps = metrics.get(f"serve.http.steps_{fmt}", 0.0)
    http_bytes = metrics.get(f"serve.http.step_bytes_{fmt}", 0.0)
    pickled = metrics.get("serve.worker.serialized_bytes", 0.0)
    shm_copied = metrics.get("serve.worker.shm_bytes", 0.0)
    fill = metrics.get("serve.batch_fill") or {}
    expected = senders * steps_each
    return {
        "format": fmt,
        "steps": steps,
        "expected_steps": expected,
        "errors": len(errors),
        "seconds": elapsed,
        "throughput_rps": expected / elapsed if elapsed else 0.0,
        "batch_fill_mean": fill.get("mean", 0.0),
        "http_body_bytes": http_bytes,
        "worker_pickled_bytes": pickled,
        "shm_copied_bytes": shm_copied,
        # what crosses a serialization boundary (HTTP body + pool pickle)
        "serialized_bytes_per_step":
            (http_bytes + pickled) / steps if steps else 0.0,
        # every byte the transport moves, including zero-copy slab writes
        "bytes_copied_per_step":
            (http_bytes + pickled + shm_copied) / steps if steps else 0.0,
    }


def run(quick: bool) -> dict:
    from repro.serve import ServeClient

    steps = 8 if quick else 32
    duration = 2.0 if quick else 6.0
    result: dict = {"workload": {
        "model": MODEL, "scheme": "paper sparse-update",
        "backend": "thread", "max_batch": 8, "workers": 2,
        "cpu_count": os.cpu_count(),
    }}

    # -- servers A + A2: the paired closed loops ------------------------------
    # A is the watermark-backpressure server (queue depth 8, the
    # committed baseline's config); A2 hosts the gated concurrent loop:
    # 16 keep-alive connections per tenant so concurrent same-session
    # submits coalesce into micro-batches — the asyncio front door,
    # binary wire, and batch-aware dispatch measured together at the
    # operating point the rebuild targets (a deeper queue keeps the
    # watermark out of the way; 32 in flight vs depth 8 would shed).
    # All three loops run in alternating bursts (see ClosedLoop) so the
    # concurrent-vs-serial and binary-vs-json ratios are weather-proof.
    # Concurrent bursts are long (12 steps/sender) because each burst
    # pays thread spawn + queue ramp-up before coalescing reaches steady
    # state; 6-step bursts measured ~0.5 mean batch fill vs ~0.9 here.
    rounds = 2 if quick else 4
    conc_steps = 3 if quick else 12    # per sender per burst
    serial_steps = max(1, steps // rounds)
    server = GatewayProcess("--max-queue-depth", "8", "--workers", "2",
                            "--drain-timeout", "10")
    try:
        client = ServeClient(server.url)
        docs = _open_sessions(client, 2)
        server2 = GatewayProcess("--max-queue-depth", "64", "--workers",
                                 "2", "--batch-hold-ms", "10",
                                 "--drain-timeout", "10")
        try:
            client2 = ServeClient(server2.url)
            json_client2 = ServeClient(server2.url, binary=False)
            docs2 = _open_sessions(client2, 2)
            banner(f"paired closed loops: serial 2x1 (baseline workload) "
                   f"vs concurrent 2x{CLOSED_LOOP_SENDERS} binary vs "
                   f"json, {rounds} interleaved bursts")
            serial_loop = ClosedLoop(client, docs)
            conc_loop = ClosedLoop(client2, docs2, CLOSED_LOOP_SENDERS)
            json_loop = ClosedLoop(json_client2, docs2,
                                   CLOSED_LOOP_SENDERS)
            serial_loop.warmup(2)
            conc_loop.warmup(2)
            json_loop.warmup(1)
            for _ in range(rounds):
                serial_loop.burst(serial_steps)
                conc_loop.burst(conc_steps)
                json_loop.burst(conc_steps)
            result["closed_loop_serial"] = serial_loop.result()
            result["closed_loop"] = conc_loop.result()
            result["closed_loop_json"] = json_loop.result()
            json_client2.close()
            client2.close()
        finally:
            server2.kill()

        # server A stays up: overload, held connections, live shutdown
        capacity = result["closed_loop_serial"]["throughput_rps"]
        offered = max(20.0, 3.0 * capacity)
        banner(f"open loop: offering {offered:.0f} req/s "
               f"(~3x measured serial capacity) for {duration:.0f}s")
        result["open_loop"] = open_loop(client, docs, offered, duration)
        banner(f"holding {HELD_CONNECTIONS_TARGET} simultaneous "
               f"keep-alive connections")
        result["held_connections"] = held_connections_phase(
            server.url, HELD_CONNECTIONS_TARGET)
        result["shutdown"] = shutdown_phase(server, client, docs,
                                            inflight=6)
        client.close()
    finally:
        server.kill()

    # -- server B: per-tenant rate limits ------------------------------------
    banner("rate limit: greedy tenant bursts past 2 req/s (burst 2)")
    server = GatewayProcess("--rate-limit", "2", "--rate-burst", "2",
                            "--max-queue-depth", "64")
    try:
        result["rate_limit"] = rate_limit_phase(server.url,
                                                burst_requests=8)
        result["rate_limit_shutdown"] = server.interrupt_and_wait()
    finally:
        server.kill()

    # -- servers C/C2: kernel sampling on — what does tracing cost? ----------
    # A 5% overhead budget needs a paired measurement: traced and
    # untraced servers run side by side and their serial loops alternate
    # bursts, so host drift cancels out of the ratio. Serial workload on
    # purpose — the concurrent loop's throughput also swings with
    # batch-fill luck, which would make the budget a coin flip.
    banner("tracing overhead: paired serial loops, --trace-sample 16 "
           "vs untraced")
    server = GatewayProcess("--max-queue-depth", "8", "--workers", "2",
                            "--trace-sample", "16")
    try:
        server2 = GatewayProcess("--max-queue-depth", "8", "--workers",
                                 "2")
        try:
            client = ServeClient(server.url)
            client2 = ServeClient(server2.url)
            traced_loop = ClosedLoop(client, _open_sessions(client, 2))
            plain_loop = ClosedLoop(client2, _open_sessions(client2, 2))
            traced_loop.warmup(2)
            plain_loop.warmup(2)
            for _ in range(rounds):
                traced_loop.burst(serial_steps)
                plain_loop.burst(serial_steps)
            traced = traced_loop.result()
            untraced = plain_loop.result()
            result["tracing_overhead"] = {
                "traced": traced,
                "baseline_rps": untraced["throughput_rps"],
                "untraced": untraced,
                "throughput_ratio":
                    traced["throughput_rps"] / untraced["throughput_rps"],
            }
            client.close()
            client2.close()
        finally:
            server2.kill()
    finally:
        server.kill()

    # -- server D: process backend — spans must cross the pickle boundary ----
    banner("trace propagation: process backend, /v1/trace correlation")
    server = GatewayProcess("--backend", "process", "--workers", "1",
                            "--max-batch", "2", "--trace-sample", "4")
    try:
        result["trace_propagation"] = trace_propagation_phase(
            server.url, steps=4 if quick else 8)
    finally:
        server.kill()

    # -- servers E/F: bytes per step, legacy vs fast wire end to end ---------
    senders, steps_each = (8, 3) if quick else (8, 8)
    result["wire_formats"] = {}
    for fmt, channel in (("json", "pickle"), ("binary", "shm")):
        banner(f"wire bytes: {fmt} HTTP bodies + {channel} worker channel, "
               f"{senders} senders x {steps_each} steps (batch-8 coalescing)")
        server = GatewayProcess(
            "--backend", "process", "--workers", "2", "--max-batch", "8",
            "--worker-channel", channel, "--batch-hold-ms", "2",
            "--max-queue-depth", "128")
        try:
            result["wire_formats"][f"{fmt}_{channel}"] = wire_bytes_phase(
                server.url, fmt, senders, steps_each)
        finally:
            server.kill()
    legacy = result["wire_formats"]["json_pickle"]
    fast = result["wire_formats"]["binary_shm"]
    result["wire_formats"]["serialized_bytes_ratio"] = (
        legacy["serialized_bytes_per_step"]
        / fast["serialized_bytes_per_step"]
        if fast["serialized_bytes_per_step"] else float("inf"))
    return result


def _report(result: dict) -> None:
    closed = result["closed_loop"]
    print(f"{'closed loop':>12}: {closed['throughput_rps']:6.1f} req/s   "
          f"p50 {closed['p50_ms']:7.2f} ms   p95 {closed['p95_ms']:7.2f} ms"
          f"   fifo_ok={closed['fifo_ok']}   "
          f"({closed['senders_per_tenant']} conns/tenant, baseline "
          f"{BASELINE_CLOSED_RPS:.1f} -> "
          f"{closed['throughput_rps'] / BASELINE_CLOSED_RPS:.2f}x)")
    serial = result["closed_loop_serial"]
    print(f"{'serial loop':>12}: {serial['throughput_rps']:6.1f} req/s   "
          f"p50 {serial['p50_ms']:7.2f} ms   p95 {serial['p95_ms']:7.2f} ms"
          f"   (baseline workload, "
          f"{serial['throughput_rps'] / BASELINE_CLOSED_RPS:.2f}x)")
    closed_json = result["closed_loop_json"]
    print(f"{'json loop':>12}: {closed_json['throughput_rps']:6.1f} req/s   "
          f"(binary = "
          f"{closed['throughput_rps'] / closed_json['throughput_rps']:.2f}x"
          f" at the same concurrency)")
    over = result["open_loop"]
    print(f"{'open loop':>12}: offered {over['offered_rps']:6.1f} req/s   "
          f"ok {over['ok']}   shed {over['shed']} "
          f"({over['shed_rate']:.0%})   ok p95 {over['ok_p95_ms']:7.2f} ms")
    rate = result["rate_limit"]
    print(f"{'rate limit':>12}: {rate['limited']}/{rate['burst_requests']} "
          f"limited, other tenant unaffected="
          f"{rate['other_tenant_unaffected']}")
    down = result["shutdown"]
    print(f"{'shutdown':>12}: SIGINT with {down['inflight_at_sigint']} in "
          f"flight -> exit {down['exit_code']} in {down['seconds']:.1f}s, "
          f"outcomes {down['client_outcomes']}, "
          f"zero_hung={down['zero_hung_futures']}")
    stages = closed["stages_ms"]
    if stages:
        breakdown = "  ".join(f"{stage} {stats['mean']:.2f}"
                              for stage, stats in stages.items())
        print(f"{'stages (ms)':>12}: {breakdown}   "
              f"coverage {closed['span_coverage']:.0%} "
              f"(serial {serial['span_coverage']:.0%})")
    overhead = result["tracing_overhead"]
    print(f"{'tracing':>12}: sampled closed loop "
          f"{overhead['traced']['throughput_rps']:6.1f} req/s = "
          f"{overhead['throughput_ratio']:.0%} of untraced")
    prop = result["trace_propagation"]
    print(f"{'propagation':>12}: {prop['worker_execute_rows']} worker rows "
          f"(pids {prop['worker_pids']}), {prop['kernel_rows']} kernel "
          f"rows, cross_process={prop['cross_process']}, "
          f"correlated={prop['request_ids_correlated']}")
    held = result["held_connections"]
    print(f"{'held conns':>12}: {held['held']}/{held['target']} held, "
          f"{held['roundtrips_ok']}/{held['roundtrips_expected']} round "
          f"trips ok, errors={held['errors']}, "
          f"step_served={held['step_served_while_held']}")
    formats = result["wire_formats"]
    for key in ("json_pickle", "binary_shm"):
        phase = formats[key]
        print(f"{key:>12}: {phase['serialized_bytes_per_step']:9.0f} "
              f"serialized B/step   {phase['bytes_copied_per_step']:9.0f} "
              f"copied B/step   fill {phase['batch_fill_mean']:.2f}")
    print(f"{'wire ratio':>12}: binary+shm serializes "
          f"{formats['serialized_bytes_ratio']:.1f}x fewer bytes/step")


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true",
                        help="CI smoke mode: shorter phases")
    parser.add_argument("--out", type=Path,
                        default=Path("BENCH_gateway.json"))
    args = parser.parse_args(argv)
    sys.path.insert(0, str(SRC))

    banner("repro.serve HTTP gateway benchmark")
    result = run(args.quick or fast_mode())
    _report(result)
    args.out.write_text(json.dumps(result, indent=1))
    print(f"\nwrote {args.out}")

    failures = []
    closed = result["closed_loop"]
    serial = result["closed_loop_serial"]
    for name in ("closed_loop", "closed_loop_serial", "closed_loop_json"):
        loop = result[name]
        if loop["requests"] != loop["expected_requests"] \
                or not loop["fifo_ok"]:
            failures.append(f"{name} lost requests or broke FIFO")
    if result["open_loop"]["shed_rate"] <= 0.0:
        failures.append("overload never shed (queue grew unbounded?)")
    if result["open_loop"]["error"] > 0:
        failures.append(f"open loop saw {result['open_loop']['error']} "
                        f"non-429 errors")
    if result["rate_limit"]["limited"] < 1 \
            or not result["rate_limit"]["other_tenant_unaffected"]:
        failures.append("rate limiting did not behave per-tenant")
    for phase in ("shutdown", "rate_limit_shutdown"):
        if result[phase]["exit_code"] != 0:
            failures.append(f"{phase}: exit {result[phase]['exit_code']}")
    if not result["shutdown"]["zero_hung_futures"]:
        failures.append("shutdown left a client hanging")
    # The 5-stage coverage gate holds on the serial loop, where each
    # request's spans are uncontended; the concurrent loop's coverage is
    # reported but not gated (hold/queue time is attributed to stages,
    # cross-request scheduling jitter is not).
    if not 0.9 <= serial["span_coverage"] <= 1.1:
        failures.append(f"stage spans cover {serial['span_coverage']:.0%} "
                        f"of serial request totals (want within 10%)")
    if result["tracing_overhead"]["throughput_ratio"] < 0.95:
        failures.append(
            f"tracing cost "
            f"{1 - result['tracing_overhead']['throughput_ratio']:.0%} "
            f"of closed-loop throughput (budget: 5%)")
    prop = result["trace_propagation"]
    if not (prop["cross_process"] and prop["request_ids_correlated"]):
        failures.append("process-backend trace rows missing or "
                        "uncorrelated with gateway request IDs")
    # The 1.5x gate is paired: the serial loop runs the committed
    # baseline's exact workload in bursts interleaved with the
    # concurrent loop, so the ratio is immune to host weather (the
    # serial loop measured 1.02x the committed 204.9 req/s under calm
    # conditions — it IS the baseline, re-measured today). The absolute
    # comparison to the committed number is a backstop, not the gate.
    if closed["throughput_rps"] < 1.5 * serial["throughput_rps"]:
        failures.append(
            f"concurrent closed loop {closed['throughput_rps']:.1f} req/s "
            f"is under 1.5x the paired baseline-workload loop "
            f"({serial['throughput_rps']:.1f} req/s)")
    if closed["throughput_rps"] < BASELINE_CLOSED_RPS:
        failures.append(
            f"concurrent closed loop {closed['throughput_rps']:.1f} req/s "
            f"does not even clear the committed pre-asyncio baseline "
            f"({BASELINE_CLOSED_RPS:.1f} req/s) outright")
    if serial["throughput_rps"] < 0.8 * BASELINE_CLOSED_RPS:
        failures.append(
            f"serial closed loop {serial['throughput_rps']:.1f} req/s "
            f"regressed below 0.8x the committed baseline "
            f"({BASELINE_CLOSED_RPS:.1f} req/s) on its own workload "
            f"(0.8 tolerates host steal-time weather, not a real "
            f"regression)")
    held = result["held_connections"]
    if held["held"] < HELD_CONNECTIONS_TARGET or held["errors"] > 0 \
            or held["roundtrips_ok"] != held["roundtrips_expected"] \
            or not held["step_served_while_held"]:
        failures.append(
            f"held-connection phase: {held['held']} held "
            f"(want >= {HELD_CONNECTIONS_TARGET}), {held['errors']} errors")
    formats = result["wire_formats"]
    for key in ("json_pickle", "binary_shm"):
        if formats[key]["errors"] or formats[key]["steps"] \
                != formats[key]["expected_steps"]:
            failures.append(f"wire bytes phase {key} lost steps or errored")
    if formats["serialized_bytes_ratio"] < 5.0:
        failures.append(
            f"binary+shm serializes only "
            f"{formats['serialized_bytes_ratio']:.1f}x fewer bytes per "
            f"step than json+pickle (want >= 5x)")
    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
