"""Figure 9 (a–g): training throughput across platforms and frameworks.

One sub-benchmark per paper panel: Jetson Nano (a), Jetson Orin + Llama (b),
STM32 MCU (c), Apple M1 (d), Snapdragon CPU (e), Raspberry Pi (f),
Snapdragon DSP (g). Cells are items/second from the device cost model
applied to each framework's compiled schedule; paper values are printed
alongside. Reproduction target: who wins and by roughly what factor.
"""

import pytest

from repro.baselines import (FRAMEWORKS, simulate_inference_projection,
                             simulate_training)
from repro.devices import get_device
from repro.models import build_model, paper_scheme
from repro.report import render_table
from repro.report.paper_data import (FIG9_APPLE_M1, FIG9_JETSON_NANO,
                                     FIG9_MCU, FIG9_ORIN_LLAMA,
                                     FIG9_RASPBERRY_PI,
                                     FIG9_SNAPDRAGON_CPU,
                                     FIG9_SNAPDRAGON_DSP)
from repro.sparse import full_update
from repro.train import Lion, SGD

from _helpers import banner

CNN_MODELS = ["mcunet", "mobilenetv2", "resnet50"]
NLP_MODELS = ["bert", "distilbert"]
BASELINES = ["tensorflow", "pytorch", "jax", "mnn"]


def _build(model_key, batch=8):
    if model_key in NLP_MODELS:
        return build_model(model_key, batch=batch, seq_len=64), "transformer"
    if model_key == "llama7b":
        return build_model(model_key, batch=1, seq_len=512), "transformer"
    return build_model(model_key, batch=batch), "cnn"


def panel(device_key, model_keys, frameworks=BASELINES, optimizer=None):
    device = get_device(device_key)
    grid = {}
    for model_key in model_keys:
        forward, family = _build(model_key)
        scheme = paper_scheme(forward)
        row = {}
        for fw_key in frameworks:
            result = simulate_training(
                forward, FRAMEWORKS[fw_key], device, scheme=scheme,
                optimizer=optimizer or SGD(0.01), model_family=family)
            row[fw_key] = result.throughput_per_s if result else None
        pe = FRAMEWORKS["pockengine"]
        row["pockengine_full"] = simulate_training(
            forward, pe, device, scheme=full_update(forward),
            optimizer=optimizer or SGD(0.01),
            model_family=family).throughput_per_s
        row["pockengine_sparse"] = simulate_training(
            forward, pe, device, scheme=scheme,
            optimizer=optimizer or SGD(0.01),
            model_family=family).throughput_per_s
        grid[model_key] = row
    return grid


def show(title, grid, paper):
    banner(title)
    columns = BASELINES + ["pockengine_full", "pockengine_sparse"]
    rows = []
    for model, row in grid.items():
        cells = [f"{row[c]:.2f}" if row.get(c) else "-" for c in columns]
        ref = paper.get(model, {})
        ref_pe = ref.get("pockengine_full"), ref.get("pockengine_sparse")
        rows.append([model] + cells
                    + [f"{ref_pe[0]}/{ref_pe[1]}" if ref_pe[0] else "n/a"])
    print(render_table(["Model"] + columns + ["paper PE f/s"], rows))


def _assert_pockengine_wins(grid):
    for model, row in grid.items():
        pe = row["pockengine_full"]
        for fw in BASELINES:
            if row.get(fw):
                assert pe > row[fw], (model, fw)
        assert row["pockengine_sparse"] > pe, model


def test_fig9f_raspberry_pi(benchmark):
    grid = benchmark.pedantic(
        lambda: panel("raspberry_pi_4", CNN_MODELS + NLP_MODELS),
        rounds=1, iterations=1)
    show("Figure 9(f) — Raspberry Pi 4 CPU, items/sec", grid,
         FIG9_RASPBERRY_PI)
    _assert_pockengine_wins(grid)
    # Paper headline: >10x over TensorFlow on Pi for MobileNetV2-class nets.
    ratio = grid["mobilenetv2"]["pockengine_full"] \
        / grid["mobilenetv2"]["tensorflow"]
    assert 7.0 < ratio < 25.0  # paper: 13.3x


def test_fig9a_jetson_nano(benchmark):
    grid = benchmark.pedantic(
        lambda: panel("jetson_nano", CNN_MODELS + NLP_MODELS,
                      frameworks=["tensorflow", "pytorch"]),
        rounds=1, iterations=1)
    show("Figure 9(a) — Jetson Nano GPU, items/sec", grid, FIG9_JETSON_NANO)
    for model, row in grid.items():
        assert row["pockengine_full"] > row["pytorch"], model
        assert row["pockengine_sparse"] > row["pockengine_full"], model
    ratio = grid["mobilenetv2"]["pockengine_full"] \
        / grid["mobilenetv2"]["pytorch"]
    assert 1.5 < ratio < 8.0  # paper: ~2.9x


def test_fig9b_orin_llama(benchmark):
    def run():
        forward, family = _build("llama7b")
        orin = get_device("jetson_orin")
        scheme = paper_scheme(forward)
        out = {}
        out["pytorch"] = simulate_training(
            forward, FRAMEWORKS["pytorch"], orin,
            scheme=full_update(forward), optimizer=Lion(1e-4),
            model_family=family).throughput_per_s
        pe = FRAMEWORKS["pockengine"]
        out["pockengine_full"] = simulate_training(
            forward, pe, orin, scheme=full_update(forward),
            optimizer=Lion(1e-4), model_family=family).throughput_per_s
        out["pockengine_sparse"] = simulate_training(
            forward, pe, orin, scheme=scheme, optimizer=Lion(1e-4),
            model_family=family).throughput_per_s
        return out

    row = benchmark.pedantic(run, rounds=1, iterations=1)
    banner("Figure 9(b) — Jetson AGX Orin, LlamaV2-7B sentences/sec")
    paper = FIG9_ORIN_LLAMA["llama7b"]
    print(render_table(
        ["framework", "measured (sent/s)", "paper"],
        [[k, f"{v:.3f}", paper.get(k, "-")] for k, v in row.items()]))
    assert row["pockengine_sparse"] > row["pockengine_full"] \
        > row["pytorch"]
    assert 4.0 < row["pockengine_sparse"] / row["pytorch"] < 16.0  # 8.5x


def test_fig9c_mcu(benchmark):
    def run():
        out = {}
        mcu = get_device("stm32f746")
        for model_key in ("mcunet", "mobilenetv2_035"):
            forward = build_model(model_key, batch=1)
            scheme = paper_scheme(forward)
            projected = simulate_inference_projection(
                forward, FRAMEWORKS["tflite_micro"], mcu)
            pe = FRAMEWORKS["pockengine"]
            full = simulate_training(forward, pe, mcu,
                                     scheme=full_update(forward))
            sparse = simulate_training(forward, pe, mcu, scheme=scheme)
            out[model_key] = {
                "tflite_micro": projected.throughput_per_s,
                "pockengine_full": full.throughput_per_s,
                "pockengine_sparse": sparse.throughput_per_s,
            }
        return out

    grid = benchmark.pedantic(run, rounds=1, iterations=1)
    banner("Figure 9(c) — STM32F746 MCU, images/sec (TF-Lite projected)")
    cols = ["tflite_micro", "pockengine_full", "pockengine_sparse"]
    rows = [[m] + [f"{r[c]:.3f}" for c in cols]
            + [str(FIG9_MCU.get(m, {}))] for m, r in grid.items()]
    print(render_table(["Model"] + cols + ["paper"], rows))
    for model, row in grid.items():
        assert row["pockengine_full"] > 5 * row["tflite_micro"], model
        assert row["pockengine_sparse"] > 1.5 * row["pockengine_full"], model


def test_fig9d_apple_m1(benchmark):
    grid = benchmark.pedantic(
        lambda: panel("apple_m1", CNN_MODELS + NLP_MODELS,
                      frameworks=["tensorflow", "pytorch"]),
        rounds=1, iterations=1)
    show("Figure 9(d) — Apple M1 GPU (Metal), items/sec", grid,
         FIG9_APPLE_M1)
    for model, row in grid.items():
        assert row["pockengine_full"] > row["tensorflow"], model


def test_fig9e_snapdragon_cpu(benchmark):
    grid = benchmark.pedantic(
        lambda: panel("snapdragon_cpu", CNN_MODELS + NLP_MODELS,
                      frameworks=[]),
        rounds=1, iterations=1)
    show("Figure 9(e) — Snapdragon 8 Gen 1 CPU, items/sec", grid,
         FIG9_SNAPDRAGON_CPU)
    for model, row in grid.items():
        assert row["pockengine_sparse"] > row["pockengine_full"], model


def test_fig9g_snapdragon_dsp(benchmark):
    grid = benchmark.pedantic(
        lambda: panel("snapdragon_dsp", CNN_MODELS, frameworks=[]),
        rounds=1, iterations=1)
    show("Figure 9(g) — Snapdragon 8 Gen 1 DSP (SNPE), images/sec", grid,
         FIG9_SNAPDRAGON_DSP)
    # Baselines cannot run on the DSP at all (paper shows only PockEngine).
    device = get_device("snapdragon_dsp")
    forward = build_model("mcunet", batch=8)
    for fw in ("pytorch", "tensorflow", "jax", "mnn"):
        assert simulate_training(forward, FRAMEWORKS[fw], device) is None
    for model, row in grid.items():
        assert row["pockengine_sparse"] > row["pockengine_full"], model
