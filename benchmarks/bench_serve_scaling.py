"""Serve scaling benchmark: thread backend vs process-pool backend, plus a
cold-start-with-warm-cache check for the cross-process program cache.

Workload: 16 tenants fine-tuning ``mcunet_micro`` under the paper's sparse
scheme (the standard serve bench), interleaved single-example requests.
Three measured configurations:

* ``threads-1`` — single-process, one worker thread (the pre-scaling
  baseline);
* ``threads-4`` — the thread-pool backend at 4 workers (GIL-bound: numpy
  releases the GIL inside kernels, Python dispatch does not);
* ``process-4`` — the process-pool backend at 4 workers fed from persisted
  plan artifacts (``--cache-dir``); every step ships the session's mutable
  state overlay both ways, so the IPC cost is measured honestly, not
  hidden.

Cold start: a child process compiles against a fresh ``--cache-dir`` and
exits; a second child process serves the same configuration from the same
directory and must report **zero compilations** (it binds the persisted
plans instead). The script exits non-zero if it recompiles — this is the
CI gate for the cross-process program cache.

Keep heavy imports inside functions: the process backend spawns workers
that re-import this file as ``__mp_main__``, and a worker that imports the
compiler would defeat the point (the JSON records a live worker probe).

Usage::

    PYTHONPATH=src python benchmarks/bench_serve_scaling.py [--quick]
"""

from __future__ import annotations

import argparse
import json
import subprocess
import sys
import tempfile
from pathlib import Path
from time import perf_counter

import numpy as np

from _helpers import banner, fast_mode

MODEL = "mcunet_micro"
TENANTS = 16


def _traffic(service, sessions, steps_per_tenant: int, rng) -> int:
    """Interleaved single-example traffic; returns the request count."""
    family = sessions[0].family
    futures = []
    for _ in range(steps_per_tenant):
        for session in sessions:
            x = rng.standard_normal(family.example_shape).astype(np.float32)
            y = np.int64(rng.integers(0, family.num_classes))
            futures.append(service.submit(session.id, x, y))
    for future in futures:
        future.result()
    return len(futures)


def run_backend(backend: str, workers: int, steps_per_tenant: int,
                warmup_per_tenant: int, seed: int = 0,
                cache_dir=None) -> dict:
    from repro.serve import FineTuneService

    rng = np.random.default_rng(seed)
    with FineTuneService(max_batch=8, workers=workers, backend=backend,
                         cache_dir=cache_dir) as service:
        sessions = [
            service.create_session(MODEL, scheme="paper",
                                   tenant=f"tenant-{i:02d}")
            for i in range(TENANTS)
        ]
        service.warm(sessions[0].id)
        _traffic(service, sessions, warmup_per_tenant, rng)

        began = perf_counter()
        requests = _traffic(service, sessions, steps_per_tenant, rng)
        elapsed = perf_counter() - began

        stats = service.stats()
        cache = service.cache.stats
        result = {
            "backend": backend,
            "workers": workers,
            "requests": requests,
            "seconds": elapsed,
            "throughput": requests / elapsed,
            "step_p50_ms": stats["serve.step_latency_ms"]["p50"],
            "step_p95_ms": stats["serve.step_latency_ms"]["p95"],
            "request_p95_ms": stats["serve.request_latency_ms"]["p95"],
            "compiles": cache.compiles,
            "disk_hits": cache.disk_hits,
            "session_state_bytes": sessions[0].state_bytes(),
        }
        if service.engine is not None:
            # Honesty probe: a live worker reports what it imported.
            result["worker_probe"] = service.engine.probe()
        return result


def serve_once(cache_dir: str, steps_per_tenant: int, tenants: int,
               seed: int = 0) -> dict:
    """One service lifetime against ``cache_dir`` (cold-start child)."""
    from repro.serve import FineTuneService

    rng = np.random.default_rng(seed)
    began = perf_counter()
    with FineTuneService(max_batch=8, workers=2,
                         cache_dir=cache_dir) as service:
        sessions = [service.create_session(MODEL, scheme="paper")
                    for _ in range(tenants)]
        service.warm(sessions[0].id)
        ready_seconds = perf_counter() - began
        requests = _traffic(service, sessions, steps_per_tenant, rng)
        cache = service.cache.stats
        return {
            "requests": requests,
            "time_to_ready_s": ready_seconds,
            "compiles": cache.compiles,
            "disk_hits": cache.disk_hits,
            "disk_writes": cache.disk_writes,
        }


def run_cold_start(steps_per_tenant: int) -> dict:
    """Compile in one process, kill it, reload from cache in a fresh one."""
    with tempfile.TemporaryDirectory(prefix="repro-bench-cache-") as cache:
        runs = []
        for attempt in range(2):
            child = subprocess.run(
                [sys.executable, __file__, "--serve-once", cache,
                 "--steps", str(steps_per_tenant), "--tenants", "4"],
                capture_output=True, text=True, timeout=600)
            if child.returncode != 0:
                raise RuntimeError(
                    f"cold-start child failed:\n{child.stderr[-2000:]}")
            runs.append(json.loads(child.stdout.splitlines()[-1]))
        return {"first_run": runs[0], "second_run": runs[1]}


def run(steps_per_tenant: int, warmup_per_tenant: int) -> dict:
    with tempfile.TemporaryDirectory(prefix="repro-bench-plans-") as cache:
        single = run_backend("thread", 1, steps_per_tenant,
                             warmup_per_tenant)
        threads = run_backend("thread", 4, steps_per_tenant,
                              warmup_per_tenant)
        process = run_backend("process", 4, steps_per_tenant,
                              warmup_per_tenant, cache_dir=cache)
    cold = run_cold_start(max(2, steps_per_tenant // 4))
    import os

    return {
        "workload": {
            "model": MODEL,
            "scheme": "paper sparse-update",
            "tenants": TENANTS,
            "steps_per_tenant": steps_per_tenant,
            "warmup_per_tenant": warmup_per_tenant,
            "max_batch": 8,
            # Scaling numbers are meaningless without this: on a 1-core
            # box *any* parallel backend loses to the single worker (which
            # also coalesces the largest micro-batches); the structural
            # signal is process-vs-thread at equal worker count.
            "cpu_count": os.cpu_count(),
        },
        "single_process": single,
        "threads_4": threads,
        "process_4": process,
        "scaling_vs_single": {
            "threads_4": threads["throughput"] / single["throughput"],
            "process_4": process["throughput"] / single["throughput"],
        },
        "cold_start": cold,
    }


def _report(result: dict) -> None:
    banner(f"repro.serve scaling — {TENANTS}-tenant {MODEL}, sparse scheme "
           f"(thread vs process backends)")
    for key, label in (("single_process", "threads x1"),
                       ("threads_4", "threads x4"),
                       ("process_4", "process x4")):
        r = result[key]
        print(f"{label:>12}: {r['throughput']:7.1f} steps/s   "
              f"step p50 {r['step_p50_ms']:7.2f} ms   "
              f"request p95 {r['request_p95_ms']:8.1f} ms   "
              f"compiles {r['compiles']}")
    scaling = result["scaling_vs_single"]
    cores = result["workload"]["cpu_count"]
    print(f"{'scaling':>12}: threads x4 = {scaling['threads_4']:.2f}x, "
          f"process x4 = {scaling['process_4']:.2f}x vs single on "
          f"{cores} core(s) (per-step state shipped: "
          f"{result['process_4']['session_state_bytes'] / 1024:.0f}KB); "
          f"process/thread at equal workers = "
          f"{result['process_4']['throughput'] / result['threads_4']['throughput']:.2f}x")
    probe = result["process_4"].get("worker_probe", {})
    print(f"{'workers':>12}: compiler_imported="
          f"{probe.get('compiler_imported')} "
          f"autodiff_imported={probe.get('autodiff_imported')}")
    cold = result["cold_start"]
    print(f"{'cold start':>12}: run1 compiles={cold['first_run']['compiles']}"
          f" (ready {cold['first_run']['time_to_ready_s']:.2f}s), "
          f"run2 compiles={cold['second_run']['compiles']} "
          f"disk_hits={cold['second_run']['disk_hits']} "
          f"(ready {cold['second_run']['time_to_ready_s']:.2f}s)")


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true",
                        help="CI smoke mode: fewer steps")
    parser.add_argument("--steps", type=int, default=None,
                        help="step requests per tenant")
    parser.add_argument("--warmup", type=int, default=None)
    parser.add_argument("--tenants", type=int, default=TENANTS,
                        help="(--serve-once only) tenant count")
    parser.add_argument("--serve-once", metavar="CACHE_DIR",
                        help="internal: one service lifetime against "
                             "CACHE_DIR, stats as JSON on stdout")
    parser.add_argument("--out", type=Path,
                        default=Path("BENCH_serve_scaling.json"))
    args = parser.parse_args(argv)

    if args.serve_once:
        stats = serve_once(args.serve_once, args.steps or 2, args.tenants)
        print(json.dumps(stats))
        return 0

    quick = args.quick or fast_mode()
    steps = args.steps or (6 if quick else 24)
    warmup = args.warmup if args.warmup is not None else (2 if quick else 4)

    result = run(steps, warmup)
    _report(result)
    args.out.write_text(json.dumps(result, indent=1))
    print(f"\nwrote {args.out}")

    failures = []
    # The cross-process cache gate: a restart against a warm cache dir must
    # never compile (it binds persisted plans).
    if result["cold_start"]["second_run"]["compiles"] != 0:
        failures.append("cold start with a warm cache recompiled "
                        f"{result['cold_start']['second_run']['compiles']} "
                        "programs (expected 0)")
    if result["cold_start"]["second_run"]["disk_hits"] < 1:
        failures.append("warm restart never touched the persistent cache")
    probe = result["process_4"].get("worker_probe", {})
    if probe.get("compiler_imported") or probe.get("autodiff_imported"):
        failures.append("a step worker imported the compiler/autodiff")
    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
