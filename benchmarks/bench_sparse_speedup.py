"""Section 4.2 speedup chart: Sparse-BP speedup over Full-BP per model.

The paper's embedded chart reports 1.3–1.6x on Raspberry Pi; we regenerate
the same ratios from compiled schedules.
"""

from repro.baselines import FRAMEWORKS, simulate_training
from repro.devices import get_device
from repro.models import build_model, paper_scheme
from repro.report import render_table
from repro.report.paper_data import SPARSE_SPEEDUP
from repro.sparse import bias_only, full_update
from repro.train import SGD

from _helpers import banner

MODELS = ["mcunet", "mobilenetv2", "resnet50", "bert", "distilbert"]


def run():
    device = get_device("raspberry_pi_4")
    pe = FRAMEWORKS["pockengine"]
    rows = {}
    for model_key in MODELS:
        family = "transformer" if model_key in ("bert", "distilbert") \
            else "cnn"
        kwargs = {"batch": 8}
        if family == "transformer":
            kwargs["seq_len"] = 64
        forward = build_model(model_key, **kwargs)

        def latency(scheme):
            return simulate_training(
                forward, pe, device, scheme=scheme, optimizer=SGD(0.01),
                model_family=family).latency_ms

        full = latency(full_update(forward))
        rows[model_key] = {
            "bias_only": full / latency(bias_only(forward)),
            "sparse": full / latency(paper_scheme(forward)),
        }
    return rows


def test_sparse_bp_speedup(benchmark):
    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    banner("Section 4.2 — Sparse-BP speedup over Full-BP (Raspberry Pi)")
    table = [[m, f"{v['bias_only']:.2f}x", f"{v['sparse']:.2f}x",
              f"{SPARSE_SPEEDUP[m]}x"]
             for m, v in rows.items()]
    print(render_table(["Model", "Bias-only", "Sparse-BP", "paper sparse"],
                       table))
    for model, v in rows.items():
        # Paper band is 1.3-1.6x; we accept 1.2-3.5x (the abstract itself
        # quotes "1.5 - 3.5x" across platforms).
        assert 1.15 < v["sparse"] < 3.6, model
        assert v["bias_only"] > 1.0, model
