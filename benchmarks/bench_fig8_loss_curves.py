"""Figure 8: training loss curves — FT-Full vs Sparse-BP (BERT on QNLI and
SST-2).

Reproduction target: sparse updates slightly slow the curve but converge to
a comparable final loss.
"""

import numpy as np

from repro.data import text_source, text_task
from repro.models import build_model, paper_scheme
from repro.report import render_series
from repro.runtime.compiler import compile_training
from repro.sparse import full_update
from repro.train import Adam, Trainer, load_checkpoint, snapshot_weights

from _helpers import banner, fast_mode

SEQ = 16
VOCAB = 256


def run_curves():
    forward = build_model("bert_micro", batch=8, seq_len=SEQ, num_classes=4)
    source = text_source(vocab_size=VOCAB, seq_len=SEQ, n_train=256)
    pre = compile_training(forward, optimizer=Adam(2e-3),
                           scheme=full_update(forward))
    trainer = Trainer(pre, forward, input_name="ids")
    trainer.fit(source.batches(8, np.random.default_rng(0),
                               80 if fast_mode() else 200))
    checkpoint = snapshot_weights(pre, forward)

    steps = 60 if fast_mode() else 160
    curves = {}
    for dataset in ("qnli", "sst2"):
        task = text_task(dataset, vocab_size=VOCAB, seq_len=SEQ,
                         n_train=256, n_test=96)
        for method, scheme in (("FT-Full", full_update(forward)),
                               ("Sparse", paper_scheme(forward))):
            load_checkpoint(forward, checkpoint)
            program = compile_training(forward, optimizer=Adam(2.5e-3),
                                       scheme=scheme)
            t = Trainer(program, forward, input_name="ids")
            losses = [t.step(x, y)
                      for x, y in task.batches(8, np.random.default_rng(1),
                                               steps)]
            curves[(dataset, method)] = losses
    return curves


def _smooth(series, k=10):
    kernel = np.ones(k) / k
    return np.convolve(series, kernel, mode="valid")


def test_fig8_loss_curves(benchmark):
    curves = benchmark.pedantic(run_curves, rounds=1, iterations=1)
    banner("Figure 8 — BERT fine-tuning loss curves, FT-Full vs Sparse-BP")
    for (dataset, method), losses in curves.items():
        smooth = _smooth(losses)
        sampled = smooth[:: max(1, len(smooth) // 8)]
        print(render_series(f"{dataset} / {method} (smoothed loss)",
                            list(sampled)))
    for dataset in ("qnli", "sst2"):
        full = _smooth(curves[(dataset, "FT-Full")])
        sparse = _smooth(curves[(dataset, "Sparse")])
        # Both descend...
        assert full[-1] < full[0]
        assert sparse[-1] < sparse[0]
        # ...and the sparse end-point is in the same regime as full's
        # (paper: "slightly slow down the training curve, but do not
        # degrade the final accuracy").
        assert sparse[-1] < full[0]
