"""Table 4: training memory, full vs sparse backpropagation.

Full-size model graphs, PockEngine compilation, memory from the liveness
profiler plus runtime base memory; "-" marks configurations exceeding the
device's RAM (the paper's OOM dashes).
"""

from repro.baselines import FRAMEWORKS, simulate_training
from repro.devices import get_device
from repro.models import build_model, paper_scheme
from repro.report import render_table
from repro.report.paper_data import TABLE4_MEMORY
from repro.sparse import full_update
from repro.train import SGD, Lion

from _helpers import banner, fast_mode

# (device, model key, batches, family, optimizer)
CONFIGS = [
    ("stm32f746", "mcunet", (1,), "cnn", SGD(0.01)),
    ("jetson_nano", "mobilenetv2", (1, 4, 16), "cnn", SGD(0.01)),
    ("jetson_nano", "resnet50", (1, 4, 16), "cnn", SGD(0.01)),
    ("jetson_orin", "bert", (1, 4, 16), "transformer", SGD(0.01)),
    ("jetson_orin", "llama7b", (1,), "transformer", Lion(1e-4)),
]


def measure_cell(device_key, model_key, batch, family, optimizer):
    kwargs = {"batch": batch}
    if family == "transformer":
        kwargs["seq_len"] = 512 if model_key == "llama7b" else 128
    forward = build_model(model_key, **kwargs)
    device = get_device(device_key)
    pe = FRAMEWORKS["pockengine"]
    full = simulate_training(forward, pe, device,
                             scheme=full_update(forward),
                             optimizer=optimizer, model_family=family)
    sparse = simulate_training(forward, pe, device,
                               scheme=paper_scheme(forward),
                               optimizer=optimizer, model_family=family)
    return full, sparse


def run_table4():
    rows = []
    for device_key, model_key, batches, family, optimizer in CONFIGS:
        if fast_mode() and model_key == "llama7b":
            continue
        for batch in batches:
            full, sparse = measure_cell(device_key, model_key, batch,
                                        family, optimizer)
            rows.append((device_key, model_key, batch, full, sparse))
    return rows


def _fmt(result):
    if result.oom:
        return f"- (needs {result.memory_mb:.0f}MB)"
    if result.memory_mb > 1024:
        return f"{result.memory_mb / 1024:.1f}GB"
    return f"{result.memory_mb:.0f}MB"


def test_table4_training_memory(benchmark):
    rows = benchmark.pedantic(run_table4, rounds=1, iterations=1)
    banner("Table 4 — training memory, Full-BP vs Sparse-BP (simulated "
           "devices)")
    paper = {(d, m, b): (f, s) for d, m, b, f, s in TABLE4_MEMORY}
    table = []
    for device, model, batch, full, sparse in rows:
        ref = paper.get((device, model, batch))
        table.append([
            device, model, batch, _fmt(full), _fmt(sparse),
            f"{full.memory_mb / sparse.memory_mb:.1f}x",
            f"{ref[0]}/{ref[1]}MB" if ref else "n/a",
        ])
    print(render_table(
        ["Device", "Model", "bs", "Full-BP", "Sparse-BP", "saving",
         "paper (full/sparse)"], table))

    for device, model, batch, full, sparse in rows:
        assert sparse.memory_mb < full.memory_mb, (model, batch)
    # Savings grow with batch size (paper's observation).
    mbv2 = {batch: (full.memory_mb, sparse.memory_mb)
            for device, model, batch, full, sparse in rows
            if model == "mobilenetv2"}
    if 1 in mbv2 and 16 in mbv2:
        ratio_small = mbv2[1][0] / mbv2[1][1]
        ratio_large = mbv2[16][0] / mbv2[16][1]
        assert ratio_large > ratio_small
