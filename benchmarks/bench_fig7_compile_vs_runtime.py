"""Figure 7: runtime autodiff vs compile-time differentiation.

Conventional frameworks re-derive the backward graph every iteration and
dispatch each op through the host language; PockEngine moves all of that to
compile time. We measure (a) the simulated per-iteration overhead on a slow
edge CPU, and (b) the real wall-clock cost of our own compile-time autodiff
(paid once) via pytest-benchmark.
"""

from repro.autodiff import build_backward
from repro.devices import estimate_latency, get_device
from repro.models import build_model
from repro.report import render_table
from repro.runtime.compiler import CompileOptions, compile_training
from repro.sparse import full_update
from repro.train import SGD, add_loss
from repro.ir import GraphBuilder

from _helpers import banner


def overhead_comparison():
    forward = build_model("mobilenetv2_micro", batch=8)
    device = get_device("raspberry_pi_4")
    program = compile_training(
        forward, optimizer=SGD(0.01),
        options=CompileOptions(materialize_state=False))
    compiled = estimate_latency(program.graph, program.schedule, device)
    eager = estimate_latency(program.graph, program.schedule, device,
                             interpreted=True, runtime_autodiff=True)
    return compiled, eager


def test_fig7_runtime_vs_compile_time(benchmark):
    forward = build_model("mobilenetv2_micro", batch=8)

    def compile_once():
        graph = forward.clone()
        builder = GraphBuilder(graph=graph)
        _, loss = add_loss(builder, "softmax_ce", graph.outputs[0])
        return build_backward(graph, loss, sorted(graph.trainable))

    # (a) Real cost of compile-time differentiation — paid once, not per
    # iteration. pytest-benchmark times it.
    result = benchmark(compile_once)
    assert result.grads

    # (b) Simulated per-iteration overhead the compilation removes.
    compiled, eager = overhead_comparison()
    banner("Figure 7 — per-iteration overhead: runtime vs compile-time "
           "autodiff (MobileNetV2-micro, Raspberry Pi)")
    print(render_table(
        ["Mode", "total/iter", "dispatch", "tape construction"],
        [
            ["eager (runtime autodiff)", f"{eager.total_ms:.1f}ms",
             f"{eager.dispatch_us / 1000:.1f}ms",
             f"{eager.autodiff_us / 1000:.1f}ms"],
            ["compiled (PockEngine)", f"{compiled.total_ms:.1f}ms",
             "0ms", "0ms (compile-time)"],
        ]))
    per_iter_overhead = eager.dispatch_us + eager.autodiff_us
    assert per_iter_overhead > 0.2 * compiled.total_us
    assert eager.total_us > compiled.total_us
