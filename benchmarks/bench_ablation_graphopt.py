"""Ablation: training-graph optimizations (paper §2.4/§3.2, "up to 1.2x").

Switches each optimization off in isolation on the PockEngine profile and
measures the latency regression on Raspberry Pi: operator fusion,
kernel selection (Winograd for frozen convs), layout selection, and the
memory effect of operator reordering (bench_ablation_reorder_memory covers
the memory side in detail).
"""

import dataclasses

from repro.baselines import FRAMEWORKS, simulate_training
from repro.devices import get_device
from repro.models import build_model, paper_scheme
from repro.report import render_table
from repro.sparse import full_update
from repro.train import SGD

from _helpers import banner


def run():
    device = get_device("raspberry_pi_4")
    forward = build_model("resnet50", batch=8)
    scheme = paper_scheme(forward)
    pe = FRAMEWORKS["pockengine"]

    variants = {
        "all optimizations": pe,
        "no fusion": dataclasses.replace(pe, fusion=False),
        "no winograd": dataclasses.replace(pe, winograd=False),
        "no layout": dataclasses.replace(pe, layout=False),
        "no reorder": dataclasses.replace(pe, reorder=False,
                                          holds_all_grads=True),
    }
    out = {}
    for name, profile in variants.items():
        result = simulate_training(forward, profile, device, scheme=scheme,
                                   optimizer=SGD(0.01))
        out[name] = result
    return out


def run_parallel_fusion():
    """QKV merging on a transformer, enabled by the frozen sparse prefix."""
    from repro.devices import estimate_latency
    from repro.runtime.compiler import CompileOptions, compile_training

    device = get_device("jetson_nano")
    forward = build_model("bert", batch=8, seq_len=128)
    scheme = paper_scheme(forward)
    out = {}
    for label, enabled in (("with QKV fusion", True),
                           ("without QKV fusion", False)):
        program = compile_training(
            forward, optimizer=SGD(0.01), scheme=scheme,
            options=CompileOptions(parallel_fusion=enabled,
                                   materialize_state=False, device=device))
        latency = estimate_latency(program.graph, program.schedule, device)
        stats = program.meta["report"].pass_stats.get("parallel_fusion", {})
        out[label] = (latency.total_ms, latency.num_kernels,
                      stats.get("groups", 0))
    return out


def test_graph_optimization_ablation(benchmark):
    results = benchmark.pedantic(run, rounds=1, iterations=1)
    banner("Ablation — training-graph optimizations on ResNet-50 "
           "(Raspberry Pi, sparse scheme)")
    base = results["all optimizations"]
    rows = []
    for name, r in results.items():
        rows.append([
            name, f"{r.latency_ms:.0f}ms",
            f"{r.latency_ms / base.latency_ms:.3f}x",
            f"{r.memory_mb:.0f}MB", r.num_kernels,
        ])
    print(render_table(
        ["Variant", "latency", "slowdown vs full-opt", "memory",
         "kernels"], rows))

    assert results["no fusion"].latency_ms > base.latency_ms
    assert results["no winograd"].latency_ms > base.latency_ms
    assert results["no layout"].latency_ms > base.latency_ms
    # Reordering is a memory optimization: latency ~unchanged, memory up.
    assert results["no reorder"].memory_mb > base.memory_mb
    # Paper: graph optimizations together buy up to ~1.2x.
    combined = dataclasses.replace(
        FRAMEWORKS["pockengine"], fusion=False, winograd=False,
        layout=False)
    device = get_device("raspberry_pi_4")
    forward = build_model("resnet50", batch=8)
    none = simulate_training(forward, combined, device,
                             scheme=paper_scheme(forward),
                             optimizer=SGD(0.01))
    speedup = none.latency_ms / base.latency_ms
    assert 1.05 < speedup < 3.0, speedup


def test_parallel_fusion_ablation(benchmark):
    results = benchmark.pedantic(run_parallel_fusion, rounds=1, iterations=1)
    banner("Ablation — parallel-linear (QKV) fusion on BERT "
           "(Jetson Nano, sparse scheme's frozen prefix)")
    rows = [[name, f"{ms:.1f}ms", kernels, groups]
            for name, (ms, kernels, groups) in results.items()]
    print(render_table(
        ["Variant", "latency", "kernels", "merged groups"], rows))
    on = results["with QKV fusion"]
    off = results["without QKV fusion"]
    assert on[2] > 0, "sparse scheme should freeze mergeable QKV groups"
    assert on[1] < off[1], "fusion should reduce kernel launches"
    assert on[0] <= off[0] * 1.01
