"""Fixtures for the benchmark harness.

Every benchmark regenerates one table or figure from the paper's evaluation
and prints a paper-vs-measured comparison. ``pytest benchmarks/
--benchmark-only`` runs them all; set ``REPRO_BENCH_FAST=1`` to shrink the
training-based benches (fewer steps/datasets) for smoke runs.

Plain helpers (``banner``, ``fast_mode``) live in ``benchmarks/_helpers.py``
so that this conftest never has to be imported by name — see that module's
docstring for why.
"""

from __future__ import annotations

import numpy as np
import pytest


@pytest.fixture(scope="session")
def bench_rng():
    return np.random.default_rng(0)
