"""Shared helpers for the benchmark harness.

Every benchmark regenerates one table or figure from the paper's evaluation
and prints a paper-vs-measured comparison. ``pytest benchmarks/
--benchmark-only`` runs them all; set ``REPRO_BENCH_FAST=1`` to shrink the
training-based benches (fewer steps/datasets) for smoke runs.
"""

from __future__ import annotations

import os

import numpy as np
import pytest


def fast_mode() -> bool:
    return os.environ.get("REPRO_BENCH_FAST", "0") == "1"


@pytest.fixture(scope="session")
def bench_rng():
    return np.random.default_rng(0)


def banner(title: str) -> None:
    print()
    print("=" * 72)
    print(title)
    print("=" * 72)
