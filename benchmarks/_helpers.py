"""Importable helpers shared by the benchmark modules.

These used to live in ``benchmarks/conftest.py``, but test modules under
``tests/`` also do ``from conftest import ...``; when pytest collected both
directories in one run, whichever conftest imported first claimed the
``conftest`` module name and the other directory's imports broke. Plain
helpers now live here (benchmark files import them directly); only pytest
fixtures stay in the conftest.
"""

from __future__ import annotations

import os


def fast_mode() -> bool:
    """Shrink training-based benches (fewer steps/datasets) for smoke runs."""
    return os.environ.get("REPRO_BENCH_FAST", "0") == "1"


def banner(title: str) -> None:
    print()
    print("=" * 72)
    print(title)
    print("=" * 72)
