"""Table 1: framework feature comparison.

Regenerates the paper's capability matrix from the framework behaviour
profiles (the same profiles that drive every latency/memory simulation, so
the table is consistent with the measurements by construction).
"""

from repro.baselines import FRAMEWORKS, TABLE1_COLUMNS, feature_row
from repro.report import render_table

from _helpers import banner

ROW_ORDER = ["pytorch", "tensorflow", "jax", "mnn", "tflite_micro",
             "pockengine"]


def build_table():
    rows = []
    for key in ROW_ORDER:
        profile = FRAMEWORKS[key]
        features = feature_row(profile)
        rows.append([profile.name] + [features[c] for c in TABLE1_COLUMNS])
    return rows


def test_table1_features(benchmark):
    rows = benchmark(build_table)
    banner("Table 1 — framework feature comparison (paper page 3)")
    print(render_table(["Framework"] + list(TABLE1_COLUMNS), rows))
    by_name = {r[0]: r for r in rows}
    # Paper's qualitative claims hold:
    assert by_name["PockEngine"][1:] == ["yes"] * 6
    assert by_name["PyTorch"][2] == "no"      # sparse-BP
    assert by_name["PyTorch"][5] == "no"      # compile-time autodiff
    assert by_name["TF-Lite Micro (projected)"][1] == "no"  # training
