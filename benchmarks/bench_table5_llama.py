"""Table 5: LlamaV2-7B instruction tuning on Jetson AGX Orin.

Latency/memory cells come from the full-size fp16 llama7b graph simulated
per framework row (PyTorch full, PyTorch LoRA — real rank-8 adapters
injected by :mod:`repro.sparse.lora` — PockEngine full, PockEngine
sparse). Loss/quality cells come from actually fine-tuning llama_micro on
the built-in instruction corpus and measuring held-out loss/perplexity as
the Alpaca/MT-Bench proxy (DESIGN.md §2).
"""

import dataclasses

import numpy as np

from repro.baselines import FRAMEWORKS, simulate_training
from repro.data import instruction_batches
from repro.devices import get_device
from repro.models import build_model, paper_scheme
from repro.report import render_table
from repro.report.paper_data import TABLE5_LLAMA
from repro.runtime.compiler import compile_training
from repro.sparse import LoRAConfig, full_update, inject_lora, lora_scheme
from repro.train import (Adam, Lion, Trainer, load_checkpoint,
                         perplexity, snapshot_weights)

from _helpers import banner, fast_mode

SEQ = 512


def simulate_rows():
    forward = build_model("llama7b", batch=1, seq_len=SEQ)
    lora_forward = inject_lora(forward, LoRAConfig(rank=8, alpha=16.0))
    orin = get_device("jetson_orin")
    pt = FRAMEWORKS["pytorch"]
    # PyTorch honours requires_grad=False for LoRA's frozen base weights
    # (tensor-level pruning) but keeps its eager runtime behaviour.
    pt_lora = dataclasses.replace(pt, key="pytorch_lora",
                                  sparse_mode="pruned")
    pe = FRAMEWORKS["pockengine"]
    rows = {
        ("pytorch", "full"): simulate_training(
            forward, pt, orin, full_update(forward), Lion(1e-4),
            "transformer"),
        ("pytorch", "lora"): simulate_training(
            lora_forward, pt_lora, orin, lora_scheme(lora_forward),
            Lion(1e-4), "transformer"),
        ("pockengine", "full"): simulate_training(
            forward, pe, orin, full_update(forward), Lion(1e-4),
            "transformer"),
        ("pockengine", "sparse"): simulate_training(
            forward, pe, orin, paper_scheme(forward), Lion(1e-4),
            "transformer"),
    }
    return rows


def finetune_quality():
    """llama_micro fine-tune: held-out loss per method (quality proxy)."""
    forward = build_model("llama_micro", batch=4, seq_len=24)
    steps_pre = 80 if fast_mode() else 180
    steps_ft = 40 if fast_mode() else 80
    _, batches, (x_test, y_test) = instruction_batches(
        seq_len=24, batch_size=4, steps=steps_pre, seed=0)
    pre = compile_training(forward, optimizer=Adam(2e-3),
                           scheme=full_update(forward))
    pre_tr = Trainer(pre, forward, input_name="ids")
    pre_tr.fit(batches)
    checkpoint = snapshot_weights(pre, forward)

    def heldout(trainer):
        losses = [trainer.mean_loss(x_test[i:i + 4], y_test[i:i + 4])
                  for i in range(0, len(x_test) - 3, 4)]
        return float(np.mean(losses))

    quality = {}
    for name in ("full", "sparse", "lora"):
        _, more, _ = instruction_batches(seq_len=24, batch_size=4,
                                         steps=steps_ft, seed=1)
        load_checkpoint(forward, checkpoint)
        if name == "lora":
            graph = inject_lora(forward, LoRAConfig(rank=4, alpha=8.0))
            scheme = lora_scheme(graph)
        else:
            graph = forward
            scheme = full_update(forward) if name == "full" \
                else paper_scheme(forward)
        program = compile_training(graph, optimizer=Adam(1e-3),
                                   scheme=scheme)
        trainer = Trainer(program, graph, input_name="ids")
        trainer.fit(more)
        quality[name] = heldout(trainer)
    return quality


def test_table5_llama_instruction_tuning(benchmark):
    rows, quality = benchmark.pedantic(
        lambda: (simulate_rows(), finetune_quality()), rounds=1,
        iterations=1)
    banner("Table 5 — LlamaV2-7B instruction tuning on Jetson AGX Orin")
    table = []
    for key, result in rows.items():
        paper = TABLE5_LLAMA[key]
        loss = quality.get(key[1], None)
        table.append([
            f"{key[0]} / {key[1]}",
            f"{result.latency_ms / 1000:.2f}s",
            f"{result.memory_mb / 1024:.1f}GB",
            f"{SEQ / (result.latency_ms / 1000):.0f}",
            f"{loss:.3f}" if loss is not None else "-",
            f"{paper[0]}s / {paper[1]}GB",
        ])
    print(render_table(
        ["Framework/Method", "Iter latency", "Memory", "tok/s",
         "held-out loss (micro)", "paper (lat/mem)"], table))
    print(f"\nmicro-model quality proxy: full {quality['full']:.3f}, "
          f"sparse {quality['sparse']:.3f}, lora {quality['lora']:.3f} "
          f"(ppl {perplexity(quality['full']):.2f} / "
          f"{perplexity(quality['sparse']):.2f} / "
          f"{perplexity(quality['lora']):.2f})")

    # Headline claims (paper abstract + Table 5):
    pt = rows[("pytorch", "full")]
    pe_full = rows[("pockengine", "full")]
    pe_sparse = rows[("pockengine", "sparse")]
    lora = rows[("pytorch", "lora")]
    speedup_vs_pt = pt.latency_ms / pe_sparse.latency_ms
    assert 4.0 < speedup_vs_pt < 16.0          # paper: 7.9x
    assert pe_sparse.latency_ms < 0.7 * pe_full.latency_ms   # paper: 1.9x
    assert lora.latency_ms > 2.0 * pe_sparse.latency_ms
    tok_per_s = SEQ / (pe_sparse.latency_ms / 1000)
    assert 300 < tok_per_s < 900               # paper: 550 tok/s
    assert pe_sparse.memory_mb < pe_full.memory_mb
    # Quality: sparse tracks full fine-tuning.
    assert quality["sparse"] < quality["full"] * 1.75
