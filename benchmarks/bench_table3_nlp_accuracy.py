"""Table 3: language-model fine-tuning accuracy on GLUE-like tasks.

BERT/DistilBERT micro encoders, pre-trained on the synthetic source token
distribution, fine-tuned per scheme on seven named tasks.
"""

import numpy as np

from repro.data import text_source, text_task
from repro.data.tasks import TEXT_TASKS
from repro.models import build_model, paper_scheme
from repro.report import render_table
from repro.report.paper_data import TABLE3_AVG_ACC
from repro.runtime.compiler import compile_training
from repro.sparse import bias_only, full_update
from repro.train import Adam, Trainer, load_checkpoint, snapshot_weights

from _helpers import banner, fast_mode

MODELS = ["distilbert_micro", "bert_micro"]
VOCAB = 256
SEQ = 16


def pretrain(model_key):
    forward = build_model(model_key, batch=8, seq_len=SEQ, num_classes=4)
    source = text_source(vocab_size=VOCAB, seq_len=SEQ, n_train=256)
    program = compile_training(forward, optimizer=Adam(2e-3),
                               scheme=full_update(forward))
    trainer = Trainer(program, forward, input_name="ids")
    steps = 100 if fast_mode() else 220
    trainer.fit(source.batches(8, np.random.default_rng(0), steps))
    return forward, snapshot_weights(program, forward)


def finetune(forward, checkpoint, scheme, task):
    load_checkpoint(forward, checkpoint)
    program = compile_training(forward, optimizer=Adam(2.5e-3), scheme=scheme)
    trainer = Trainer(program, forward, input_name="ids")
    steps = 100 if fast_mode() else 260
    trainer.fit(task.batches(8, np.random.default_rng(1), steps))
    return 100.0 * trainer.evaluate(task.x_test, task.y_test)


def run_table3():
    datasets = list(TEXT_TASKS) if not fast_mode() else list(TEXT_TASKS)[:2]
    results = {}
    for model_key in MODELS:
        forward, checkpoint = pretrain(model_key)
        for method, scheme in (
            ("Full BP", full_update(forward)),
            ("Bias Only", bias_only(forward)),
            ("Sparse BP", paper_scheme(forward)),
        ):
            accs = {}
            for name in datasets:
                task = text_task(name, vocab_size=VOCAB, seq_len=SEQ,
                                 n_train=256, n_test=128)
                accs[name] = finetune(forward, checkpoint, scheme, task)
            results[(model_key, method)] = accs
    return results, datasets


def test_table3_nlp_accuracy(benchmark):
    results, datasets = benchmark.pedantic(run_table3, rounds=1,
                                           iterations=1)
    banner("Table 3 — language fine-tuning accuracy (%), synthetic "
           "GLUE-like suites")
    rows = []
    for (model, method), accs in results.items():
        avg = np.mean(list(accs.values()))
        rows.append([model, method, f"{avg:.1f}"]
                    + [f"{accs[d]:.1f}" for d in datasets])
    print(render_table(["Model", "Method", "Avg"] + datasets, rows))
    print("\nPaper averages (real GLUE):")
    for model, vals in TABLE3_AVG_ACC.items():
        print(f"  {model}: full {vals['full']}, bias {vals['bias']}, "
              f"sparse {vals['sparse']}")

    for model_key in MODELS:
        avg = {m: np.mean(list(results[(model_key, m)].values()))
               for m in ("Full BP", "Bias Only", "Sparse BP")}
        assert avg["Sparse BP"] >= avg["Bias Only"] - 2.0, model_key
