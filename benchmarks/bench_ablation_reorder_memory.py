"""Ablation: operator reordering / in-place update (paper §3.2, Table 4
note).

"In small batch training with sparse backpropagation, the cost of storing
parameter gradients is close to peak memory usage in forward and backward"
— the reorder pass applies each gradient the moment it is produced, so the
gradient buffers never accumulate. Measured with the liveness profiler on
real compiled graphs; cross-checked against the executor's observed peak
elsewhere in the test suite.
"""

from repro.memory import profile_memory
from repro.models import build_model, paper_scheme
from repro.passes import default_schedule, memory_aware_schedule
from repro.report import render_table
from repro.runtime.compiler import CompileOptions, compile_training
from repro.sparse import full_update
from repro.train import SGD

from _helpers import banner

MODELS = ["mobilenetv2", "resnet50", "bert"]


def run():
    rows = []
    for model_key in MODELS:
        # Batch 1: the "small batch training" regime the paper's reorder
        # claim addresses (on-device fine-tuning runs at batch 1-8).
        kwargs = {"batch": 1}
        if model_key == "bert":
            kwargs["seq_len"] = 64
        forward = build_model(model_key, **kwargs)
        for scheme_name, scheme in (("full", full_update(forward)),
                                    ("sparse", paper_scheme(forward))):
            program = compile_training(
                forward, optimizer=SGD(0.01), scheme=scheme,
                options=CompileOptions(reorder=False, applies_last=True,
                                       materialize_state=False))
            held = profile_memory(
                program.graph, default_schedule(program.graph,
                                                applies_last=True))
            reordered = profile_memory(
                program.graph, memory_aware_schedule(program.graph))
            rows.append((model_key, scheme_name,
                         held.peak_transient_bytes,
                         reordered.peak_transient_bytes))
    return rows


def test_reorder_memory_ablation(benchmark):
    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    banner("Ablation — operator reordering / immediate in-place updates")
    table = [[m, s, f"{held / 1024:.0f}KB", f"{reord / 1024:.0f}KB",
              f"{held / reord:.2f}x"]
             for m, s, held, reord in rows]
    print(render_table(
        ["Model", "Scheme", "grads held (peak)", "reordered (peak)",
         "saving"], table))
    for model, scheme, held, reordered in rows:
        assert reordered <= held, (model, scheme)
    # The saving must be visible on at least the sparse schemes.
    sparse_savings = [held / reordered
                      for m, s, held, reordered in rows if s == "sparse"]
    assert max(sparse_savings) > 1.1
