"""Chaos benchmark: durability gates under live worker kills.

Runs an in-process ``FineTuneService`` on the **process backend** behind a
real ``GatewayServer``, drives it with retrying ``ServeClient`` threads,
and attacks it while traffic is live:

* **kill loop** — a killer thread SIGKILLs a random step-worker process
  every few hundred milliseconds while tenants submit keyed, retried
  steps. Gate: *zero lost and zero double-applied acknowledged steps* —
  every session's server-side ``examples`` counter must equal exactly the
  number of acks its client collected, and the pool must actually have
  been rebuilt (``worker_restarts >= 1``, kills >= 1);
* **lost response** — the ``gateway.reset_after_send`` fault point drops
  one response after the optimizer update applied. The client must
  recover via its idempotency key and the server must answer from the
  replay window (``serve.steps_replayed >= 1``) without a second update;
* **restore after crash** — every session is checkpointed, the whole
  service is torn down (the "crash"), and a fresh service restores each
  session from the shared checkpoint directory. Gates: restore p95 within
  the recorded bound, post-restore steps succeed, and the restored
  ``step_seq`` continues from the checkpointed value;
* **corrupt checkpoint fallback** — the newest checkpoint of one session
  is bit-flipped on disk; restore must quarantine it (``*.corrupt``) and
  fall back to the previous intact version.

Writes ``BENCH_chaos.json`` and exits non-zero if any gate fails.

Usage::

    PYTHONPATH=src python benchmarks/bench_chaos.py [--quick]
"""

from __future__ import annotations

import argparse
import json
import os
import random
import signal
import sys
import tempfile
import threading
import time
from pathlib import Path

import numpy as np

from _helpers import banner, fast_mode

SRC = Path(__file__).resolve().parent.parent / "src"
sys.path.insert(0, str(SRC))

from repro.serve import (FAULTS, FineTuneService, GatewayServer,  # noqa: E402
                         ServeClient)

MODEL = "mcunet_micro"


def _percentile(values: list[float], pct: float) -> float:
    if not values:
        return 0.0
    return float(np.percentile(np.asarray(values, dtype=np.float64), pct))


def _example(doc: dict, rng) -> tuple[list, int]:
    x = rng.standard_normal(doc["input_shape"]).astype(np.float32)
    return x, int(rng.integers(0, doc["num_classes"]))


def _service(root: Path, workers: int) -> FineTuneService:
    """A process-backend service sharing one artifact cache + checkpoint
    store across "crashes" (fresh services see the same directories)."""
    return FineTuneService(
        backend="process", workers=workers, max_batch=4,
        cache_dir=root / "cache", checkpoint_dir=root / "ckpt",
        checkpoint_every=5, keep_checkpoints=3)


class Killer(threading.Thread):
    """SIGKILLs one random live worker every ``interval`` seconds."""

    def __init__(self, service: FineTuneService, interval: float) -> None:
        super().__init__(daemon=True)
        self.service = service
        self.interval = interval
        self.kills = 0
        self._halt = threading.Event()

    def run(self) -> None:
        rng = random.Random(1234)
        # First kill after half an interval: the binary-wire + shm stack
        # drains the quick workload in under a second, and a killer that
        # waits a full interval before its first strike can miss the
        # traffic entirely (kills=0 -> gate failure with nothing broken).
        wait = self.interval / 2
        while not self._halt.wait(wait):
            wait = self.interval
            pids = self.service.engine.worker_pids()
            if not pids:
                continue
            try:
                os.kill(rng.choice(pids), signal.SIGKILL)
                self.kills += 1
            except ProcessLookupError:
                pass

    def stop(self) -> None:
        self._halt.set()
        self.join(timeout=5.0)


def _drive(client: ServeClient, doc: dict, steps: int, seed: int,
           acks: dict, errors: list) -> None:
    """One tenant: ``steps`` keyed, retried steps; counts each ack once."""
    rng = np.random.default_rng(seed)
    for _ in range(steps):
        x, y = _example(doc, rng)
        try:
            client.step(doc["session_id"], x, y, max_wait=120.0)
        except Exception as exc:  # noqa: BLE001 - gate input, not cleanup
            errors.append(f"{doc['session_id']}: {type(exc).__name__}: {exc}")
            return
        acks[doc["session_id"]] += 1


def run(quick: bool) -> dict:
    sessions = 3 if quick else 4
    steps = 10 if quick else 25
    post_steps = 3 if quick else 6
    workers = 2
    kill_interval = 0.8 if quick else 0.7
    restore_bound_s = 10.0  # CI-container generous; typical is <1s

    result: dict = {
        "benchmark": "chaos", "model": MODEL, "quick": quick,
        "sessions": sessions, "steps_per_session": steps,
        "gates": {},
    }
    failures: list[str] = []

    def gate(name: str, ok: bool, detail: str) -> None:
        result["gates"][name] = {"ok": bool(ok), "detail": detail}
        print(f"  {'PASS' if ok else 'FAIL'}  {name}: {detail}")
        if not ok:
            failures.append(f"{name}: {detail}")

    with tempfile.TemporaryDirectory(prefix="repro-chaos-") as tmp:
        root = Path(tmp)

        # -- phase 1+2: kill loop with one lost response -------------------
        print("phase 1: kill loop under live keyed traffic")
        service = _service(root, workers)
        gateway = GatewayServer(service, port=0, max_queue_depth=256,
                                step_timeout=120.0)
        gateway.start()
        client = ServeClient(gateway.host, gateway.port)
        docs = [client.create_session(MODEL, scheme="paper",
                                      tenant=f"tenant-{i}")
                for i in range(sessions)]
        # Drop exactly one response after the update applied: the client
        # must re-send the same idempotency key and get the recorded
        # result back instead of a second optimizer update.
        FAULTS.arm("gateway.reset_after_send", times=1, skip=sessions + 2)

        acks = {doc["session_id"]: 0 for doc in docs}
        errors: list[str] = []
        began = time.perf_counter()
        killer = Killer(service, kill_interval)
        killer.start()
        threads = [threading.Thread(
            target=_drive, args=(ServeClient(gateway.host, gateway.port),
                                 doc, steps, 100 + i, acks, errors))
            for i, doc in enumerate(docs)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        killer.stop()
        FAULTS.disarm()
        elapsed = time.perf_counter() - began

        stats = service.metrics.as_dict()
        examples = {doc["session_id"]:
                    int(service.sessions.get(doc["session_id"]).examples)
                    for doc in docs}
        result["kill_loop"] = {
            "elapsed_s": round(elapsed, 2),
            "kills": killer.kills,
            "worker_restarts": int(stats.get("serve.worker_restarts", 0)),
            "steps_replayed": int(stats.get("serve.steps_replayed", 0)),
            "acked": dict(acks),
            "server_examples": examples,
            "client_errors": errors,
        }
        gate("all_steps_acked",
             not errors and all(n == steps for n in acks.values()),
             f"acks={sum(acks.values())}/{sessions * steps}"
             + (f" errors={errors[:2]}" if errors else ""))
        gate("exactly_once",
             all(examples[sid] == acks[sid] for sid in acks),
             f"server examples {examples} vs acks {acks}")
        gate("workers_killed_and_rebuilt",
             killer.kills >= 1
             and int(stats.get("serve.worker_restarts", 0)) >= 1,
             f"kills={killer.kills} "
             f"restarts={int(stats.get('serve.worker_restarts', 0))}")
        gate("lost_response_replayed",
             int(stats.get("serve.steps_replayed", 0)) >= 1,
             f"steps_replayed={int(stats.get('serve.steps_replayed', 0))}")

        # -- phase 3: checkpoint everything, crash, restore ---------------
        print("phase 2: crash the service, restore from checkpoints")
        meta = {}
        for doc in docs:
            meta[doc["session_id"]] = client.checkpoint(doc["session_id"])
        gateway.close()
        service.close()  # the "crash": all in-memory session state is gone

        service = _service(root, workers)
        gateway = GatewayServer(service, port=0, max_queue_depth=256,
                                step_timeout=120.0)
        gateway.start()
        client = ServeClient(gateway.host, gateway.port)
        restore_s: list[float] = []
        restored = {}
        for doc in docs:
            t0 = time.perf_counter()
            restored[doc["session_id"]] = client.restore(
                session_id=doc["session_id"])
            restore_s.append(time.perf_counter() - t0)
        p95 = _percentile(restore_s, 95)
        result["restore"] = {
            "p50_s": round(_percentile(restore_s, 50), 3),
            "p95_s": round(p95, 3),
            "bound_s": restore_bound_s,
            "step_seq": {sid: r.get("step_seq")
                         for sid, r in restored.items()},
        }
        gate("restore_p95_bounded", p95 <= restore_bound_s,
             f"p95={p95:.3f}s bound={restore_bound_s}s")
        gate("restore_resumes_step_seq",
             all(restored[sid].get("step_seq") == meta[sid]["step_seq"]
                 for sid in restored),
             f"restored step_seq {result['restore']['step_seq']}")

        post_acks = {doc["session_id"]: 0 for doc in docs}
        post_errors: list[str] = []
        threads = [threading.Thread(
            target=_drive, args=(ServeClient(gateway.host, gateway.port),
                                 doc, post_steps, 200 + i, post_acks,
                                 post_errors))
            for i, doc in enumerate(docs)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        post_examples = {doc["session_id"]:
                         int(service.sessions.get(doc["session_id"]).examples)
                         for doc in docs}
        result["post_restore"] = {"acked": dict(post_acks),
                                  "server_examples": post_examples,
                                  "client_errors": post_errors}
        gate("post_restore_traffic",
             not post_errors
             and all(n == post_steps for n in post_acks.values())
             and all(post_examples[sid] == examples[sid] + post_acks[sid]
                     for sid in post_acks),
             f"post acks={sum(post_acks.values())}/"
             f"{sessions * post_steps}, examples continue from checkpoint")
        gateway.close()
        service.close()

        # -- phase 4: corrupt the newest checkpoint, fall back -------------
        print("phase 3: corrupt newest checkpoint, restore falls back")
        victim = docs[0]["session_id"]
        ckpts = sorted((root / "ckpt" / victim).glob("ckpt-*.ckpt"))
        newest = ckpts[-1]
        newest_seq = int(newest.stem.split("-")[1])
        blob = bytearray(newest.read_bytes())
        blob[len(blob) // 2] ^= 0xFF
        newest.write_bytes(bytes(blob))

        with _service(root, workers) as service:
            session = service.restore_session(session_id=victim)
            quarantined = list((root / "ckpt" / victim).glob("*.corrupt"))
            result["corrupt_fallback"] = {
                "versions_on_disk": len(ckpts),
                "restored_step_seq": session.step_seq,
                "quarantined": [p.name for p in quarantined],
            }
            gate("corrupt_checkpoint_quarantined_and_fell_back",
                 len(ckpts) >= 2 and len(quarantined) == 1
                 and session.step_seq < newest_seq,
                 f"{len(ckpts)} versions, restored step_seq="
                 f"{session.step_seq} < corrupted {newest_seq}, "
                 f"quarantined={[p.name for p in quarantined]}")

    result["failures"] = failures
    return result


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true",
                        help="smaller kill loop for CI smoke")
    parser.add_argument("--out", type=Path, default=Path("BENCH_chaos.json"))
    args = parser.parse_args(argv)

    banner("chaos: durability under worker kills")
    result = run(args.quick or fast_mode())
    args.out.write_text(json.dumps(result, indent=1))
    print(f"\nwrote {args.out}")

    for failure in result["failures"]:
        print(f"FAIL: {failure}", file=sys.stderr)
    return 1 if result["failures"] else 0


if __name__ == "__main__":
    sys.exit(main())
