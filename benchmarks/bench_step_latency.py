"""Step-latency benchmark: compiled execution plan vs legacy interpreter.

Workload: MCUNet sparse fine-tuning (the paper's on-device scenario) — the
``mcunet_micro`` variant under the paper's sparse-update scheme with SGD,
which is exactly what every request in ``repro.serve`` funnels through.
Small tensors make this overhead-dominated, i.e. the regime the compiled
plan targets: the kernels themselves are identical between backends.

Reports p50/p95 step latency, steady-state throughput, and steady-state
fresh-buffer allocations per step, and writes ``BENCH_step_latency.json``
so CI can track the repo's perf trajectory. Exits non-zero when the
plan-backed executor fails to beat the interpreter (the CI perf-smoke
gate).

Usage::

    PYTHONPATH=src python benchmarks/bench_step_latency.py [--quick]
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from time import perf_counter

import numpy as np

from repro.models import build_model, paper_scheme
from repro.runtime import Executor
from repro.runtime.compiler import compile_training
from repro.train import SGD

from _helpers import banner


def build_program(batch: int):
    forward = build_model("mcunet_micro", batch=batch)
    scheme = paper_scheme(forward)
    program = compile_training(forward, optimizer=SGD(0.05), scheme=scheme)
    return forward, program


def make_feeds(forward, program, batch: int, seed: int = 0):
    rng = np.random.default_rng(seed)
    x = rng.standard_normal(
        forward.spec(forward.inputs[0]).shape).astype(np.float32)
    y = rng.integers(0, 10, batch).astype(np.int64)
    return {forward.inputs[0]: x, program.meta["labels"]: y}


def measure(executor: Executor, feeds, steps: int, warmup: int):
    for _ in range(warmup):
        executor.run(feeds)
    latencies = []
    fresh_allocs = 0
    began_all = perf_counter()
    for _ in range(steps):
        began = perf_counter()
        executor.run(feeds)
        latencies.append(perf_counter() - began)
        fresh_allocs += executor.last_step_fresh_allocs
    wall = perf_counter() - began_all
    # Kernel-time floor (both backends run identical kernels): an observed
    # pass sums per-kernel spans; step time minus that is the executor's
    # own dispatch/bookkeeping overhead — the cost the plan compiles away.
    spans = []
    executor.observer = lambda node, s: spans.append(s)
    kernel_samples = []
    for _ in range(max(3, min(10, steps // 5))):
        spans.clear()
        executor.run(feeds)
        kernel_samples.append(sum(spans))
    executor.observer = None
    kernel_samples.sort()
    kernel_ms = kernel_samples[len(kernel_samples) // 2] * 1e3
    latencies.sort()
    p50_ms = latencies[len(latencies) // 2] * 1e3
    return {
        "p50_ms": p50_ms,
        "p95_ms": latencies[min(len(latencies) - 1,
                                int(len(latencies) * 0.95))] * 1e3,
        "steps_per_s": steps / wall,
        "kernel_ms": kernel_ms,
        "dispatch_overhead_ms": max(0.0, p50_ms - kernel_ms),
        "steady_state_allocs_per_step": fresh_allocs / steps,
        "arena_recycle_hits": executor.arena.takes,
        "arena_misses": executor.arena.misses,
    }


def run(batch: int, steps: int, warmup: int) -> dict:
    forward, program = build_program(batch)
    feeds = make_feeds(forward, program, batch)

    def executor(backend):
        prog = program.with_state(
            {name: arr.copy() for name, arr in program.state.items()})
        return Executor(prog, backend=backend)

    interp = measure(executor("interpreter"), feeds, steps, warmup)
    plan = measure(executor("plan"), feeds, steps, warmup)
    overhead_speedup = (
        interp["dispatch_overhead_ms"] / plan["dispatch_overhead_ms"]
        if plan["dispatch_overhead_ms"] > 0 else float("inf"))
    return {
        "workload": {
            "model": "mcunet_micro",
            "scheme": "paper sparse-update",
            "optimizer": "sgd",
            "batch": batch,
            "nodes": program.num_nodes,
            "plan_instructions": program.plan().num_instructions,
            "steps": steps,
            "warmup": warmup,
        },
        "interpreter": interp,
        "plan": plan,
        "speedup": plan["steps_per_s"] / interp["steps_per_s"],
        "dispatch_overhead_speedup": overhead_speedup,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true",
                        help="CI smoke mode: fewer steps")
    parser.add_argument("--batch", type=int, default=2)
    parser.add_argument("--steps", type=int, default=None)
    parser.add_argument("--warmup", type=int, default=None)
    parser.add_argument("--out", type=Path,
                        default=Path("BENCH_step_latency.json"))
    args = parser.parse_args(argv)
    steps = args.steps or (30 if args.quick else 150)
    warmup = args.warmup or (5 if args.quick else 20)

    banner("Step latency — compiled plan vs legacy interpreter "
           "(MCUNet sparse fine-tuning)")
    result = run(args.batch, steps, warmup)
    for backend in ("interpreter", "plan"):
        r = result[backend]
        print(f"{backend:>12}: p50 {r['p50_ms']:7.3f} ms   "
              f"p95 {r['p95_ms']:7.3f} ms   "
              f"{r['steps_per_s']:8.1f} steps/s   "
              f"overhead {r['dispatch_overhead_ms']:6.3f} ms   "
              f"{r['steady_state_allocs_per_step']:.2f} allocs/step")
    print(f"{'speedup':>12}: {result['speedup']:.2f}x end-to-end, "
          f"{result['dispatch_overhead_speedup']:.2f}x on executor "
          f"dispatch overhead (kernels are shared)")

    args.out.write_text(json.dumps(result, indent=1))
    print(f"wrote {args.out}")

    # Regression gate. End-to-end speedup is mostly shared kernel time and
    # wobbles with machine load, so it gets a tolerance band; the dispatch
    # overhead ratio is the structural win the plan must not lose.
    if result["speedup"] < 0.90:
        print("FAIL: plan-backed executor is >10% slower than the "
              "interpreter", file=sys.stderr)
        return 1
    if result["dispatch_overhead_speedup"] < 1.0:
        print("FAIL: plan-backed executor has higher dispatch overhead "
              "than the interpreter", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
