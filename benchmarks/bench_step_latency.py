"""Step-latency benchmark: pass-pipeline ladder vs interpreter.

Workload: MCUNet sparse fine-tuning (the paper's on-device scenario) — the
``mcunet_micro`` variant under the paper's sparse-update scheme with SGD,
which is exactly what every request in ``repro.serve`` funnels through.
Small tensors make this overhead-dominated, i.e. the regime the compiled
plan targets: the kernels themselves are identical between backends.

Configurations run side by side: the legacy interpreter, then the pass
pipeline grown one stage at a time — ``passes="none"`` (zero-
interpretation but unoptimized stream), ``+fuse_elementwise``,
``+fold_scalars``, ``+precompute_frozen`` (= the default pipeline), and
``+autotune`` (per-instruction kernel-variant selection against the
device cost model; ``--autotune measure`` confirms with cached on-host
microbenchmarks). Reports p50/p95 step latency, steady-state throughput,
steady-state fresh-buffer allocations per step, and per-pass
instruction/latency deltas, then writes ``BENCH_step_latency.json`` so
CI can track the repo's perf trajectory.

CI gates (exit non-zero on violation):

* the plan-backed executor must not lose to the interpreter (throughput
  band + dispatch overhead, as before);
* the optimized plan must emit strictly fewer instructions than
  ``passes="none"`` and must not allocate more in steady state;
* the autotuned plan must actually tune (nonempty ``tuned_variants``),
  must not grow the instruction stream, and must hold the default
  pipeline's throughput (tolerance band for machine-load wobble).

Usage::

    PYTHONPATH=src python benchmarks/bench_step_latency.py [--quick]
"""

from __future__ import annotations

import argparse
import dataclasses
import json
import sys
from pathlib import Path
from time import perf_counter

import numpy as np

from repro.models import build_model, paper_scheme
from repro.runtime import Executor
from repro.runtime.compiler import compile_training
from repro.runtime.passes import run_pipeline
from repro.train import SGD

from _helpers import banner

#: the pipeline ladder, one stage at a time; the last two rungs are the
#: default pipeline and the default pipeline + autotune.
PASS_LADDER = (
    ("none", "none"),
    ("+fuse_elementwise", ("fuse_elementwise",)),
    ("+fold_scalars", ("fuse_elementwise", "fold_scalars")),
    ("+precompute_frozen",
     ("fuse_elementwise", "fold_scalars", "precompute_frozen")),
    ("+autotune",
     ("fuse_elementwise", "fold_scalars", "precompute_frozen", "autotune")),
)


def build_program(batch: int):
    forward = build_model("mcunet_micro", batch=batch)
    scheme = paper_scheme(forward)
    program = compile_training(forward, optimizer=SGD(0.05), scheme=scheme)
    return forward, program


def reconfigured(program, passes, autotune: str | None = None):
    """An independent lowering of ``program`` under another pass config
    (private meta so the cached plan is not shared, shared graph/state)."""
    meta = {k: v for k, v in program.meta.items()
            if k not in ("__plan__", "__plan_spec__")}
    meta["plan_passes"] = passes
    if autotune is not None:
        meta["autotune"] = autotune
    return dataclasses.replace(program, meta=meta)


def make_feeds(forward, program, batch: int, seed: int = 0):
    rng = np.random.default_rng(seed)
    x = rng.standard_normal(
        forward.spec(forward.inputs[0]).shape).astype(np.float32)
    y = rng.integers(0, 10, batch).astype(np.int64)
    return {forward.inputs[0]: x, program.meta["labels"]: y}


def measure(executor: Executor, feeds, steps: int, warmup: int):
    for _ in range(warmup):
        executor.run(feeds)
    latencies = []
    fresh_allocs = 0
    began_all = perf_counter()
    for _ in range(steps):
        began = perf_counter()
        executor.run(feeds)
        latencies.append(perf_counter() - began)
        fresh_allocs += executor.last_step_fresh_allocs
    wall = perf_counter() - began_all
    # Kernel-time floor (both backends run identical kernels): an observed
    # pass sums per-kernel spans; step time minus that is the executor's
    # own dispatch/bookkeeping overhead — the cost the plan compiles away.
    spans = []
    executor.observer = lambda node, s: spans.append(s)
    kernel_samples = []
    for _ in range(max(3, min(10, steps // 5))):
        spans.clear()
        executor.run(feeds)
        kernel_samples.append(sum(spans))
    executor.observer = None
    kernel_samples.sort()
    kernel_ms = kernel_samples[len(kernel_samples) // 2] * 1e3
    latencies.sort()
    p50_ms = latencies[len(latencies) // 2] * 1e3
    return {
        "p50_ms": p50_ms,
        "p95_ms": latencies[min(len(latencies) - 1,
                                int(len(latencies) * 0.95))] * 1e3,
        "steps_per_s": steps / wall,
        "kernel_ms": kernel_ms,
        "dispatch_overhead_ms": max(0.0, p50_ms - kernel_ms),
        "steady_state_allocs_per_step": fresh_allocs / steps,
        "arena_recycle_hits": executor.arena.takes,
        "arena_misses": executor.arena.misses,
    }


def ab_ratio(exec_a: Executor, exec_b: Executor, feeds,
             chunks: int, chunk_steps: int) -> float:
    """Median per-chunk throughput ratio b/a from an interleaved A/B run.

    Sequential measurement of near-identical configs is dominated by
    machine-load drift between the two runs; alternating small chunks
    puts both executors under the same load, so the per-chunk ratio is
    drift-free. > 1.0 means ``b`` is faster.
    """
    for ex in (exec_a, exec_b):
        for _ in range(chunk_steps):
            ex.run(feeds)
    ratios = []
    for _ in range(chunks):
        walls = []
        for ex in (exec_a, exec_b):
            began = perf_counter()
            for _ in range(chunk_steps):
                ex.run(feeds)
            walls.append(perf_counter() - began)
        ratios.append(walls[0] / walls[1])
    ratios.sort()
    return ratios[len(ratios) // 2]


def run(batch: int, steps: int, warmup: int, autotune_mode: str) -> dict:
    forward, program = build_program(batch)
    feeds = make_feeds(forward, program, batch)

    def executor(prog, backend="plan"):
        prog = prog.with_state(
            {name: arr.copy() for name, arr in prog.state.items()})
        return Executor(prog, backend=backend)

    interp = measure(executor(program, "interpreter"), feeds, steps, warmup)

    # Climb the pass ladder one rung at a time: each rung's delta vs the
    # previous one is that pass's isolated contribution (instructions are
    # deterministic; latency deltas carry measurement noise).
    ladder = []
    rung_results = {}
    rung_specs = {}
    for label, passes in PASS_LADDER:
        tuned = autotune_mode if "autotune" in passes else None
        prog = reconfigured(program, passes, autotune=tuned)
        spec = prog.plan_spec()
        result = measure(executor(prog), feeds, steps, warmup)
        rung_results[label] = result
        rung_specs[label] = spec
        entry = {
            "config": label,
            "instructions": len(spec.instructions),
            "p50_ms": result["p50_ms"],
            "steps_per_s": result["steps_per_s"],
        }
        if ladder:
            entry["instructions_delta"] = (
                entry["instructions"] - ladder[-1]["instructions"])
            entry["p50_delta_ms"] = entry["p50_ms"] - ladder[-1]["p50_ms"]
        ladder.append(entry)

    plan_none = rung_results["none"]
    plan = rung_results["+precompute_frozen"]
    plan_tuned = rung_results["+autotune"]
    spec = rung_specs["+precompute_frozen"]
    spec_none = rung_specs["none"]
    spec_tuned = rung_specs["+autotune"]

    # The autotuned-vs-default gate compares two near-identical streams,
    # where sequential wall-clock numbers are all load drift: re-measure
    # that pair interleaved.
    default_prog = reconfigured(program, PASS_LADDER[-2][1])
    tuned_prog = reconfigured(program, PASS_LADDER[-1][1],
                              autotune=autotune_mode)
    autotuned_vs_default = ab_ratio(
        executor(default_prog), executor(tuned_prog), feeds,
        chunks=max(5, steps // 10), chunk_steps=10)
    overhead_speedup = (
        interp["dispatch_overhead_ms"] / plan["dispatch_overhead_ms"]
        if plan["dispatch_overhead_ms"] > 0 else float("inf"))

    # Per-stage instruction counts from a fresh pipeline run (cheap: no
    # execution, just lowering) — CI tracks where each pass bites. The
    # autotuned config is a superset of the default pipeline, so its
    # report covers both.
    pipeline_report: dict = {}
    run_pipeline(reconfigured(program, "default", autotune=autotune_mode),
                 report=pipeline_report)
    return {
        "workload": {
            "model": "mcunet_micro",
            "scheme": "paper sparse-update",
            "optimizer": "sgd",
            "batch": batch,
            "nodes": program.num_nodes,
            "plan_instructions": len(spec.instructions),
            "plan_instructions_unoptimized": len(spec_none.instructions),
            "plan_instructions_autotuned": len(spec_tuned.instructions),
            "fused_instructions": sum(
                1 for i in spec.instructions if i.fused is not None),
            "folded_const_args": sum(
                len(i.const_args) for i in spec.instructions),
            "precomputed_slots": len(spec.precomputed),
            "precomputed_bytes": spec.precomputed_bytes,
            "tuned_variants": len(spec_tuned.tuned_variants),
            "tuned_non_base": sum(
                1 for t in spec_tuned.tuned_variants if t.variant != "base"),
            "autotune_mode": autotune_mode,
            "steps": steps,
            "warmup": warmup,
        },
        "pipeline": pipeline_report["stages"],
        "pass_ladder": ladder,
        "interpreter": interp,
        "plan_unoptimized": plan_none,
        "plan": plan,
        "plan_autotuned": plan_tuned,
        "speedup": plan["steps_per_s"] / interp["steps_per_s"],
        "speedup_vs_unoptimized_plan":
            plan["steps_per_s"] / plan_none["steps_per_s"],
        "speedup_autotuned": plan_tuned["steps_per_s"] / interp["steps_per_s"],
        "speedup_autotuned_vs_default": autotuned_vs_default,
        "dispatch_overhead_speedup": overhead_speedup,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true",
                        help="CI smoke mode: fewer steps")
    parser.add_argument("--batch", type=int, default=2)
    parser.add_argument("--steps", type=int, default=None)
    parser.add_argument("--warmup", type=int, default=None)
    parser.add_argument("--autotune", choices=("cost", "measure"),
                        default="cost",
                        help="autotune mode for the +autotune rung "
                             "(default: cost model only)")
    parser.add_argument("--out", type=Path,
                        default=Path("BENCH_step_latency.json"))
    args = parser.parse_args(argv)
    steps = args.steps or (30 if args.quick else 150)
    warmup = args.warmup or (5 if args.quick else 20)

    banner("Step latency — pass-pipeline ladder vs interpreter "
           "(MCUNet sparse fine-tuning)")
    result = run(args.batch, steps, warmup, args.autotune)
    for backend in ("interpreter", "plan_unoptimized", "plan",
                    "plan_autotuned"):
        r = result[backend]
        print(f"{backend:>16}: p50 {r['p50_ms']:7.3f} ms   "
              f"p95 {r['p95_ms']:7.3f} ms   "
              f"{r['steps_per_s']:8.1f} steps/s   "
              f"overhead {r['dispatch_overhead_ms']:6.3f} ms   "
              f"{r['steady_state_allocs_per_step']:.2f} allocs/step")
    w = result["workload"]
    print(f"{'pipeline':>16}: "
          + " -> ".join(f"{s['stage']}:{s['instructions']}"
                        for s in result["pipeline"]))
    for rung in result["pass_ladder"][1:]:
        print(f"{rung['config']:>16}: {rung['instructions']} instructions "
              f"({rung['instructions_delta']:+d}), "
              f"p50 {rung['p50_ms']:7.3f} ms "
              f"({rung['p50_delta_ms']:+.3f} ms)")
    print(f"{'optimized':>16}: {w['fused_instructions']} fused chains, "
          f"{w['folded_const_args']} folded scalar args, "
          f"{w['precomputed_slots']} precomputed slot(s) "
          f"({w['precomputed_bytes']} bytes), "
          f"{w['plan_instructions_unoptimized'] - w['plan_instructions']} "
          f"instructions eliminated")
    print(f"{'autotuned':>16}: {w['tuned_variants']} decisions "
          f"({w['tuned_non_base']} non-base) via {w['autotune_mode']}, "
          f"{result['speedup_autotuned']:.2f}x vs interpreter, "
          f"{result['speedup_autotuned_vs_default']:.2f}x vs default "
          f"pipeline (interleaved A/B)")
    print(f"{'speedup':>16}: {result['speedup']:.2f}x end-to-end, "
          f"{result['speedup_vs_unoptimized_plan']:.2f}x vs passes=none, "
          f"{result['dispatch_overhead_speedup']:.2f}x on executor "
          f"dispatch overhead (kernels are shared)")

    args.out.write_text(json.dumps(result, indent=1))
    print(f"wrote {args.out}")

    # Regression gates. End-to-end speedup is mostly shared kernel time
    # and wobbles with machine load, so it gets a tolerance band; the
    # dispatch overhead ratio and the pass pipeline's structural wins are
    # deterministic and must never regress.
    if result["speedup"] < 0.90:
        print("FAIL: plan-backed executor is >10% slower than the "
              "interpreter", file=sys.stderr)
        return 1
    if result["dispatch_overhead_speedup"] < 1.0:
        print("FAIL: plan-backed executor has higher dispatch overhead "
              "than the interpreter", file=sys.stderr)
        return 1
    if w["plan_instructions"] >= w["plan_instructions_unoptimized"]:
        print("FAIL: optimized plan does not emit fewer instructions than "
              "passes=none", file=sys.stderr)
        return 1
    if result["plan"]["steady_state_allocs_per_step"] \
            > result["plan_unoptimized"]["steady_state_allocs_per_step"]:
        print("FAIL: optimized plan allocates more per steady-state step "
              "than passes=none", file=sys.stderr)
        return 1
    if w["tuned_variants"] == 0 or w["tuned_non_base"] == 0:
        print("FAIL: autotune pass made no variant decisions on the "
              "MCUNet sparse plan", file=sys.stderr)
        return 1
    if w["plan_instructions_autotuned"] > w["plan_instructions"]:
        print("FAIL: autotuned plan emits more instructions than the "
              "default pipeline", file=sys.stderr)
        return 1
    if result["speedup_autotuned_vs_default"] < 0.95:
        print("FAIL: autotuned plan lost >5% throughput vs the default "
              "pipeline", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
