"""Step-latency benchmark: optimized plan vs unoptimized plan vs interpreter.

Workload: MCUNet sparse fine-tuning (the paper's on-device scenario) — the
``mcunet_micro`` variant under the paper's sparse-update scheme with SGD,
which is exactly what every request in ``repro.serve`` funnels through.
Small tensors make this overhead-dominated, i.e. the regime the compiled
plan targets: the kernels themselves are identical between backends.

Three configurations run side by side: the legacy interpreter, the
``passes="none"`` plan (zero-interpretation but unoptimized stream), and
the default optimized plan (fused elementwise chains + precomputed
frozen-weight Winograd transforms). Reports p50/p95 step latency,
steady-state throughput, steady-state fresh-buffer allocations per step,
and the pass pipeline's per-stage instruction counts, then writes
``BENCH_step_latency.json`` so CI can track the repo's perf trajectory.

CI gates (exit non-zero on violation):

* the plan-backed executor must not lose to the interpreter (throughput
  band + dispatch overhead, as before);
* the optimized plan must emit strictly fewer instructions than
  ``passes="none"`` and must not allocate more in steady state.

Usage::

    PYTHONPATH=src python benchmarks/bench_step_latency.py [--quick]
"""

from __future__ import annotations

import argparse
import dataclasses
import json
import sys
from pathlib import Path
from time import perf_counter

import numpy as np

from repro.models import build_model, paper_scheme
from repro.runtime import Executor
from repro.runtime.compiler import compile_training
from repro.runtime.passes import run_pipeline
from repro.train import SGD

from _helpers import banner


def build_program(batch: int):
    forward = build_model("mcunet_micro", batch=batch)
    scheme = paper_scheme(forward)
    program = compile_training(forward, optimizer=SGD(0.05), scheme=scheme)
    return forward, program


def reconfigured(program, passes: str):
    """An independent lowering of ``program`` under another pass config
    (private meta so the cached plan is not shared, shared graph/state)."""
    meta = {k: v for k, v in program.meta.items()
            if k not in ("__plan__", "__plan_spec__")}
    meta["plan_passes"] = passes
    return dataclasses.replace(program, meta=meta)


def make_feeds(forward, program, batch: int, seed: int = 0):
    rng = np.random.default_rng(seed)
    x = rng.standard_normal(
        forward.spec(forward.inputs[0]).shape).astype(np.float32)
    y = rng.integers(0, 10, batch).astype(np.int64)
    return {forward.inputs[0]: x, program.meta["labels"]: y}


def measure(executor: Executor, feeds, steps: int, warmup: int):
    for _ in range(warmup):
        executor.run(feeds)
    latencies = []
    fresh_allocs = 0
    began_all = perf_counter()
    for _ in range(steps):
        began = perf_counter()
        executor.run(feeds)
        latencies.append(perf_counter() - began)
        fresh_allocs += executor.last_step_fresh_allocs
    wall = perf_counter() - began_all
    # Kernel-time floor (both backends run identical kernels): an observed
    # pass sums per-kernel spans; step time minus that is the executor's
    # own dispatch/bookkeeping overhead — the cost the plan compiles away.
    spans = []
    executor.observer = lambda node, s: spans.append(s)
    kernel_samples = []
    for _ in range(max(3, min(10, steps // 5))):
        spans.clear()
        executor.run(feeds)
        kernel_samples.append(sum(spans))
    executor.observer = None
    kernel_samples.sort()
    kernel_ms = kernel_samples[len(kernel_samples) // 2] * 1e3
    latencies.sort()
    p50_ms = latencies[len(latencies) // 2] * 1e3
    return {
        "p50_ms": p50_ms,
        "p95_ms": latencies[min(len(latencies) - 1,
                                int(len(latencies) * 0.95))] * 1e3,
        "steps_per_s": steps / wall,
        "kernel_ms": kernel_ms,
        "dispatch_overhead_ms": max(0.0, p50_ms - kernel_ms),
        "steady_state_allocs_per_step": fresh_allocs / steps,
        "arena_recycle_hits": executor.arena.takes,
        "arena_misses": executor.arena.misses,
    }


def run(batch: int, steps: int, warmup: int) -> dict:
    forward, program = build_program(batch)
    feeds = make_feeds(forward, program, batch)
    plan_none_prog = reconfigured(program, "none")

    def executor(prog, backend="plan"):
        prog = prog.with_state(
            {name: arr.copy() for name, arr in prog.state.items()})
        return Executor(prog, backend=backend)

    interp = measure(executor(program, "interpreter"), feeds, steps, warmup)
    plan_none = measure(executor(plan_none_prog), feeds, steps, warmup)
    plan = measure(executor(program), feeds, steps, warmup)
    overhead_speedup = (
        interp["dispatch_overhead_ms"] / plan["dispatch_overhead_ms"]
        if plan["dispatch_overhead_ms"] > 0 else float("inf"))

    # Per-stage instruction counts from a fresh pipeline run (cheap: no
    # execution, just lowering) — CI tracks where each pass bites.
    pipeline_report: dict = {}
    run_pipeline(program, passes="default", report=pipeline_report)
    spec = program.plan_spec()
    spec_none = plan_none_prog.plan_spec()
    return {
        "workload": {
            "model": "mcunet_micro",
            "scheme": "paper sparse-update",
            "optimizer": "sgd",
            "batch": batch,
            "nodes": program.num_nodes,
            "plan_instructions": len(spec.instructions),
            "plan_instructions_unoptimized": len(spec_none.instructions),
            "fused_instructions": sum(
                1 for i in spec.instructions if i.fused is not None),
            "precomputed_slots": len(spec.precomputed),
            "precomputed_bytes": spec.precomputed_bytes,
            "steps": steps,
            "warmup": warmup,
        },
        "pipeline": pipeline_report["stages"],
        "interpreter": interp,
        "plan_unoptimized": plan_none,
        "plan": plan,
        "speedup": plan["steps_per_s"] / interp["steps_per_s"],
        "speedup_vs_unoptimized_plan":
            plan["steps_per_s"] / plan_none["steps_per_s"],
        "dispatch_overhead_speedup": overhead_speedup,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true",
                        help="CI smoke mode: fewer steps")
    parser.add_argument("--batch", type=int, default=2)
    parser.add_argument("--steps", type=int, default=None)
    parser.add_argument("--warmup", type=int, default=None)
    parser.add_argument("--out", type=Path,
                        default=Path("BENCH_step_latency.json"))
    args = parser.parse_args(argv)
    steps = args.steps or (30 if args.quick else 150)
    warmup = args.warmup or (5 if args.quick else 20)

    banner("Step latency — optimized plan vs passes=none vs interpreter "
           "(MCUNet sparse fine-tuning)")
    result = run(args.batch, steps, warmup)
    for backend in ("interpreter", "plan_unoptimized", "plan"):
        r = result[backend]
        print(f"{backend:>16}: p50 {r['p50_ms']:7.3f} ms   "
              f"p95 {r['p95_ms']:7.3f} ms   "
              f"{r['steps_per_s']:8.1f} steps/s   "
              f"overhead {r['dispatch_overhead_ms']:6.3f} ms   "
              f"{r['steady_state_allocs_per_step']:.2f} allocs/step")
    w = result["workload"]
    print(f"{'pipeline':>16}: "
          + " -> ".join(f"{s['stage']}:{s['instructions']}"
                        for s in result["pipeline"]))
    print(f"{'optimized':>16}: {w['fused_instructions']} fused chains, "
          f"{w['precomputed_slots']} precomputed slot(s) "
          f"({w['precomputed_bytes']} bytes), "
          f"{w['plan_instructions_unoptimized'] - w['plan_instructions']} "
          f"instructions eliminated")
    print(f"{'speedup':>16}: {result['speedup']:.2f}x end-to-end, "
          f"{result['speedup_vs_unoptimized_plan']:.2f}x vs passes=none, "
          f"{result['dispatch_overhead_speedup']:.2f}x on executor "
          f"dispatch overhead (kernels are shared)")

    args.out.write_text(json.dumps(result, indent=1))
    print(f"wrote {args.out}")

    # Regression gates. End-to-end speedup is mostly shared kernel time
    # and wobbles with machine load, so it gets a tolerance band; the
    # dispatch overhead ratio and the pass pipeline's structural wins are
    # deterministic and must never regress.
    if result["speedup"] < 0.90:
        print("FAIL: plan-backed executor is >10% slower than the "
              "interpreter", file=sys.stderr)
        return 1
    if result["dispatch_overhead_speedup"] < 1.0:
        print("FAIL: plan-backed executor has higher dispatch overhead "
              "than the interpreter", file=sys.stderr)
        return 1
    if w["plan_instructions"] >= w["plan_instructions_unoptimized"]:
        print("FAIL: optimized plan does not emit fewer instructions than "
              "passes=none", file=sys.stderr)
        return 1
    if result["plan"]["steady_state_allocs_per_step"] \
            > result["plan_unoptimized"]["steady_state_allocs_per_step"]:
        print("FAIL: optimized plan allocates more per steady-state step "
              "than passes=none", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
