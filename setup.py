"""Legacy setup shim: the environment has setuptools without `wheel`, so
PEP-517 editable installs fail; `pip install -e . --no-use-pep517` works."""

from setuptools import setup

setup()
