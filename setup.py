"""Legacy setup shim: the environment has setuptools without `wheel`, so
PEP-517 editable installs fail; `pip install -e . --no-use-pep517` works."""

from setuptools import find_packages, setup

setup(
    name="repro-pockengine",
    version="1.0.0",
    description=(
        "PockEngine reproduction: sparse and efficient fine-tuning in a "
        "pocket (MICRO 2023) — compile-time autodiff, sparse backprop, "
        "training-graph optimization, and a multi-tenant serving layer"
    ),
    long_description=(
        "A compilation-first training engine reproduction: compile-time "
        "autodiff, sparse backpropagation via backward-graph pruning, "
        "training-graph optimizations (fusion, reordering, Winograd, "
        "layout), a memory planner, a numpy executor, analytical edge-"
        "device cost models, and repro.serve — a multi-tenant fine-"
        "tuning service with a compiled-program cache and micro-batch "
        "scheduler."
    ),
    long_description_content_type="text/markdown",
    author="paper-repo-growth",
    license="MIT",
    package_dir={"": "src"},
    packages=find_packages("src"),
    python_requires=">=3.10",
    install_requires=["numpy>=1.24"],
    extras_require={
        "test": ["pytest", "pytest-benchmark"],
    },
    entry_points={
        "console_scripts": [
            "repro = repro.cli:main",
        ],
    },
    classifiers=[
        "Development Status :: 4 - Beta",
        "Intended Audience :: Science/Research",
        "Programming Language :: Python :: 3",
        "Programming Language :: Python :: 3.10",
        "Programming Language :: Python :: 3.11",
        "Programming Language :: Python :: 3.12",
        "Topic :: Scientific/Engineering :: Artificial Intelligence",
    ],
)
