"""Keras-style frontend: shape inference, lowering, and IR equivalence."""

import numpy as np
import pytest

from repro.errors import CompileError
from repro.frontend.keras_like import (ActivationLayer, AveragePooling2D,
                                       Conv2D, Dense, DepthwiseConv2D,
                                       Flatten, GlobalAveragePooling2D,
                                       MaxPooling2D, ReLU, build_model,
                                       build_sequential)
from repro.ir import validate_graph
from repro.runtime import Executor, interpret
from repro.runtime.compiler import compile_training
from repro.train import SGD


def small_stack():
    return [
        Conv2D(8, 3, padding="same", activation="relu"),
        DepthwiseConv2D(3, strides=2),
        Conv2D(16, 1, activation="relu"),
        MaxPooling2D(2),
        Flatten(),
        Dense(32, activation="relu"),
        Dense(4),
    ]


class TestShapeInference:
    def test_dense_infers_input_features(self):
        model, shape = build_model([Dense(7)], (4, 13))
        assert shape == (4, 7)
        assert model[0].weight.shape == (13, 7)

    def test_conv_same_padding_preserves_spatial(self):
        layer = Conv2D(8, 3, padding="same")
        assert layer.output_shape((2, 3, 16, 16)) == (2, 8, 16, 16)

    def test_conv_valid_padding_shrinks(self):
        layer = Conv2D(8, 3, padding="valid")
        assert layer.output_shape((2, 3, 16, 16)) == (2, 8, 14, 14)

    def test_depthwise_keeps_channels(self):
        layer = DepthwiseConv2D(3)
        assert layer.output_shape((2, 12, 8, 8))[1] == 12
        module = layer.to_module((2, 12, 8, 8), np.random.default_rng(0))
        assert module.groups == 12

    def test_flatten(self):
        assert Flatten().output_shape((2, 8, 4, 4)) == (2, 128)

    def test_global_pool(self):
        assert GlobalAveragePooling2D().output_shape((2, 8, 4, 4)) == (2, 8)

    def test_chained_shapes_match_traced_graph(self):
        layers = small_stack()
        shape = (2, 3, 16, 16)
        for layer in layers:
            shape = layer.output_shape(shape)
        graph = build_sequential(small_stack(), (2, 3, 16, 16))
        assert graph.spec(graph.outputs[0]).shape == shape

    def test_empty_spatial_rejected(self):
        with pytest.raises(CompileError, match="empty"):
            Conv2D(8, 5).output_shape((1, 3, 4, 4 - 1))

    def test_bad_padding_rejected(self):
        with pytest.raises(CompileError, match="padding"):
            Conv2D(8, 3, padding="sideways").output_shape((1, 3, 8, 8))

    def test_empty_model_rejected(self):
        with pytest.raises(CompileError):
            build_model([], (2, 4))


class TestLoweredGraphs:
    def test_traced_graph_validates(self):
        graph = build_sequential(small_stack(), (2, 3, 16, 16))
        validate_graph(graph)

    def test_forward_runs(self, rng):
        graph = build_sequential(small_stack(), (2, 3, 16, 16))
        x = rng.standard_normal((2, 3, 16, 16)).astype(np.float32)
        out = interpret(graph, {"x": x})[graph.outputs[0]]
        assert out.shape == (2, 4)
        assert np.isfinite(out).all()

    def test_matches_module_frontend_numerically(self, rng):
        # Same seed => same initializer draws => identical function.
        from repro.frontend import Linear, Sequential
        from repro.frontend.tracer import InputSpec, trace

        keras_graph = build_sequential([Dense(6, activation="relu"),
                                        Dense(3)], (4, 5), seed=9)
        rng2 = np.random.default_rng(9)
        module = Sequential(Linear(5, 6, activation="relu", rng=rng2),
                            Linear(6, 3, rng=rng2))
        module_graph = trace(module, [InputSpec("x", (4, 5))])
        x = rng.standard_normal((4, 5)).astype(np.float32)
        np.testing.assert_allclose(
            interpret(keras_graph, {"x": x})[keras_graph.outputs[0]],
            interpret(module_graph, {"x": x})[module_graph.outputs[0]],
            rtol=1e-6)

    def test_trains_to_low_loss(self, rng):
        graph = build_sequential([Dense(16, activation="relu"), Dense(3)],
                                 (6, 8))
        program = compile_training(graph, optimizer=SGD(0.2))
        executor = Executor(program)
        x = rng.standard_normal((6, 8)).astype(np.float32)
        y = rng.integers(0, 3, 6).astype(np.int64)
        losses = [float(executor.run(
            {"x": x, program.meta["labels"]: y})[program.meta["loss"]])
            for _ in range(40)]
        assert losses[-1] < losses[0] * 0.3

    def test_misc_layers_lower(self, rng):
        graph = build_sequential([
            Conv2D(4, 3, padding="same"),
            ActivationLayer("tanh"),
            AveragePooling2D(2),
            ReLU(),
            GlobalAveragePooling2D(),
            Dense(2),
        ], (2, 3, 8, 8))
        validate_graph(graph)
        x = rng.standard_normal((2, 3, 8, 8)).astype(np.float32)
        out = interpret(graph, {"x": x})[graph.outputs[0]]
        assert out.shape == (2, 2)
