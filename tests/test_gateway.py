"""Tests for the HTTP front door: gateway, client, and rate limiting.

The heavyweight end-to-end path (real registry model over real sockets)
runs once against a module-scoped gateway; backpressure, rate-limit, and
shutdown semantics are tested against lightweight MLP-backed gateways
whose scheduler can be stalled deterministically.
"""

from __future__ import annotations

import json
import threading
import time
import urllib.request
from contextlib import contextmanager

import numpy as np
import pytest

from repro.errors import ServeError
from repro.serve import (FineTuneService, GatewayError, GatewayServer,
                         RateLimited, RateLimiter, ServeClient)

from conftest import make_mlp_graph


def build_mlp(batch: int):
    return make_mlp_graph(batch=batch, din=5, dhidden=6, dout=3,
                          seed=0)[0].graph


def wait_until(predicate, timeout=10.0, interval=0.01):
    deadline = time.monotonic() + timeout
    while not predicate():
        if time.monotonic() > deadline:
            raise AssertionError("condition never became true")
        time.sleep(interval)


def mlp_example(rng):
    return (rng.standard_normal(5).astype(np.float32),
            int(rng.integers(0, 3)))


@contextmanager
def mlp_gateway(*, workers=1, max_batch=2, max_queue_depth=64,
                rate_limit=None, rate_burst=None, sessions=1):
    """A gateway over an MLP-backed service with pre-opened sessions."""
    service = FineTuneService(max_batch=max_batch, workers=workers)
    gateway = GatewayServer(service, max_queue_depth=max_queue_depth,
                            rate_limit=rate_limit, rate_burst=rate_burst)
    gateway.start()
    opened = [service.create_session(build_mlp, model_id="mlp",
                                     scheme="full", tenant=f"tenant-{i}")
              for i in range(sessions)]
    client = ServeClient(gateway.url)
    try:
        yield service, gateway, client, opened
    finally:
        client.close()
        gateway.close(drain_timeout=10.0)


def stall_scheduler(service):
    """Wrap the scheduler's batch runner behind a release event."""
    release = threading.Event()
    original = service.scheduler._run_batch

    def stalled(session, batch):
        assert release.wait(timeout=30)
        return original(session, batch)

    service.scheduler._run_batch = stalled
    return release


# ---------------------------------------------------------------------------
# rate limiter
# ---------------------------------------------------------------------------

class TestRateLimiter:

    def _limiter(self, rate, burst=None):
        clock = {"now": 0.0}
        limiter = RateLimiter(rate, burst=burst,
                              clock=lambda: clock["now"])
        return limiter, clock

    def test_disabled_always_admits(self):
        limiter, _ = self._limiter(None)
        assert all(limiter.try_acquire("t") == 0.0 for _ in range(100))
        assert len(limiter) == 0  # no bucket state accrued

    def test_burst_then_refusal_with_retry_hint(self):
        limiter, _ = self._limiter(2.0, burst=3)
        assert [limiter.try_acquire("t") for _ in range(3)] == [0.0] * 3
        retry = limiter.try_acquire("t")
        assert retry == pytest.approx(0.5)  # 1 token at 2/s

    def test_refill_readmits(self):
        limiter, clock = self._limiter(2.0, burst=1)
        assert limiter.try_acquire("t") == 0.0
        assert limiter.try_acquire("t") > 0.0
        clock["now"] = 0.6  # > 0.5s -> one token matured
        assert limiter.try_acquire("t") == 0.0

    def test_tokens_cap_at_burst(self):
        limiter, clock = self._limiter(10.0, burst=2)
        clock["now"] = 100.0  # long idle must not bank unbounded credit
        grants = [limiter.try_acquire("t") for _ in range(3)]
        assert grants[:2] == [0.0, 0.0] and grants[2] > 0.0

    def test_keys_are_isolated(self):
        limiter, _ = self._limiter(1.0, burst=1)
        assert limiter.try_acquire("a") == 0.0
        assert limiter.try_acquire("a") > 0.0
        assert limiter.try_acquire("b") == 0.0  # b has its own bucket

    def test_validation(self):
        with pytest.raises(ServeError):
            RateLimiter(0.0)
        with pytest.raises(ServeError):
            RateLimiter(1.0, burst=0.5)


# ---------------------------------------------------------------------------
# HTTP protocol over a lightweight service
# ---------------------------------------------------------------------------

class TestGatewayProtocol:

    def test_step_and_lifecycle_roundtrip(self):
        rng = np.random.default_rng(0)
        with mlp_gateway() as (service, gateway, client, (session,)):
            results = [client.step(session.id, *mlp_example(rng))
                       for _ in range(3)]
            assert [r["step"] for r in results] == [1, 2, 3]
            assert all(np.isfinite(r["loss"]) for r in results)

            health = client.healthz()
            assert health["status"] == "ok"
            assert health["sessions"] == 1

            metrics = client.metrics()
            assert metrics["serve.steps_total"] == 3
            assert metrics["serve.queue_depth"] == 0
            assert metrics["serve.http_requests_total"] >= 3

            summary = client.close_session(session.id)
            assert summary["steps"] == 3
            with pytest.raises(GatewayError) as excinfo:
                client.session(session.id)
            assert excinfo.value.status == 404

    def test_error_statuses(self):
        with mlp_gateway() as (service, gateway, client, (session,)):
            with pytest.raises(GatewayError) as excinfo:
                client.step("sess-9999", np.zeros(5, np.float32), 0)
            assert excinfo.value.status == 404
            # wrong payload shape -> service-level validation -> 400
            with pytest.raises(GatewayError) as excinfo:
                client.step(session.id, np.zeros(3, np.float32), 0)
            assert excinfo.value.status == 400
            # unroutable path -> 404
            with pytest.raises(GatewayError) as excinfo:
                client._request("GET", "/v2/nope")
            assert excinfo.value.status == 404
            # bad model over HTTP -> 400
            with pytest.raises(GatewayError) as excinfo:
                client.create_session("no_such_model")
            assert excinfo.value.status == 400

    def test_plain_urllib_speaks_the_protocol(self):
        """The protocol is plain JSON-over-HTTP, not client-specific."""
        rng = np.random.default_rng(1)
        with mlp_gateway() as (service, gateway, client, (session,)):
            x, y = mlp_example(rng)
            request = urllib.request.Request(
                f"{gateway.url}/v1/sessions/{session.id}/step",
                data=json.dumps({"x": x.tolist(), "y": y}).encode(),
                headers={"Content-Type": "application/json"},
                method="POST")
            with urllib.request.urlopen(request, timeout=30) as response:
                body = json.loads(response.read())
            assert response.status == 200
            assert np.isfinite(body["loss"])


# ---------------------------------------------------------------------------
# backpressure
# ---------------------------------------------------------------------------

class TestBackpressure:

    def test_zero_watermark_sheds_everything(self):
        rng = np.random.default_rng(2)
        with mlp_gateway(max_queue_depth=0) as (service, gateway, client,
                                                (session,)):
            with pytest.raises(RateLimited) as excinfo:
                client.step(session.id, *mlp_example(rng), wait=False)
            assert excinfo.value.status == 429
            assert excinfo.value.retry_after > 0
            assert client.metrics()["serve.http_shed_total"] >= 1

    def test_watermark_sheds_under_stalled_scheduler(self):
        """Queue at the watermark -> 429 + Retry-After; drained -> 200."""
        rng = np.random.default_rng(3)
        with mlp_gateway(max_queue_depth=2,
                         max_batch=1) as (service, gateway, client,
                                          (session,)):
            release = stall_scheduler(service)
            try:
                # One request occupies the worker; two more fill the queue
                # to the watermark (all live depth, no render needed).
                futures = [service.submit(session.id, *mlp_example(rng))
                           for _ in range(3)]
                with pytest.raises(RateLimited) as excinfo:
                    client.step(session.id, *mlp_example(rng), wait=False)
                assert excinfo.value.retry_after > 0
            finally:
                release.set()
            for future in futures:
                future.result(timeout=30)
            # Backlog cleared: the same request is admitted now.
            result = client.step(session.id, *mlp_example(rng))
            assert np.isfinite(result["loss"])
            metrics = client.metrics()
            assert metrics["serve.http_shed_total"] == 1

    def test_client_wait_retries_through_shed(self):
        """A wait=True client rides out a transient watermark."""
        rng = np.random.default_rng(4)
        with mlp_gateway(max_queue_depth=1,
                         max_batch=1) as (service, gateway, client,
                                          (session,)):
            release = stall_scheduler(service)
            futures = [service.submit(session.id, *mlp_example(rng))
                       for _ in range(2)]
            done = threading.Event()
            outcome = {}

            def patient_step():
                outcome["result"] = client.step(
                    session.id, *mlp_example(rng), wait=True, max_wait=30)
                done.set()

            thread = threading.Thread(target=patient_step, daemon=True)
            thread.start()
            # The client is retrying against a full queue right now.
            release.set()
            assert done.wait(timeout=30)
            thread.join(timeout=5)
            assert np.isfinite(outcome["result"]["loss"])
            for future in futures:
                future.result(timeout=30)


# ---------------------------------------------------------------------------
# per-tenant rate limits
# ---------------------------------------------------------------------------

class TestRateLimitEnforcement:

    def test_tenants_are_limited_independently(self):
        rng = np.random.default_rng(5)
        with mlp_gateway(rate_limit=1.0, rate_burst=1,
                         sessions=2) as (service, gateway, client, opened):
            greedy, polite = opened
            assert np.isfinite(
                client.step(greedy.id, *mlp_example(rng),
                            wait=False)["loss"])
            with pytest.raises(RateLimited) as excinfo:
                client.step(greedy.id, *mlp_example(rng), wait=False)
            assert excinfo.value.retry_after > 0
            # The other tenant's bucket is untouched.
            assert np.isfinite(
                client.step(polite.id, *mlp_example(rng),
                            wait=False)["loss"])
            assert client.metrics()["serve.http_rate_limited_total"] >= 1

    def test_wait_honours_retry_after(self):
        rng = np.random.default_rng(6)
        with mlp_gateway(rate_limit=5.0, rate_burst=1) as (
                service, gateway, client, (session,)):
            first = client.step(session.id, *mlp_example(rng))
            # Burst spent: the next step must wait ~0.2s for a token, and
            # wait=True absorbs that instead of surfacing the 429.
            second = client.step(session.id, *mlp_example(rng),
                                 wait=True, max_wait=10)
            assert second["step"] == first["step"] + 1


# ---------------------------------------------------------------------------
# shutdown semantics
# ---------------------------------------------------------------------------

class TestShutdown:

    def test_close_settles_every_future_and_refuses_new_work(self):
        rng = np.random.default_rng(7)
        service = FineTuneService(max_batch=1, workers=1)
        gateway = GatewayServer(service, max_queue_depth=64).start()
        session = service.create_session(build_mlp, model_id="mlp",
                                         scheme="full")
        client = ServeClient(gateway.url)
        release = stall_scheduler(service)
        outcomes: list[object] = []

        def blocked_step():
            try:
                outcomes.append(client.step(session.id, *mlp_example(rng),
                                            wait=False))
            except GatewayError as exc:
                outcomes.append(exc)

        threads = [threading.Thread(target=blocked_step, daemon=True)
                   for _ in range(3)]
        for thread in threads:
            thread.start()
        wait_until(lambda: service.scheduler.queue_depth() >= 2)

        try:
            # Bounded shutdown against a stalled worker: drain times out,
            # queued futures are cancelled (503 to their clients), nothing
            # hangs.
            drained = gateway.close(drain_timeout=0.2)
            assert not drained
        finally:
            release.set()
        for thread in threads:
            thread.join(timeout=30)
            assert not thread.is_alive(), "a handler left a client hanging"
        assert len(outcomes) == 3
        statuses = [o.status if isinstance(o, GatewayError) else 200
                    for o in outcomes]
        # The in-flight batch finishes in the background (200); queued
        # requests were cancelled (503). Nothing else is acceptable.
        assert statuses.count(503) >= 1
        assert set(statuses) <= {200, 503}

        # The front door is genuinely down: new connections are refused
        # and service-level submits raise.
        with pytest.raises(GatewayError):
            client.healthz()
        with pytest.raises(ServeError):
            service.submit(session.id, *map(np.asarray, mlp_example(rng)))
        client.close()

    def test_drained_close_resolves_everything(self):
        rng = np.random.default_rng(8)
        with mlp_gateway() as (service, gateway, client, (session,)):
            results = [client.step(session.id, *mlp_example(rng))
                       for _ in range(2)]
            assert all(np.isfinite(r["loss"]) for r in results)
        # context manager closed with no queued work -> full drain
        assert gateway.close() is True  # idempotent, reports drained


# ---------------------------------------------------------------------------
# end-to-end over a real registry model (the acceptance-criteria path)
# ---------------------------------------------------------------------------

@pytest.fixture(scope="module")
def real_gateway():
    with FineTuneService(max_batch=2, workers=2) as service:
        gateway = GatewayServer(service, max_queue_depth=256).start()
        try:
            yield gateway
        finally:
            gateway.close(drain_timeout=10.0)


class TestEndToEnd:

    def test_two_concurrent_tenants_over_http(self, real_gateway):
        """Two tenants, created and driven entirely over HTTP, train
        concurrently with per-session FIFO results."""
        client = ServeClient(real_gateway.url)
        docs = [client.create_session("mcunet_micro", scheme="paper",
                                      tenant=f"t{i}") for i in range(2)]
        assert docs[0]["session_id"] != docs[1]["session_id"]
        assert docs[0]["num_classes"] >= 2

        steps_per_tenant = 5
        results: dict[str, list[dict]] = {d["session_id"]: [] for d in docs}
        errors: list[Exception] = []

        def drive(doc):
            rng = np.random.default_rng(hash(doc["tenant"]) % 2**32)
            shape = tuple(doc["input_shape"])
            try:
                for _ in range(steps_per_tenant):
                    x = rng.standard_normal(shape).astype(np.float32)
                    y = int(rng.integers(0, doc["num_classes"]))
                    results[doc["session_id"]].append(
                        client.step(doc["session_id"], x, y))
            except Exception as exc:  # noqa: BLE001 - collected for assert
                errors.append(exc)

        threads = [threading.Thread(target=drive, args=(doc,), daemon=True)
                   for doc in docs]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=300)
            assert not thread.is_alive()
        assert not errors

        for doc in docs:
            mine = results[doc["session_id"]]
            assert len(mine) == steps_per_tenant
            assert all(r["session_id"] == doc["session_id"] for r in mine)
            assert [r["step"] for r in mine] == \
                sorted(r["step"] for r in mine), "per-session FIFO violated"
            assert all(np.isfinite(r["loss"]) for r in mine)

        metrics = client.metrics()
        assert metrics["serve.steps_total"] >= 2 * steps_per_tenant
        client.close()


# ---------------------------------------------------------------------------
# the binary step wire format over real sockets
# ---------------------------------------------------------------------------

class TestBinaryStepProtocol:

    def test_healthz_advertises_binary_step(self):
        with mlp_gateway() as (_service, _gateway, client, _sessions):
            assert "binary_step" in client.healthz()["features"]

    def test_binary_and_json_steps_are_byte_identical(self):
        """Two sessions with identical initial state, one driven binary
        and one JSON, must see exactly the same losses — the formats
        carry the same bits into the same kernels."""
        rng = np.random.default_rng(11)
        examples = [mlp_example(rng) for _ in range(6)]
        with mlp_gateway(sessions=2) as (_service, gateway, _c, sessions):
            json_client = ServeClient(gateway.url, binary=False)
            bin_client = ServeClient(gateway.url, binary=True)
            try:
                json_losses = [
                    json_client.step(sessions[0].id, x, y)["loss"]
                    for x, y in examples]
                bin_losses = [
                    bin_client.step(sessions[1].id, x, y)["loss"]
                    for x, y in examples]
            finally:
                json_client.close()
                bin_client.close()
            assert json_losses == bin_losses

    def test_binary_response_negotiated_by_accept(self):
        from repro.serve import wire
        rng = np.random.default_rng(3)
        x, y = mlp_example(rng)
        with mlp_gateway() as (_service, gateway, _client, (session,)):
            import http.client as hc
            conn = hc.HTTPConnection(gateway.host, gateway.port, timeout=30)
            frame = wire.encode_frame(None, {
                "x": np.asarray(x), "y": np.asarray(y)})
            conn.request("POST", f"/v1/sessions/{session.id}/step", frame,
                         {"Content-Type": wire.CONTENT_TYPE,
                          "Accept": wire.CONTENT_TYPE})
            response = conn.getresponse()
            body = response.read()
            assert response.status == 200
            assert response.headers["Content-Type"] == wire.CONTENT_TYPE
            meta, tensors = wire.decode_frame(body)
            assert tensors == {}
            assert np.isfinite(meta["loss"])
            assert meta["session_id"] == session.id
            conn.close()

    def test_malformed_frames_get_400_and_connection_survives(self):
        """Truncated / oversized / bad-magic frames are each a clean 400
        on a keep-alive connection that remains usable — never a hang,
        never a poisoned stream."""
        from repro.serve import wire
        rng = np.random.default_rng(5)
        x, y = mlp_example(rng)
        good = wire.encode_frame(None, {"x": np.asarray(x),
                                        "y": np.asarray(y)})
        bad_magic = b"EVIL" + good[4:]
        bad_bodies = [
            b"",                           # empty
            good[:7],                      # shorter than the magic
            good[: len(good) // 2],        # truncated mid-tensor
            bad_magic,                     # wrong magic
            bytes(rng.integers(0, 256, 512, dtype=np.uint8)),  # noise
            wire.encode_frame(None, {"x": np.asarray(x)}),     # missing y
        ]
        with mlp_gateway() as (_service, gateway, _client, (session,)):
            import http.client as hc
            conn = hc.HTTPConnection(gateway.host, gateway.port, timeout=30)
            path = f"/v1/sessions/{session.id}/step"
            for raw in bad_bodies:
                conn.request("POST", path, raw,
                             {"Content-Type": wire.CONTENT_TYPE})
                response = conn.getresponse()
                body = json.loads(response.read())
                assert response.status == 400, (raw[:16], body)
                assert "error" in body
            # same connection, valid frame: still fully serviceable
            conn.request("POST", path, good,
                         {"Content-Type": wire.CONTENT_TYPE})
            response = conn.getresponse()
            result = json.loads(response.read())
            assert response.status == 200
            assert np.isfinite(result["loss"])
            conn.close()


# ---------------------------------------------------------------------------
# bearer-token tenant auth
# ---------------------------------------------------------------------------

@contextmanager
def authed_gateway():
    service = FineTuneService(max_batch=2, workers=1)
    gateway = GatewayServer(service, auth_tokens={
        "token-a": "tenant-a", "token-b": "tenant-b"}).start()
    try:
        yield service, gateway
    finally:
        gateway.close(drain_timeout=10.0)


class TestTenantAuth:

    def test_healthz_is_open_everything_else_is_401(self):
        with authed_gateway() as (_service, gateway):
            anon = ServeClient(gateway.url)
            assert anon.healthz()["status"] == "ok"
            for call in (anon.metrics, anon.trace,
                         lambda: anon.session("nope"),
                         lambda: anon.step("nope", [0.0] * 5, 0,
                                           wait=False)):
                with pytest.raises(GatewayError) as excinfo:
                    call()
                assert excinfo.value.status == 401
            anon.close()

    def test_bad_token_is_401(self):
        with authed_gateway() as (_service, gateway):
            client = ServeClient(gateway.url, token="wrong")
            with pytest.raises(GatewayError) as excinfo:
                client.metrics()
            assert excinfo.value.status == 401
            client.close()

    def test_sessions_are_pinned_to_the_token_tenant(self):
        rng = np.random.default_rng(2)
        with authed_gateway() as (service, gateway):
            session = service.create_session(
                build_mlp, model_id="mlp", scheme="full", tenant="tenant-a")
            owner = ServeClient(gateway.url, token="token-a")
            other = ServeClient(gateway.url, token="token-b")
            try:
                x, y = mlp_example(rng)
                assert np.isfinite(owner.step(session.id, x, y)["loss"])
                assert owner.session(session.id)["tenant"] == "tenant-a"
                for call in (lambda: other.session(session.id),
                             lambda: other.step(session.id, x, y,
                                                wait=False),
                             lambda: other.close_session(session.id)):
                    with pytest.raises(GatewayError) as excinfo:
                        call()
                    assert excinfo.value.status == 403
            finally:
                owner.close()
                other.close()

    def test_create_session_ignores_cross_tenant_claims(self):
        with authed_gateway() as (_service, gateway):
            client = ServeClient(gateway.url, token="token-a")
            try:
                with pytest.raises(GatewayError) as excinfo:
                    client.create_session("mcunet_micro", scheme="paper",
                                          tenant="tenant-b")
                assert excinfo.value.status == 403
            finally:
                client.close()


# ---------------------------------------------------------------------------
# batch-aware dispatch (hold for fill)
# ---------------------------------------------------------------------------

class TestBatchHold:

    def test_hold_improves_fill_and_records_histogram(self):
        """With a hold window, staggered single submits coalesce into
        fuller batches; serve.batch_fill records the fill either way."""
        rng = np.random.default_rng(9)
        examples = [mlp_example(rng) for _ in range(8)]

        def drive(hold_ms):
            with FineTuneService(max_batch=4, workers=1,
                                 batch_hold_ms=hold_ms) as service:
                session = service.create_session(
                    build_mlp, model_id="mlp", scheme="full")
                futures = []
                for x, y in examples:
                    futures.append(service.submit(session.id, x, y))
                    time.sleep(0.002)
                for future in futures:
                    future.result(60)
                stats = service.metrics.as_dict()
            summary = stats.get("serve.batch_fill") or {}
            return summary.get("mean"), summary.get("count")

        fill_hold, count_hold = drive(hold_ms=50.0)
        assert count_hold and count_hold >= 1
        assert fill_hold is not None and fill_hold > 0.25, \
            "held dispatch should beat one-request batches"
