"""Arena safety: recycled/donated buffers must never alias live values.

The plan's recycling rules are static, so the property to defend is
dynamic: across many randomized graphs and repeated steps, a buffer sitting
in the arena free-list can never share memory with (a) any array the last
run returned, (b) any mutable state entry, or (c) any buffer also in the
free-list. And because recycling overwrites buffers, every randomized
program is also cross-checked value-for-value against the interpreter —
an aliasing hole would surface as silent corruption there.
"""

import numpy as np
import pytest
from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.errors import AutodiffError
from repro.ir import GraphBuilder
from repro.runtime import Executor, Program
from repro.runtime.compiler import compile_training
from repro.sparse import UpdateScheme
from repro.train import SGD


def random_forward(rng):
    """A random DAG mixing fresh elementwise ops, view ops, and params."""
    b = GraphBuilder("g")
    rows = int(rng.integers(2, 6))
    values = [b.input("x", (rows, 4))]
    w = b.initializer("w", rng.standard_normal((4, 4)).astype(np.float32),
                      trainable=True)
    values.append(b.matmul(values[0], w))
    for i in range(int(rng.integers(3, 12))):
        src = values[int(rng.integers(0, len(values)))]
        roll = rng.random()
        if roll < 0.25:
            values.append(b.emit("relu", [src]))
        elif roll < 0.45:
            other = values[int(rng.integers(0, len(values)))]
            if b.shape(src) == b.shape(other):
                values.append(b.add(src, other))
            else:
                values.append(b.emit("tanh", [src]))
        elif roll < 0.6:
            shape = b.shape(src)
            values.append(b.emit("transpose", [src],
                                 {"perm": tuple(reversed(
                                     range(len(shape))))}))
        elif roll < 0.75:
            shape = b.shape(src)
            values.append(b.emit(
                "reshape", [src],
                {"shape": (int(np.prod(shape)),)}))
        else:
            values.append(b.emit("mul", [src, src]))
    b.mark_output(values[-1])
    return b


def assert_arena_disjoint(executor, outputs):
    live = list(outputs.values()) + list(executor.program.state.values())
    for buf in executor.arena.buffers():
        for arr in live:
            assert not np.shares_memory(buf, arr), \
                "arena buffer aliases a live value"
    pooled = executor.arena.buffers()
    for i, a in enumerate(pooled):
        for other in pooled[i + 1:]:
            assert not np.shares_memory(a, other), \
                "arena holds two views of one buffer"


class TestRandomizedGraphs:
    @given(st.integers(0, 10_000))
    @settings(max_examples=30, deadline=None)
    def test_recycling_never_corrupts_or_aliases(self, seed):
        rng = np.random.default_rng(seed)
        b = random_forward(rng)
        program = Program.from_graph(b.graph)
        mirror = Program.from_graph(b.graph)
        ex_plan = Executor(program)
        ex_int = Executor(mirror, backend="interpreter")
        rows = b.graph.spec("x").shape[0]
        for step in range(4):
            feeds = {"x": rng.standard_normal((rows, 4))
                     .astype(np.float32)}
            out_plan = ex_plan.run(feeds)
            out_int = ex_int.run(feeds)
            for name in out_int:
                np.testing.assert_array_equal(
                    out_plan[name], out_int[name],
                    err_msg=f"seed {seed} step {step} output {name}")
            assert_arena_disjoint(ex_plan, out_plan)
            # feeds are caller-owned and must never enter the pool
            for buf in ex_plan.arena.buffers():
                assert not np.shares_memory(buf, feeds["x"])

    @given(st.integers(0, 10_000))
    @settings(max_examples=15, deadline=None)
    def test_training_state_never_aliases_arena(self, seed):
        rng = np.random.default_rng(seed)
        b = random_forward(rng)
        try:
            program = compile_training(
                b.graph, loss="mse", optimizer=SGD(0.1, momentum=0.9),
                scheme=UpdateScheme("w", {"w": 1.0}))
        except AutodiffError:
            # The random DAG routed the output around w — nothing to train.
            assume(False)
        mirror = program.with_state(
            {n: a.copy() for n, a in program.state.items()})
        ex_plan = Executor(program)
        ex_int = Executor(mirror, backend="interpreter")
        labels = program.meta["labels"]
        label_shape = program.graph.spec(labels).shape
        rows = b.graph.spec("x").shape[0]
        for step in range(3):
            feeds = {
                "x": rng.standard_normal((rows, 4)).astype(np.float32),
                labels: rng.standard_normal(label_shape).astype(np.float32),
            }
            out_plan = ex_plan.run(feeds)
            out_int = ex_int.run(feeds)
            for name in out_int:
                np.testing.assert_array_equal(
                    out_plan[name], out_int[name],
                    err_msg=f"seed {seed} step {step} output {name}")
            for name in mirror.state:
                np.testing.assert_array_equal(
                    program.state[name], mirror.state[name],
                    err_msg=f"seed {seed} step {step} state {name}")
            assert_arena_disjoint(ex_plan, out_plan)


class TestDonationSafety:
    def test_donated_buffer_becomes_output_not_pool_entry(self, rng):
        """When an instruction donates a dying input as its output buffer,
        that buffer is live again — it must not simultaneously sit in the
        free-list."""
        b = GraphBuilder("chain")
        x = b.input("x", (32, 32))
        h = b.emit("relu", [x])
        h = b.emit("tanh", [h])     # donates relu's buffer
        h = b.emit("relu", [h])     # donates tanh's buffer
        h = b.emit("mul", [h, h])
        y = b.emit("reduce_sum", [h])  # frees mul's buffer into the pool
        b.mark_output(y)
        ex = Executor(Program.from_graph(b.graph))
        feeds = {"x": rng.standard_normal((32, 32)).astype(np.float32)}
        for _ in range(3):
            out = ex.run(feeds)
            assert_arena_disjoint(ex, out)
        # Steady state: the whole elementwise chain runs on recycled +
        # donated buffers (the buffer freed at the reduce feeds the next
        # step's relu); only reduce_sum (no out= variant) allocates.
        assert ex.last_step_fresh_allocs == 1

    def test_view_consumers_block_recycling(self, rng):
        """A value consumed by reshape stays unpooled: the view must remain
        valid after the producer's slot is freed."""
        b = GraphBuilder("views")
        x = b.input("x", (8, 8))
        h = b.emit("relu", [x])
        v = b.emit("reshape", [h], {"shape": (64,)})
        y = b.emit("tanh", [v])
        b.mark_output(y)
        ex = Executor(Program.from_graph(b.graph))
        feeds = {"x": rng.standard_normal((8, 8)).astype(np.float32)}
        out1 = ex.run(feeds)
        for buf in ex.arena.buffers():
            for arr in out1.values():
                assert not np.shares_memory(buf, arr)

    def test_multi_step_stability_under_recycling(self, rng):
        """Recycled buffers carry garbage from prior steps; results must
        still be bit-stable run over run for identical feeds."""
        b = GraphBuilder("stable")
        x = b.input("x", (16, 16))
        h = b.emit("relu", [x])
        h = b.emit("mul", [h, h])
        h = b.emit("tanh", [h])
        b.mark_output(h)
        ex = Executor(Program.from_graph(b.graph))
        feeds = {"x": rng.standard_normal((16, 16)).astype(np.float32)}
        first = ex.run(feeds)
        snap = {k: v.copy() for k, v in first.items()}
        for _ in range(5):
            again = ex.run(feeds)
            for k in snap:
                np.testing.assert_array_equal(again[k], snap[k])
