"""Static analysis: plan verifier mutation harness + concurrency lint.

The plan verifier's contract has two halves, and both are tested here:

* **soundness** — every class of miscompile the mutation harness can
  inject into a valid :class:`PlanSpec` (swapped slots, truncated
  free-lists, dropped state writes, widened dtypes, lying byte
  accounting, premature frees, bad donations, phantom nodes) is caught;
* **zero false positives** — every plan the real compiler produces, for
  every model and pass configuration exercised here, verifies clean.
  (The whole tier-1 suite reinforces this: conftest exports
  ``REPRO_VERIFY_PLANS=1``, so every compile in every test re-verifies.)
"""

from __future__ import annotations

import dataclasses
import json
import os
import textwrap

import numpy as np
import pytest

from repro.analysis import (check_plan, lint_module, lint_tree,
                            lint_worker_imports, parse_waivers, report_for,
                            verify_plan_spec)
from repro.deploy import load_artifact, save_artifact
from repro.errors import PlanVerifyError
from repro.runtime.compiler import CompileOptions, compile_inference, \
    compile_training
from repro.serve import ProgramCache
from repro.train import SGD

from conftest import make_mlp_graph


def _program(seed=0, passes="default"):
    builder, _ = make_mlp_graph(seed=seed)
    return compile_training(builder.graph, optimizer=SGD(0.05),
                            options=CompileOptions(plan_passes=passes))


def _mcunet_program():
    from repro.models import build_model, paper_scheme

    forward = build_model("mcunet_micro", batch=2, num_classes=3)
    return compile_training(forward, optimizer=SGD(0.05),
                            scheme=paper_scheme(forward))


def _rules(spec, program):
    return {f.rule for f in verify_plan_spec(spec, program)}


def _mutate_instr(spec, idx, **changes):
    instrs = list(spec.instructions)
    instrs[idx] = dataclasses.replace(instrs[idx], **changes)
    return dataclasses.replace(spec, instructions=tuple(instrs))


class TestVerifierZeroFalsePositives:
    """Valid compiler output must verify clean — no exceptions."""

    @pytest.mark.parametrize("passes", ["default", "none"])
    def test_mlp_training_plans_clean(self, passes):
        program = _program(passes=passes)
        assert verify_plan_spec(program.plan_spec(), program) == []

    def test_mlp_inference_plan_clean(self):
        builder, _ = make_mlp_graph()
        program = compile_inference(builder.graph)
        assert verify_plan_spec(program.plan_spec(), program) == []

    def test_mcunet_sparse_plan_clean(self):
        """The hardest real plan: fusion, precompute, donations, views."""
        program = _mcunet_program()
        spec = program.plan_spec()
        assert verify_plan_spec(spec, program) == []
        # Make sure this plan actually exercises the interesting machinery
        # — a clean pass over a trivial plan would prove nothing.
        assert any(i.fused for i in spec.instructions)
        assert any(i.donate_slot >= 0 for i in spec.instructions)
        assert spec.precomputed

    def test_roundtripped_spec_clean(self):
        program = _program()
        from repro.runtime import PlanSpec

        doc = json.loads(json.dumps(program.plan_spec().to_dict()))
        assert verify_plan_spec(PlanSpec.from_dict(doc), program) == []


class TestMutationHarness:
    """Each injected miscompile class must surface a precise finding."""

    @pytest.fixture(scope="class")
    def victim(self):
        program = _program()
        return program, program.plan_spec()

    def test_swapped_input_slots(self, victim):
        program, spec = victim
        idx = next(i for i, ins in enumerate(spec.instructions)
                   if len(set(ins.input_slots)) >= 2 and not ins.fused)
        swapped = tuple(reversed(spec.instructions[idx].input_slots))
        bad = _mutate_instr(spec, idx, input_slots=swapped)
        assert "input-slot-mismatch" in _rules(bad, program)

    def test_truncated_free_list(self, victim):
        program, spec = victim
        idx = next(i for i, ins in enumerate(spec.instructions)
                   if ins.frees)
        bad = _mutate_instr(spec, idx, frees=())
        rules = _rules(bad, program)
        # The leak is caught directly, and the byte ledger disagrees too.
        assert "missing-free" in rules
        assert rules & {"final-bytes-mismatch", "arena-caps-mismatch",
                        "clear-slots-mismatch", "missing-free"}

    def test_dropped_state_write(self, victim):
        """Deleting the optimizer apply = weights silently stop training."""
        program, spec = victim
        mutable_slots = {slot for slot, name in spec.state_bindings
                         if name in program.mutable_state_names()}
        # State writes are in-place (fresh_outputs == 0) instructions
        # reading a mutable state slot — the SGD apply.
        idx = next(i for i, ins in enumerate(spec.instructions)
                   if ins.fresh_outputs == 0 and not ins.use_out
                   and mutable_slots & set(ins.input_slots))
        instrs = spec.instructions[:idx] + spec.instructions[idx + 1:]
        bad = dataclasses.replace(spec, instructions=instrs)
        rules = _rules(bad, program)
        assert "missing-instruction" in rules
        assert "state-not-written" in rules

    def test_widened_dtype(self, victim):
        program, spec = victim
        idx = next(i for i, ins in enumerate(spec.instructions)
                   if ins.out_dtype == "float32")
        bad = _mutate_instr(spec, idx, out_dtype="float64")
        assert "out-spec-mismatch" in _rules(bad, program)

    def test_lying_arena_caps(self, victim):
        program, spec = victim
        assert spec.arena_caps
        key, count = spec.arena_caps[0]
        caps = ((key, count + 1),) + spec.arena_caps[1:]
        bad = dataclasses.replace(spec, arena_caps=caps)
        assert "arena-caps-mismatch" in _rules(bad, program)

    def test_lying_peak_bytes(self, victim):
        program, spec = victim
        bad = dataclasses.replace(
            spec, peak_transient_bytes=spec.peak_transient_bytes - 1)
        assert "peak-bytes-mismatch" in _rules(bad, program)

    def test_use_after_free(self, victim):
        """A free hoisted above the buffer's last reader."""
        program, spec = victim
        last_read: dict[int, int] = {}
        for i, ins in enumerate(spec.instructions):
            for slot in ins.input_slots:
                last_read[slot] = i
        state_slots = {slot for slot, _ in spec.state_bindings}
        idx, slot = next(
            (i, s) for i, ins in enumerate(spec.instructions)
            for s in ins.input_slots
            if s not in state_slots and last_read[s] > i)
        old = spec.instructions[idx].frees
        bad = _mutate_instr(spec, idx, frees=old + ((slot, None),))
        assert "use-after-free" in _rules(bad, program)

    def test_phantom_node(self, victim):
        program, spec = victim
        bad = _mutate_instr(spec, 0, node="no_such_node")
        assert "unknown-node" in _rules(bad, program)

    def test_bad_donation(self, victim):
        """Donating a buffer that is still alive aliases live data."""
        program, spec = victim
        state_slots = {slot for slot, _ in spec.state_bindings}
        idx = next(i for i, ins in enumerate(spec.instructions)
                   if ins.use_out and ins.donate_slot < 0
                   and any(s not in state_slots for s in ins.input_slots))
        ins = spec.instructions[idx]
        slot = next(s for s in ins.input_slots if s not in state_slots)
        bad = _mutate_instr(spec, idx, donate_slot=slot)
        rules = _rules(bad, program)
        assert rules & {"donation-not-freed", "donation-unsafe",
                        "donation-alias-unsafe", "donation-shape-mismatch"}

    def test_redirected_output_slot(self, victim):
        program, spec = victim
        name, slot = spec.output_slots[0]
        other = next(s for _, s in spec.feed_specs if s != slot)
        outs = ((name, other),) + spec.output_slots[1:]
        bad = dataclasses.replace(spec, output_slots=outs)
        assert "output-slot-mismatch" in _rules(bad, program)

    def test_check_plan_raises_with_rule_names(self, victim):
        program, spec = victim
        bad = _mutate_instr(spec, 0, node="no_such_node")
        with pytest.raises(PlanVerifyError, match="unknown-node"):
            check_plan(bad, program, stage="mutation harness")


class TestTunedVariantMutations:
    """A lying ``tuned_variants`` table must not verify: every claim in
    it (node exists, kernel matches, the chosen variant is registered and
    is what the instruction actually binds, costs are sane) is checked."""

    @pytest.fixture(scope="class")
    def victim(self):
        from repro.models import build_model, paper_scheme

        forward = build_model("mcunet_micro", batch=2, num_classes=3)
        program = compile_training(
            forward, optimizer=SGD(0.05), scheme=paper_scheme(forward),
            options=CompileOptions(autotune="cost"))
        spec = program.plan_spec()
        assert spec.tuned_variants, "fixture lost its tuning decisions"
        return program, spec

    def _mutate_tuned(self, spec, idx=0, *, append=None, **changes):
        tuned = list(spec.tuned_variants)
        if append is not None:
            tuned.append(append)
        else:
            tuned[idx] = dataclasses.replace(tuned[idx], **changes)
        return dataclasses.replace(spec, tuned_variants=tuple(tuned))

    def test_autotuned_plan_verifies_clean(self, victim):
        program, spec = victim
        assert verify_plan_spec(spec, program) == []
        assert any(t.variant != "base" for t in spec.tuned_variants)

    def test_unknown_node(self, victim):
        program, spec = victim
        bad = self._mutate_tuned(spec, node="no_such_node")
        assert "tuned-unknown-node" in _rules(bad, program)

    def test_kernel_mismatch(self, victim):
        program, spec = victim
        bad = self._mutate_tuned(spec, kernel="matmul")
        assert "tuned-kernel-mismatch" in _rules(bad, program)

    def test_unregistered_variant(self, victim):
        program, spec = victim
        bad = self._mutate_tuned(spec, variant="turbo_v2")
        assert "tuned-unregistered-variant" in _rules(bad, program)

    def test_variant_disagrees_with_instruction(self, victim):
        """Claiming a registered variant the instruction does not bind:
        the decision table and the stream must tell one story."""
        program, spec = victim
        idx = next(i for i, t in enumerate(spec.tuned_variants)
                   if t.variant == "im2col_precomputed")
        bad = self._mutate_tuned(spec, idx, variant="winograd_precomputed")
        assert "tuned-variant-mismatch" in _rules(bad, program)

    def test_duplicate_decision(self, victim):
        program, spec = victim
        bad = self._mutate_tuned(spec, append=spec.tuned_variants[0])
        assert "tuned-duplicate" in _rules(bad, program)

    def test_bad_source(self, victim):
        program, spec = victim
        bad = self._mutate_tuned(spec, source="vibes")
        assert "tuned-source" in _rules(bad, program)

    def test_invalid_costs(self, victim):
        program, spec = victim
        for changes in ({"predicted_us": float("nan")},
                        {"predicted_us": -1.0},
                        {"measured_us": float("nan")}):
            bad = self._mutate_tuned(spec, **changes)
            assert "tuned-cost-invalid" in _rules(bad, program), changes


class TestArtifactAndCacheIntegration:
    def test_lint_collects_findings_without_raising(self, tmp_path):
        """``verify=False`` + report_for: the lint-plan CLI path."""
        program = _program()
        save_artifact(program, tmp_path / "m")
        path = tmp_path / "m" / "manifest.json"
        manifest = json.loads(path.read_text())
        manifest["plan"]["peak_transient_bytes"] += 64
        path.write_text(json.dumps(manifest))
        deployed = load_artifact(tmp_path / "m", verify=False)
        report = report_for(deployed.program.plan_spec(), deployed.program,
                            target="m")
        assert not report.ok
        assert any(f.rule == "peak-bytes-mismatch" for f in report.findings)

    def test_cache_quarantines_verify_failures(self, tmp_path):
        """A persisted artifact that fails verification is a counted,
        quarantined miss — the service recompiles instead of serving a
        miscompile, and the bad artifact never gets loaded again."""
        ProgramCache(capacity=4, cache_dir=tmp_path).get_or_build(
            "k1", _program)
        path = tmp_path / "k1" / "manifest.json"
        manifest = json.loads(path.read_text())
        manifest["plan"]["instructions"][0]["node"] = "no_such_node"
        path.write_text(json.dumps(manifest))

        fresh = ProgramCache(capacity=4, cache_dir=tmp_path)
        entry = fresh.get_or_build("k1", _program)
        assert not entry.from_disk
        assert fresh.stats.verify_rejects == 1
        assert fresh.stats.compiles == 1
        # The rebuild overwrote the quarantined artifact with a good one.
        repaired = ProgramCache(capacity=4, cache_dir=tmp_path)
        assert repaired.get_or_build(
            "k1", lambda: pytest.fail("must load from disk")).from_disk
        assert repaired.stats.verify_rejects == 0

    def test_compile_path_verifies_before_persist(self, tmp_path):
        cache = ProgramCache(capacity=4, cache_dir=tmp_path)
        entry = cache.get_or_build("k1", _program)
        assert entry.program.meta.get("__plan__") is not None
        assert cache.stats.verify_rejects == 0


def _lint(source):
    return lint_module(textwrap.dedent(source), filename="mod.py")


class TestAsyncLint:
    def test_blocking_call_in_async_flagged(self):
        findings = _lint("""
            import time

            async def handler():
                time.sleep(1)
        """)
        assert [f.rule for f in findings] == ["blocking-call"]
        assert "time.sleep" in findings[0].message

    def test_awaited_primitive_not_flagged(self):
        assert _lint("""
            async def handler(conn):
                await conn.wait()
        """) == []

    def test_sync_helper_reachability(self):
        findings = _lint("""
            import time

            def helper():
                time.sleep(1)

            async def handler():
                helper()
        """)
        assert len(findings) == 1
        assert "via helper" in findings[0].message

    def test_self_method_reachability(self):
        findings = _lint("""
            class Gateway:
                async def handle(self):
                    self._send()

                def _send(self):
                    open("/tmp/x")
        """)
        assert len(findings) == 1
        assert "Gateway._send" in findings[0].message

    def test_nested_def_is_executor_thunk(self):
        assert _lint("""
            import time

            async def handler(loop):
                def thunk():
                    time.sleep(1)
                await loop.run_in_executor(None, thunk)
        """) == []

    def test_sync_context_not_flagged(self):
        assert _lint("""
            import time

            def main():
                time.sleep(1)
        """) == []

    def test_str_join_not_flagged(self):
        assert _lint("""
            async def render(lines):
                return "\\r\\n".join(lines) + f"{lines}".join([])
        """) == []

    def test_waiver_suppresses_but_keeps_finding(self):
        findings = _lint("""
            import time

            async def probe():
                time.sleep(0.01)  # repro-lint: allow[blocking-call] probe off the hot path
        """)
        assert len(findings) == 1
        assert findings[0].waived
        assert "probe off the hot path" in findings[0].waive_reason

    def test_waiver_must_name_the_rule(self):
        findings = _lint("""
            import time

            async def probe():
                time.sleep(0.01)  # repro-lint: allow[some-other-rule] nope
        """)
        assert len(findings) == 1
        assert not findings[0].waived

    def test_parse_waivers(self):
        waivers = parse_waivers(
            "x = 1  # repro-lint: allow[blocking-call] because reasons\n")
        assert waivers == {1: ("blocking-call", "because reasons")}


class TestWorkerImportGraph:
    def _tree(self, tmp_path, worker_body, util_body=""):
        pkg = tmp_path / "app"
        pkg.mkdir()
        (pkg / "__init__.py").write_text("")
        (pkg / "worker.py").write_text(textwrap.dedent(worker_body))
        (pkg / "util.py").write_text(textwrap.dedent(util_body))
        (pkg / "compiler.py").write_text("")
        return str(tmp_path)

    def test_entry_lazy_import_counts(self, tmp_path):
        root = self._tree(tmp_path, """
            def run():
                from . import compiler
        """)
        findings = lint_worker_imports(root, entry="app.worker",
                                       forbidden=("app.compiler",))
        assert len(findings) == 1
        assert "app.compiler <- app.worker" in findings[0].message

    def test_transitive_module_level_import_counts(self, tmp_path):
        root = self._tree(tmp_path, "from . import util\n",
                          util_body="from . import compiler\n")
        findings = lint_worker_imports(root, entry="app.worker",
                                       forbidden=("app.compiler",))
        assert len(findings) == 1
        assert "<- app.util <- app.worker" in findings[0].message

    def test_non_entry_lazy_import_does_not_count(self, tmp_path):
        root = self._tree(tmp_path, "from . import util\n", util_body="""
            def later():
                from . import compiler
        """)
        assert lint_worker_imports(root, entry="app.worker",
                                   forbidden=("app.compiler",)) == []


class TestRealTreeIsClean:
    """Satellite: the shipped serving stack passes its own lint."""

    def test_serve_package_has_no_unwaived_blockers(self):
        import repro.serve

        root = repro.serve.__path__[0]
        report = lint_tree(root)
        assert report.unwaived == [], report.render()

    def test_step_worker_import_closure_compiler_free(self):
        import repro

        src_root = os.path.dirname(os.path.dirname(repro.__file__))
        assert lint_worker_imports(src_root) == []
