"""Rematerialization and paging (the POET-style baseline)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ir import GraphBuilder, validate_graph
from repro.memory import (plan_paging, profile_memory, rematerialize)
from repro.models import build_model
from repro.runtime import Executor, Program
from repro.runtime.compiler import compile_training
from repro.train import SGD

from conftest import make_mlp_graph


def mobilenet_training_program(batch=4):
    forward = build_model("mobilenetv2_micro", batch=batch)
    return compile_training(forward, optimizer=SGD(0.05))


def chain_graph(depth=6, width=64):
    """A deep elementwise chain whose intermediates all stay live at the
    end (every stage feeds the final sum) — maximal remat opportunity."""
    b = GraphBuilder("chain")
    x = b.input("x", (width,))
    stages = [x]
    value = x
    for _ in range(depth):
        value = b.emit("tanh", [value])
        stages.append(value)
    total = stages[0]
    for stage in stages[1:]:
        total = b.add(total, stage)
    b.mark_output(total)
    return b.graph


class TestRematerialize:
    def test_reduces_peak_under_budget(self):
        program = mobilenet_training_program()
        base = profile_memory(program.graph, program.schedule)
        budget = int(base.peak_total_bytes * 0.7)
        result = rematerialize(program.graph, program.schedule, budget)
        assert result.fits
        assert result.peak_after <= budget
        assert result.peak_before == base.peak_total_bytes
        validate_graph(result.graph)

    def test_numeric_equivalence_on_training_step(self, rng):
        program = mobilenet_training_program()
        base = profile_memory(program.graph, program.schedule)
        result = rematerialize(program.graph, program.schedule,
                               int(base.peak_total_bytes * 0.7))
        forward_in = program.graph.inputs[0]
        feeds = {
            forward_in: rng.standard_normal(
                program.graph.spec(forward_in).shape).astype(np.float32),
            program.meta["labels"]: rng.integers(0, 10, 4).astype(np.int64),
        }
        loss_name = program.meta["loss"]
        base_loss = Executor(program).run(feeds)[loss_name]
        remat_prog = Program.from_graph(result.graph, result.schedule)
        remat_loss = Executor(remat_prog).run(feeds)[loss_name]
        np.testing.assert_allclose(base_loss, remat_loss, rtol=1e-5)

    def test_executor_measures_the_saving(self, rng):
        # The analytical saving must be real: the executor's own peak
        # tracking (actual nbytes of live arrays) drops too.
        program = mobilenet_training_program()
        base = profile_memory(program.graph, program.schedule)
        result = rematerialize(program.graph, program.schedule,
                               int(base.peak_total_bytes * 0.7))
        forward_in = program.graph.inputs[0]
        feeds = {
            forward_in: rng.standard_normal(
                program.graph.spec(forward_in).shape).astype(np.float32),
            program.meta["labels"]: rng.integers(0, 10, 4).astype(np.int64),
        }
        ex_base = Executor(program)
        ex_base.run(feeds)
        ex_remat = Executor(Program.from_graph(result.graph,
                                               result.schedule))
        ex_remat.run(feeds)
        assert ex_remat.peak_transient_bytes \
            < ex_base.peak_transient_bytes * 0.8

    def test_costs_extra_computation(self):
        # The paper's argument against remat (§2.2): memory comes back,
        # compute goes up.
        program = mobilenet_training_program()
        base = profile_memory(program.graph, program.schedule)
        result = rematerialize(program.graph, program.schedule,
                               int(base.peak_total_bytes * 0.7))
        assert result.extra_flops > 0
        assert len(result.schedule) > len(program.schedule)

    def test_generous_budget_is_identity(self):
        program = mobilenet_training_program()
        base = profile_memory(program.graph, program.schedule)
        result = rematerialize(program.graph, program.schedule,
                               base.peak_total_bytes + 1)
        assert result.fits and not result.evictions
        assert result.extra_flops == 0

    def test_impossible_budget_reports_not_fits(self):
        program = mobilenet_training_program()
        result = rematerialize(program.graph, program.schedule,
                               budget_bytes=1)
        assert not result.fits
        assert result.peak_after <= result.peak_before

    def test_duplicate_consumer_rewires_once(self, rng):
        # Regression: add(v, v) lists v's consumer step twice; the trial
        # undo used to restore the half-rewritten inputs and corrupt the
        # graph.
        from repro.ir import GraphBuilder, validate_graph

        b = GraphBuilder("g")
        x = b.input("x", (64, 64))
        h = b.emit("tanh", [x])
        big = b.matmul(h, b.initializer(
            "w", rng.standard_normal((64, 64)).astype(np.float32)))
        doubled = b.add(h, h)  # duplicate consumption of h
        b.mark_output(b.add(big, doubled))
        schedule = b.graph.topological_order()
        result = rematerialize(b.graph, schedule, budget_bytes=1,
                               max_evictions=8)
        validate_graph(result.graph)
        feed = {"x": rng.standard_normal((64, 64)).astype(np.float32)}
        want = Executor(Program.from_graph(b.graph, schedule)).run(feed)
        got = Executor(Program.from_graph(result.graph,
                                          result.schedule)).run(feed)
        for name in b.graph.outputs:
            np.testing.assert_allclose(want[name], got[name], rtol=1e-6)

    def test_peak_never_increases_even_on_transformers(self):
        # Transformer peaks sit on plateaus where naive eviction can
        # *extend* producer-input lifetimes across the peak; the rollback
        # logic must guarantee monotone non-increasing peaks anyway.
        from repro.models import build_model

        forward = build_model("bert_micro", batch=2, seq_len=8,
                              num_classes=2)
        program = compile_training(forward, optimizer=SGD(0.05))
        result = rematerialize(program.graph, program.schedule,
                               budget_bytes=1, max_evictions=48)
        assert result.peak_after <= result.peak_before

    def test_respects_max_evictions(self):
        program = mobilenet_training_program()
        result = rematerialize(program.graph, program.schedule,
                               budget_bytes=1, max_evictions=3)
        assert len(result.evictions) <= 3

    def test_never_recomputes_optimizer_updates(self):
        program = mobilenet_training_program()
        result = rematerialize(program.graph, program.schedule,
                               budget_bytes=1, max_evictions=200)
        for ev in result.evictions:
            node = next(n for n in result.schedule
                        if n.name == ev.recompute)
            assert not node.op_type.startswith("apply_")

    def test_original_program_untouched(self):
        program = mobilenet_training_program()
        nodes_before = len(program.graph.nodes)
        inputs_before = [tuple(n.inputs) for n in program.schedule]
        base = profile_memory(program.graph, program.schedule)
        rematerialize(program.graph, program.schedule,
                      int(base.peak_total_bytes * 0.7))
        assert len(program.graph.nodes) == nodes_before
        assert [tuple(n.inputs) for n in program.schedule] == inputs_before

    @given(fraction=st.floats(0.5, 0.95))
    @settings(max_examples=10, deadline=None)
    def test_property_equivalence_under_any_budget(self, fraction):
        rng = np.random.default_rng(7)
        builder, names = make_mlp_graph(batch=4, din=6, dhidden=16, dout=3)
        program = compile_training(builder.graph, optimizer=SGD(0.05))
        base = profile_memory(program.graph, program.schedule)
        result = rematerialize(program.graph, program.schedule,
                               int(base.peak_total_bytes * fraction))
        validate_graph(result.graph)
        feeds = {
            "x": rng.standard_normal((4, 6)).astype(np.float32),
            program.meta["labels"]: rng.integers(0, 3, 4).astype(np.int64),
        }
        loss_name = program.meta["loss"]
        want = Executor(program).run(feeds)[loss_name]
        got = Executor(Program.from_graph(result.graph, result.schedule)
                       ).run(feeds)[loss_name]
        np.testing.assert_allclose(want, got, rtol=1e-5)


class TestPaging:
    def test_paging_fits_budget_with_traffic(self):
        program = mobilenet_training_program()
        base = profile_memory(program.graph, program.schedule)
        plan = plan_paging(program.graph, program.schedule,
                           int(base.peak_total_bytes * 0.7))
        assert plan.fits
        assert plan.peak_after <= int(base.peak_total_bytes * 0.7)
        assert plan.flash_traffic_bytes \
            >= 2 * max(1, len(plan.paged_values))

    def test_generous_budget_pages_nothing(self):
        program = mobilenet_training_program()
        base = profile_memory(program.graph, program.schedule)
        plan = plan_paging(program.graph, program.schedule,
                           base.peak_total_bytes + 1)
        assert plan.fits and not plan.paged_values
        assert plan.flash_traffic_bytes == 0

    def test_transfer_time_scales_with_bandwidth(self):
        program = mobilenet_training_program()
        base = profile_memory(program.graph, program.schedule)
        plan = plan_paging(program.graph, program.schedule,
                           int(base.peak_total_bytes * 0.6))
        slow = plan.transfer_ms(0.05)
        fast = plan.transfer_ms(0.5)
        assert slow == pytest.approx(10 * fast)

    def test_transfer_rejects_bad_bandwidth(self):
        from repro.errors import MemoryPlanError
        program = mobilenet_training_program()
        plan = plan_paging(program.graph, program.schedule, 10 ** 12)
        with pytest.raises(MemoryPlanError):
            plan.transfer_ms(0.0)

    def test_paging_beats_nothing_on_chain(self):
        graph = chain_graph(depth=8, width=4096)
        plan = plan_paging(graph, budget_bytes=1)
        assert plan.peak_after < plan.peak_before


class TestRematVsSparse:
    def test_sparse_bp_beats_remat_on_both_axes(self):
        """The paper's §2.2 comparison: under the same memory budget,
        sparse-BP costs *less* compute than full-BP while remat costs
        *more* — sparse wins both memory and time."""
        from repro.models import paper_scheme
        from repro.ir import op_flops

        forward = build_model("mobilenetv2_micro", batch=4)
        full = compile_training(forward, optimizer=SGD(0.05))
        sparse = compile_training(forward, optimizer=SGD(0.05),
                                  scheme=paper_scheme(forward))
        sparse_peak = profile_memory(sparse.graph,
                                     sparse.schedule).peak_total_bytes
        result = rematerialize(full.graph, full.schedule, sparse_peak)

        def total_flops(graph, schedule):
            return sum(op_flops(n.op_type,
                                [graph.spec(i) for i in n.inputs],
                                [graph.spec(o) for o in n.outputs],
                                n.attrs) for n in schedule)

        full_flops = total_flops(full.graph, full.schedule)
        sparse_flops = total_flops(sparse.graph, sparse.schedule)
        remat_flops = total_flops(result.graph, result.schedule)
        assert sparse_flops < full_flops
        assert remat_flops > full_flops
