"""Pass-pipeline equivalence suite (`repro.runtime.passes`).

Every optimization pass must be a pure lowering decision: byte-identical
outputs and mutable state against the interpreter (and against
``passes="none"``) for any program, under any on/off combination —
including scalar-constant folding and the autotune variant-selection
pass. On top of that, the structural claims: fused chains really remove
instructions and slots, precomputed transforms really bind once per
session, donation never hands a fused chain a buffer a later link still
reads, autotuning is deterministic, and version-1/2 plan specs still
load through the compat shims.
"""

from __future__ import annotations

from dataclasses import replace

import json

import numpy as np
import pytest

from repro.errors import ExecutionError, PlanVersionError
from repro.ir import GraphBuilder
from repro.runtime import Executor, PlanSpec, Program, bind_plan, \
    build_plan_spec
from repro.runtime.compiler import CompileOptions, compile_training
from repro.runtime.passes import DEFAULT_PASSES, resolve_passes, run_pipeline
from repro.sparse import LoRAConfig, UpdateScheme, inject_lora, lora_scheme
from repro.train import SGD

from conftest import make_mlp_graph

PASS_CONFIGS = ["none", "default",
                ("fuse_elementwise",), ("precompute_frozen",),
                ("fuse_elementwise", "fold_scalars"),
                ("fuse_elementwise", "fold_scalars", "precompute_frozen",
                 "autotune")]


def with_passes(program, passes):
    """An independent lowering of ``program`` under a pass config.

    Shares graph/schedule, gets private state and a private meta (so the
    cached plan of one config never leaks into another).
    """
    meta = {k: v for k, v in program.meta.items()
            if k not in ("__plan__", "__plan_spec__")}
    meta["plan_passes"] = passes
    return replace(program, meta=meta,
                   state={n: a.copy() for n, a in program.state.items()})


def assert_all_configs_equivalent(program, feeds_fn, steps=3):
    """Each pass config must match the interpreter byte-for-byte."""
    ex_int = Executor(with_passes(program, "none"), backend="interpreter")
    runners = {cfg: Executor(with_passes(program, cfg))
               for cfg in PASS_CONFIGS}
    for step in range(steps):
        feeds = feeds_fn(step)
        want = ex_int.run(feeds)
        for cfg, ex in runners.items():
            got = ex.run(feeds)
            assert set(got) == set(want)
            for name in want:
                assert got[name].tobytes() == want[name].tobytes(), \
                    f"passes={cfg} output {name} step {step}"
            for name in ex_int.program.state:
                assert ex.program.state[name].tobytes() \
                    == ex_int.program.state[name].tobytes(), \
                    f"passes={cfg} state {name} step {step}"
            assert ex.last_transient_bytes == ex_int.last_transient_bytes
            assert ex.peak_transient_bytes <= ex_int.peak_transient_bytes
    return runners


class TestEquivalenceMatrix:
    def test_mlp_training(self, rng):
        b, _ = make_mlp_graph(seed=11)
        program = compile_training(b.graph, optimizer=SGD(0.2))
        x = rng.standard_normal((4, 5)).astype(np.float32)
        y = np.array([0, 1, 2, 0], np.int64)
        assert_all_configs_equivalent(
            program, lambda step: {"x": x, "labels": y}, steps=4)

    def test_cnn_sparse_training_with_frozen_winograd(self, rng):
        from repro.frontend.keras_like import (Conv2D, Dense,
                                               GlobalAveragePooling2D,
                                               build_sequential)

        forward = build_sequential([
            Conv2D(8, 3, padding="same", activation="relu"),
            GlobalAveragePooling2D(),
            Dense(4),
        ], input_shape=(2, 3, 8, 8), seed=13)
        params = sorted(forward.trainable)
        # Train only the dense tail: the 3x3 conv freezes -> winograd.
        scheme = UpdateScheme("tail", {params[-1]: 1.0, params[-2]: 1.0})
        program = compile_training(forward, optimizer=SGD(0.1),
                                   scheme=scheme)
        assert any(n.attrs.get("algo") == "winograd"
                   for n in program.schedule), "fixture lost its winograd"
        x = rng.standard_normal((2, 3, 8, 8)).astype(np.float32)
        y = np.array([0, 3], np.int64)
        labels = program.meta["labels"]
        runners = assert_all_configs_equivalent(
            program, lambda step: {forward.inputs[0]: x, labels: y})
        spec = runners["default"].program.plan_spec()
        assert len(spec.precomputed) == 1
        assert spec.precomputed[0].transform == "winograd_weight"
        assert spec.precomputed_bytes > 0

    def test_int8_inference(self, rng):
        from repro.frontend.keras_like import (Conv2D, Dense,
                                               GlobalAveragePooling2D,
                                               build_sequential)
        from repro.quant import collect_ranges, quantize_inference_graph

        forward = build_sequential([
            Conv2D(6, 3, padding="same", activation="relu"),
            GlobalAveragePooling2D(),
            Dense(4),
        ], input_shape=(2, 3, 8, 8), seed=17)
        calib = [{forward.inputs[0]:
                  rng.standard_normal((2, 3, 8, 8)).astype(np.float32)}
                 for _ in range(2)]
        int8 = quantize_inference_graph(forward,
                                        collect_ranges(forward, calib))
        program = Program.from_graph(int8)
        assert_all_configs_equivalent(program, lambda step: calib[0],
                                      steps=2)

    def test_lora_training(self, rng):
        from repro.models import build_model

        base = build_model("bert_micro", batch=2, seq_len=8, num_classes=2)
        lora = inject_lora(base, LoRAConfig(rank=2))
        program = compile_training(lora, optimizer=SGD(0.1),
                                   scheme=lora_scheme(lora))
        ids = rng.integers(0, 50, base.spec(base.inputs[0]).shape)
        feeds = {base.inputs[0]: ids.astype(np.int64),
                 program.meta["labels"]:
                 rng.integers(0, 2, 2).astype(np.int64)}
        assert_all_configs_equivalent(program, lambda step: feeds, steps=2)


class TestFusionStructure:
    def _chain_program(self):
        b = GraphBuilder("chain")
        x = b.input("x", (16, 16))
        h = b.emit("relu", [x])
        h = b.emit("tanh", [h])
        h = b.emit("sigmoid", [h])
        y = b.emit("reduce_sum", [h])
        b.mark_output(y)
        return Program.from_graph(b.graph)

    def test_chain_collapses_instructions_and_slots(self):
        program = self._chain_program()
        fused = build_plan_spec(program, passes="default")
        none = build_plan_spec(program, passes="none")
        assert len(fused.instructions) < len(none.instructions)
        assert fused.num_slots < none.num_slots
        chain = [i for i in fused.instructions if i.fused is not None]
        assert len(chain) == 1
        assert [link.kernel for link in chain[0].fused] \
            == ["relu", "tanh", "sigmoid"]
        assert fused.passes == DEFAULT_PASSES
        assert none.passes == ()

    def test_fused_chain_runs_byte_identically(self, rng):
        program = self._chain_program()
        feeds = {"x": rng.standard_normal((16, 16)).astype(np.float32)}
        ex = Executor(with_passes(program, "default"))
        ex_int = Executor(with_passes(program, "none"),
                          backend="interpreter")
        for _ in range(4):  # recycled buffers carry garbage across steps
            got = ex.run(feeds)
            want = ex_int.run(feeds)
            for name in want:
                assert got[name].tobytes() == want[name].tobytes()

    def test_output_values_never_fused_away(self, rng):
        """A chain intermediate marked as a program output must
        materialise, capping the chain."""
        b = GraphBuilder("keepmid")
        x = b.input("x", (8, 8))
        h1 = b.emit("relu", [x])
        h2 = b.emit("tanh", [h1])
        b.mark_output(h1)
        b.mark_output(h2)
        program = Program.from_graph(b.graph)
        spec = build_plan_spec(program, passes="default")
        assert all(i.fused is None for i in spec.instructions)
        feeds = {"x": rng.standard_normal((8, 8)).astype(np.float32)}
        got = Executor(program).run(feeds)
        want = Executor(Program.from_graph(b.graph),
                        backend="interpreter").run(feeds)
        for name in want:
            assert got[name].tobytes() == want[name].tobytes()

    def test_broadcast_into_chain_fuses(self, rng):
        """bias_add broadcasts its bias *into* a link; the carried value
        keeps its shape, so the chain is legal."""
        b = GraphBuilder("bcast")
        x = b.input("x", (4, 6))
        bias = b.initializer("bias", np.arange(6, dtype=np.float32))
        h = b.emit("bias_add", [x, bias], {"axis": 1})
        h = b.emit("relu", [h])
        y = b.emit("reduce_sum", [h])
        b.mark_output(y)
        program = Program.from_graph(b.graph)
        spec = build_plan_spec(program, passes="default")
        chain = [i for i in spec.instructions if i.fused is not None]
        assert len(chain) == 1
        assert [link.kernel for link in chain[0].fused] \
            == ["bias_add", "relu"]
        feeds = {"x": rng.standard_normal((4, 6)).astype(np.float32)}
        got = Executor(program).run(feeds)
        want = Executor(Program.from_graph(b.graph),
                        backend="interpreter").run(feeds)
        out = program.outputs[0]
        assert got[out].tobytes() == want[out].tobytes()

    def test_shape_changing_intermediate_blocks_chain(self, rng):
        """A link whose carried value would change shape mid-chain (here
        (6,) -> broadcast to (4, 6)) must not fuse."""
        b = GraphBuilder("grow")
        x = b.input("x", (4, 6))
        v = b.input("v", (6,))
        s = b.emit("exp", [v])          # (6,)
        h = b.emit("add", [x, s])       # (4, 6): shape grows at this link
        y = b.emit("reduce_sum", [h])
        b.mark_output(y)
        program = Program.from_graph(b.graph)
        spec = build_plan_spec(program, passes="default")
        assert all(i.fused is None for i in spec.instructions)
        feeds = {"x": rng.standard_normal((4, 6)).astype(np.float32),
                 "v": rng.standard_normal(6).astype(np.float32)}
        got = Executor(program).run(feeds)
        want = Executor(Program.from_graph(b.graph),
                        backend="interpreter").run(feeds)
        for name in want:
            assert got[name].tobytes() == want[name].tobytes()

    def test_repeated_chain_value_fuses(self, rng):
        """mul(h, h) consumes the chain value twice — both occurrences in
        the sole next instruction, so the chain is legal."""
        b = GraphBuilder("square")
        x = b.input("x", (8, 8))
        h = b.emit("tanh", [x])
        m = b.emit("mul", [h, h])
        y = b.emit("reduce_sum", [m])
        b.mark_output(y)
        program = Program.from_graph(b.graph)
        spec = build_plan_spec(program, passes="default")
        chain = [i for i in spec.instructions if i.fused is not None]
        assert len(chain) == 1
        assert chain[0].fused[1].args == (None, None)
        feeds = {"x": rng.standard_normal((8, 8)).astype(np.float32)}
        ex = Executor(program)
        ex_int = Executor(Program.from_graph(b.graph),
                          backend="interpreter")
        for _ in range(3):
            got = ex.run(feeds)
            want = ex_int.run(feeds)
            for name in want:
                assert got[name].tobytes() == want[name].tobytes()


class TestDonationInterplay:
    def test_later_link_reader_blocks_donation(self, rng):
        """An input a *later* link still reads must never become the
        chain's output buffer — the first link's write would clobber it."""
        b = GraphBuilder("nodonate")
        x = b.input("x", (32, 32))
        t = b.emit("tanh", [x])         # materialised: two consumers below
        r = b.emit("relu", [t])
        m = b.emit("mul", [r, t])       # chain [relu, mul]; t read by mul
        y = b.emit("reduce_sum", [m])
        b.mark_output(y)
        program = Program.from_graph(b.graph)
        spec = build_plan_spec(program, passes="default")
        chain = [i for i in spec.instructions if i.fused is not None]
        assert len(chain) == 1
        assert [link.kernel for link in chain[0].fused] == ["relu", "mul"]
        # t dies at the fused instruction and matches the output's shape —
        # it would be donated if the safety rule did not block it.
        assert chain[0].donate_slot == -1
        ex = Executor(program)
        ex_int = Executor(Program.from_graph(b.graph),
                          backend="interpreter")
        feeds = {"x": rng.standard_normal((32, 32)).astype(np.float32)}
        for _ in range(4):
            got = ex.run(feeds)
            want = ex_int.run(feeds)
            for name in want:
                assert got[name].tobytes() == want[name].tobytes()

    def test_first_link_only_input_is_donated(self, rng):
        """A dying input read only by the first link is safe to donate:
        the chain writes over it exactly as an alias-safe out= would."""
        b = GraphBuilder("donate")
        x = b.input("x", (16, 16))
        w = b.initializer(
            "w", np.eye(16, dtype=np.float32), trainable=False)
        p = b.matmul(x, w)              # materialised, recyclable producer
        h = b.emit("relu", [p])
        h = b.emit("tanh", [h])
        y = b.emit("reduce_sum", [h])
        b.mark_output(y)
        program = Program.from_graph(b.graph)
        spec = build_plan_spec(program, passes="default")
        chain = [i for i in spec.instructions if i.fused is not None]
        assert len(chain) == 1
        assert chain[0].donate_slot >= 0
        ex = Executor(program)
        ex_int = Executor(Program.from_graph(b.graph),
                          backend="interpreter")
        feeds = {"x": rng.standard_normal((16, 16)).astype(np.float32)}
        for _ in range(4):
            got = ex.run(feeds)
            want = ex_int.run(feeds)
            for name in want:
                assert got[name].tobytes() == want[name].tobytes()


def _frozen_conv_program():
    """Training step whose 3x3 conv is frozen -> winograd + precompute."""
    from repro.frontend.keras_like import (Conv2D, Dense,
                                           GlobalAveragePooling2D,
                                           build_sequential)

    forward = build_sequential([
        Conv2D(8, 3, padding="same", activation="relu"),
        GlobalAveragePooling2D(),
        Dense(4),
    ], input_shape=(2, 3, 8, 8), seed=23)
    params = sorted(forward.trainable)
    scheme = UpdateScheme("tail", {params[-1]: 1.0, params[-2]: 1.0})
    return compile_training(forward, optimizer=SGD(0.1), scheme=scheme)


class TestPrecomputeFrozen:
    def test_transform_computed_once_per_session(self, rng):
        program = _frozen_conv_program()
        spec = program.plan_spec()
        assert len(spec.precomputed) == 1
        entry = spec.precomputed[0]
        ex = Executor(program)
        name = [n for n in program.graph.inputs
                if n != program.meta["labels"]][0]
        feeds = {name: rng.standard_normal((2, 3, 8, 8)).astype(np.float32),
                 program.meta["labels"]: np.array([0, 1], np.int64)}
        ex.run(feeds)
        first = ex._precomputed[entry.slot][1]
        assert first.shape == entry.shape
        ex.run(feeds)
        assert ex._precomputed[entry.slot][1] is first  # cached, not redone

    def test_overlayed_frozen_weights_recompute(self, rng):
        """A with_state overlay swapping the frozen weight must invalidate
        the cached transform (identity keying) — and the overlaid session
        must then match a from-scratch session bit for bit."""
        program = _frozen_conv_program()
        entry = program.plan_spec().precomputed[0]
        name = [n for n in program.graph.inputs
                if n != program.meta["labels"]][0]
        feeds = {name: rng.standard_normal((2, 3, 8, 8)).astype(np.float32),
                 program.meta["labels"]: np.array([0, 1], np.int64)}
        ex = Executor(program.with_state(
            {n: a.copy() for n, a in program.state.items()}))
        ex.run(feeds)
        first = ex._precomputed[entry.slot][1]
        new_w = rng.standard_normal(
            program.state[entry.state].shape).astype(np.float32)
        overlay = {n: a.copy() for n, a in program.state.items()}
        overlay[entry.state] = new_w
        ex.program = program.with_state(overlay)
        got = ex.run(feeds)[program.meta["loss"]]
        assert ex._precomputed[entry.slot][1] is not first
        fresh_overlay = {n: a.copy() for n, a in program.state.items()}
        fresh_overlay[entry.state] = new_w.copy()
        fresh = Executor(program.with_state(fresh_overlay))
        want = fresh.run(feeds)[program.meta["loss"]]
        assert got.tobytes() == want.tobytes()

    def test_precomputed_variant_in_required_kernels(self):
        program = _frozen_conv_program()
        spec = program.plan_spec()
        assert "winograd_precomputed" in spec.required_kernels()["conv2d"]
        assert spec.required_transforms() == {"winograd_weight"}


def _mcunet_sparse_program(**option_kwargs):
    from repro.models import build_model, paper_scheme

    forward = build_model("mcunet_micro", batch=2)
    options = CompileOptions(**option_kwargs) if option_kwargs else None
    return compile_training(forward, optimizer=SGD(0.05),
                            scheme=paper_scheme(forward), options=options)


class TestFoldScalarsStructure:
    def test_mcunet_folds_scalars_and_meets_instruction_budget(self):
        """The second-wave pipeline target: non-adjacent fusion plus
        constant folding push the MCUNet sparse step under 99
        instructions, with scalar hyperparameters spliced as const args
        instead of occupying slots."""
        spec = _mcunet_sparse_program().plan_spec()
        assert len(spec.instructions) < 99
        folded = sum(len(i.const_args) for i in spec.instructions)
        assert folded > 0
        const_names = {name for i in spec.instructions
                       for _, name in i.const_args}
        bound_names = {name for _, name in spec.state_bindings}
        # A folded-only scalar holds no slot; nothing is double-bound.
        assert not (const_names & bound_names)

    def test_non_adjacent_fusion_keeps_oracle_peak(self):
        """Deferred-consumer merges must stay byte-neutral: the default
        pipeline's peak transient never exceeds the unoptimized plan's."""
        tuned = _mcunet_sparse_program().plan_spec()
        oracle = build_plan_spec(_mcunet_sparse_program(), passes="none")
        assert tuned.peak_transient_bytes <= oracle.peak_transient_bytes


class TestAutotune:
    def test_cost_mode_is_deterministic(self):
        """Same program, same options -> byte-identical PlanSpec JSON,
        compile after compile (no wall-clock in the ranking)."""
        docs = []
        for _ in range(2):
            spec = _mcunet_sparse_program(autotune="cost").plan_spec()
            docs.append(json.dumps(spec.to_dict(), sort_keys=True))
        assert docs[0] == docs[1]
        spec = PlanSpec.from_dict(json.loads(docs[0]))
        assert spec.tuned_variants
        assert all(t.source == "cost" for t in spec.tuned_variants)
        assert all(t.predicted_us >= 0 for t in spec.tuned_variants)
        assert "autotune" in spec.passes

    def test_cost_mode_byte_exact_vs_oracle(self, rng):
        program = _mcunet_sparse_program(autotune="cost")
        oracle = _mcunet_sparse_program()
        name = [n for n in program.graph.inputs
                if n != program.meta["labels"]][0]
        feeds = {name: rng.standard_normal(
            program.graph.spec(name).shape).astype(np.float32),
                 program.meta["labels"]: np.array([1, 2], np.int64)}
        ex = Executor(program)
        ex_int = Executor(with_passes(oracle, "none"),
                          backend="interpreter")
        for _ in range(3):
            got = ex.run(feeds)
            want = ex_int.run(feeds)
            for key in want:
                assert got[key].tobytes() == want[key].tobytes()
        for key in ex_int.program.state:
            assert ex.program.state[key].tobytes() \
                == ex_int.program.state[key].tobytes()

    def test_measure_mode_byte_exact_and_caches_benchmarks(self, rng):
        from repro.runtime.passes.autotune import (clear_measure_cache,
                                                   measure_cache_stats)

        clear_measure_cache()
        program = _mcunet_sparse_program(autotune="measure")
        spec = program.plan_spec()
        assert spec.tuned_variants
        assert all(t.source == "measure" for t in spec.tuned_variants)
        assert all(t.measured_us is not None and t.measured_us >= 0
                   for t in spec.tuned_variants)
        entries = measure_cache_stats()["entries"]
        assert entries > 0
        # Repeat compile: every (op, variant, shapes, dtype) timing is
        # served from the cache — no new microbenchmarks run.
        _mcunet_sparse_program(autotune="measure").plan_spec()
        assert measure_cache_stats()["entries"] == entries

        name = [n for n in program.graph.inputs
                if n != program.meta["labels"]][0]
        feeds = {name: rng.standard_normal(
            program.graph.spec(name).shape).astype(np.float32),
                 program.meta["labels"]: np.array([0, 1], np.int64)}
        got = Executor(program).run(feeds)
        want = Executor(with_passes(_mcunet_sparse_program(), "none"),
                        backend="interpreter").run(feeds)
        for key in want:
            assert got[key].tobytes() == want[key].tobytes()

    def test_none_pipeline_is_never_tuned(self):
        """``passes="none"`` stays the untouched byte-exactness oracle
        even when the compile asks for autotuning."""
        program = _mcunet_sparse_program(autotune="cost",
                                         plan_passes="none")
        spec = program.plan_spec()
        assert spec.passes == ()
        assert spec.tuned_variants == ()
        assert spec.precomputed == ()
        assert all(i.fused is None and not i.const_args
                   for i in spec.instructions)

    def test_autotune_separates_program_keys(self):
        from repro.serve.keys import program_key
        from repro.models import build_model, paper_scheme

        forward = build_model("mcunet_micro", batch=2)
        base = dict(scheme=paper_scheme(forward), optimizer=SGD(0.05))
        k_plain = program_key(forward, options=CompileOptions(), **base)
        k_tuned = program_key(
            forward, options=CompileOptions(autotune="cost"), **base)
        k_device = program_key(
            forward, options=CompileOptions(autotune="cost",
                                            autotune_device="jetson_nano"),
            **base)
        assert len({k_plain, k_tuned, k_device}) == 3

    def test_tuned_variants_reach_manifest_and_probe(self, tmp_path):
        from repro.deploy import load_artifact, save_artifact

        program = _mcunet_sparse_program(autotune="cost")
        spec = program.plan_spec()
        save_artifact(program, tmp_path / "tuned")
        manifest = json.loads(
            (tmp_path / "tuned" / "manifest.json").read_text())
        assert manifest["tuned_variants"] \
            == {t.node: t.variant for t in spec.tuned_variants}
        deployed = load_artifact(tmp_path / "tuned")
        assert deployed.program.plan_spec().tuned_variants \
            == spec.tuned_variants


class TestPretransposedMatmul:
    def _trans_b_program(self, rng):
        b = GraphBuilder("transb")
        x = b.input("x", (4, 8))
        b.initializer("w", rng.standard_normal((16, 8)).astype(np.float32),
                      trainable=False)
        h = b.emit("matmul", ["x", "w"], {"trans_b": True})
        y = b.emit("reduce_sum", [h])
        b.mark_output(y)
        return Program.from_graph(b.graph)

    def test_frozen_trans_b_operand_is_pretransposed(self, rng):
        program = self._trans_b_program(rng)
        spec = build_plan_spec(program, passes=("precompute_frozen",))
        assert len(spec.precomputed) == 1
        assert spec.precomputed[0].transform == "transpose_last2"
        assert spec.precomputed[0].shape == (8, 16)
        assert "pretransposed_b" in spec.required_kernels()["matmul"]

    def test_pretransposed_runs_byte_identically(self, rng):
        program = self._trans_b_program(rng)
        feeds = {"x": rng.standard_normal((4, 8)).astype(np.float32)}
        ex = Executor(with_passes(program, ("precompute_frozen",)))
        ex_int = Executor(with_passes(program, "none"),
                          backend="interpreter")
        for _ in range(3):
            got = ex.run(feeds)
            want = ex_int.run(feeds)
            for name in want:
                assert got[name].tobytes() == want[name].tobytes()

    def test_cost_model_keeps_the_variant(self, rng):
        """The strided-GEMM penalty on base trans_b matmuls makes the
        pretransposed variant win the cost ranking."""
        program = self._trans_b_program(rng)
        spec = build_plan_spec(
            program, passes=("precompute_frozen", "autotune"))
        tuned = {t.node: t for t in spec.tuned_variants}
        assert len(tuned) == 1
        (entry,) = tuned.values()
        assert entry.kernel == "matmul"
        assert entry.variant == "pretransposed_b"


class TestSpecCompatAndConfig:
    def test_v1_spec_loads_through_shim(self, rng):
        b, _ = make_mlp_graph(seed=29)
        program = compile_training(b.graph, optimizer=SGD(0.1))
        doc = build_plan_spec(program, passes="none").to_dict()
        # Regress the document to what a v1 writer produced.
        doc["plan_version"] = 1
        del doc["passes"]
        del doc["precomputed"]
        del doc["precomputed_bytes"]
        for instr in doc["instructions"]:
            assert "fused" not in instr
        spec = PlanSpec.from_dict(json.loads(json.dumps(doc)))
        assert spec.passes == ()
        assert spec.precomputed == ()
        plan = bind_plan(spec, {n.name: n for n in program.schedule})
        clone = with_passes(program, "none")
        clone.attach_plan_spec(spec)
        clone.meta["__plan__"] = plan
        feeds = {"x": rng.standard_normal((4, 5)).astype(np.float32),
                 program.meta["labels"]: np.array([0, 1, 2, 0], np.int64)}
        got = Executor(clone).run(feeds)
        want = Executor(with_passes(program, "none"),
                        backend="interpreter").run(feeds)
        for name in want:
            assert got[name].tobytes() == want[name].tobytes()

    def test_v2_spec_loads_through_shim(self, rng):
        """A v2 writer keyed the arena on exact shapes and knew nothing
        of const_args or tuned_variants; the shim byte-buckets every key
        (merging caps that collapse onto one bucket) and the spec runs."""
        b, _ = make_mlp_graph(seed=31)
        program = compile_training(
            b.graph, optimizer=SGD(0.1),
            options=CompileOptions(
                plan_passes=("fuse_elementwise", "precompute_frozen")))
        v3 = program.plan_spec()
        doc = v3.to_dict()
        doc["plan_version"] = 2
        del doc["tuned_variants"]
        for instr in doc["instructions"]:
            assert "const_args" not in instr  # v2 pipeline: none folded

        def as_shape_key(key_doc):
            if key_doc is None:
                return None
            nbytes, dtype = key_doc
            itemsize = np.dtype(dtype).itemsize
            return [[nbytes // itemsize], dtype]  # flat exact-shape key

        doc["arena_caps"] = [[as_shape_key(key), count]
                             for key, count in doc["arena_caps"]]
        for instr in doc["instructions"]:
            instr["frees"] = [[slot, as_shape_key(key)]
                              for slot, key in instr["frees"]]
        spec = PlanSpec.from_dict(json.loads(json.dumps(doc)))
        assert spec.arena_caps == v3.arena_caps
        assert spec.instructions == v3.instructions
        assert spec.tuned_variants == ()

        clone = with_passes(program, "none")
        clone.attach_plan_spec(spec)
        clone.meta["__plan__"] = bind_plan(
            spec, {n.name: n for n in program.schedule})
        feeds = {"x": rng.standard_normal((4, 5)).astype(np.float32),
                 program.meta["labels"]: np.array([0, 1, 2, 0], np.int64)}
        got = Executor(clone).run(feeds)
        want = Executor(with_passes(program, "none"),
                        backend="interpreter").run(feeds)
        for name in want:
            assert got[name].tobytes() == want[name].tobytes()

    def test_v2_colliding_shape_keys_merge_caps(self):
        """Two exact-shape caps that bucket to the same byte size must
        merge by summing counts — reuse only ever widens."""
        b, _ = make_mlp_graph()
        program = compile_training(b.graph, optimizer=SGD(0.1))
        doc = build_plan_spec(program, passes="none").to_dict()
        doc["plan_version"] = 2
        doc.pop("tuned_variants", None)
        for instr in doc["instructions"]:
            instr["frees"] = [
                [slot, None if key is None
                 else [[key[0] // np.dtype(key[1]).itemsize], key[1]]]
                for slot, key in instr["frees"]]
        # (8, 2) float32 and (4, 4) float32 are both 64-byte buckets.
        doc["arena_caps"] = [[[[8, 2], "float32"], 2],
                             [[[4, 4], "float32"], 3]]
        spec = PlanSpec.from_dict(json.loads(json.dumps(doc)))
        assert dict(spec.arena_caps)[(64, np.dtype("float32"))] == 5

    def test_unsupported_version_raises_plan_version_error(self):
        b, _ = make_mlp_graph()
        doc = build_plan_spec(Program.from_graph(b.graph)).to_dict()
        doc["plan_version"] = 999
        with pytest.raises(PlanVersionError):
            PlanSpec.from_dict(doc)

    def test_unknown_pass_rejected(self):
        b, _ = make_mlp_graph()
        program = Program.from_graph(b.graph)
        with pytest.raises(ExecutionError, match="unknown"):
            build_plan_spec(program, passes=("bogus_pass",))
        with pytest.raises(ExecutionError, match="unknown"):
            build_plan_spec(program, passes="bogus")

    def test_resolve_passes_normalisation(self):
        assert resolve_passes(None) == DEFAULT_PASSES
        assert resolve_passes("default") == DEFAULT_PASSES
        assert resolve_passes("none") == ()
        assert resolve_passes(["fuse_elementwise"]) == ("fuse_elementwise",)

    def test_compile_options_plumb_passes(self):
        b, _ = make_mlp_graph()
        program = compile_training(
            b.graph, optimizer=SGD(0.1),
            options=CompileOptions(plan_passes="none"))
        assert program.plan_spec().passes == ()
        assert program.meta["plan_passes"] == "none"

    def test_pipeline_report_stages(self):
        b, _ = make_mlp_graph()
        program = compile_training(b.graph, optimizer=SGD(0.1))
        report: dict = {}
        run_pipeline(program, passes="default", report=report)
        stages = [s["stage"] for s in report["stages"]]
        assert stages == ["lower", "fuse_elementwise", "fold_scalars",
                          "precompute_frozen", "allocate"]
        counts = [s["instructions"] for s in report["stages"]]
        assert counts[-1] <= counts[0]

    def test_pass_config_separates_program_keys(self):
        from repro.serve.keys import program_key
        from repro.sparse import full_update

        b, _ = make_mlp_graph()
        scheme = full_update(b.graph)
        base = dict(scheme=scheme, optimizer=SGD(0.1))
        k_default = program_key(
            b.graph, options=CompileOptions(), **base)
        k_none = program_key(
            b.graph, options=CompileOptions(plan_passes="none"), **base)
        assert k_default != k_none


class TestArtifactRoundTripOptimized:
    def test_fused_and_precomputed_plan_survives_artifact(self, tmp_path,
                                                          rng):
        """MCUNet sparse — the paper workload — exercises both passes at
        once through a full save/load/execute cycle."""
        from repro.deploy import load_artifact, save_artifact
        from repro.models import build_model, paper_scheme

        forward = build_model("mcunet_micro", batch=2)
        program = compile_training(forward, optimizer=SGD(0.05),
                                   scheme=paper_scheme(forward))
        spec = program.plan_spec()
        assert spec.precomputed and any(
            i.fused is not None for i in spec.instructions)
        save_artifact(program, tmp_path / "model")
        manifest = json.loads(
            (tmp_path / "model" / "manifest.json").read_text())
        assert manifest["plan_passes"] == list(DEFAULT_PASSES)
        assert manifest["transforms"] == ["im2col_weight",
                                          "winograd_weight"]
        deployed = load_artifact(tmp_path / "model")
        assert deployed.program.plan_spec() == spec
        name = [n for n in program.graph.inputs
                if n != program.meta["labels"]][0]
        feeds = {name: rng.standard_normal(
            program.graph.spec(name).shape).astype(np.float32),
                 program.meta["labels"]: np.array([1, 2], np.int64)}
        ex_ref = Executor(program)
        ex_dep = Executor(deployed.program)
        for _ in range(3):
            want = ex_ref.run(feeds)
            got = ex_dep.run(dict(feeds))
            for key in want:
                assert want[key].tobytes() == got[key].tobytes()
        for key in program.state:
            assert program.state[key].tobytes() \
                == deployed.program.state[key].tobytes()
