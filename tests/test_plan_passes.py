"""Pass-pipeline equivalence suite (`repro.runtime.passes`).

Every optimization pass must be a pure lowering decision: byte-identical
outputs and mutable state against the interpreter (and against
``passes="none"``) for any program, under any on/off combination. On top
of that, the structural claims: fused chains really remove instructions
and slots, precomputed Winograd transforms really bind once per session,
donation never hands a fused chain a buffer a later link still reads, and
version-1 plan specs still load through the compat shim.
"""

from __future__ import annotations

from dataclasses import replace

import json

import numpy as np
import pytest

from repro.errors import ExecutionError, PlanVersionError
from repro.ir import GraphBuilder
from repro.runtime import Executor, PlanSpec, Program, bind_plan, \
    build_plan_spec
from repro.runtime.compiler import CompileOptions, compile_training
from repro.runtime.passes import DEFAULT_PASSES, resolve_passes, run_pipeline
from repro.sparse import LoRAConfig, UpdateScheme, inject_lora, lora_scheme
from repro.train import SGD

from conftest import make_mlp_graph

PASS_CONFIGS = ["none", "default",
                ("fuse_elementwise",), ("precompute_frozen",)]


def with_passes(program, passes):
    """An independent lowering of ``program`` under a pass config.

    Shares graph/schedule, gets private state and a private meta (so the
    cached plan of one config never leaks into another).
    """
    meta = {k: v for k, v in program.meta.items()
            if k not in ("__plan__", "__plan_spec__")}
    meta["plan_passes"] = passes
    return replace(program, meta=meta,
                   state={n: a.copy() for n, a in program.state.items()})


def assert_all_configs_equivalent(program, feeds_fn, steps=3):
    """Each pass config must match the interpreter byte-for-byte."""
    ex_int = Executor(with_passes(program, "none"), backend="interpreter")
    runners = {cfg: Executor(with_passes(program, cfg))
               for cfg in PASS_CONFIGS}
    for step in range(steps):
        feeds = feeds_fn(step)
        want = ex_int.run(feeds)
        for cfg, ex in runners.items():
            got = ex.run(feeds)
            assert set(got) == set(want)
            for name in want:
                assert got[name].tobytes() == want[name].tobytes(), \
                    f"passes={cfg} output {name} step {step}"
            for name in ex_int.program.state:
                assert ex.program.state[name].tobytes() \
                    == ex_int.program.state[name].tobytes(), \
                    f"passes={cfg} state {name} step {step}"
            assert ex.last_transient_bytes == ex_int.last_transient_bytes
            assert ex.peak_transient_bytes <= ex_int.peak_transient_bytes
    return runners


class TestEquivalenceMatrix:
    def test_mlp_training(self, rng):
        b, _ = make_mlp_graph(seed=11)
        program = compile_training(b.graph, optimizer=SGD(0.2))
        x = rng.standard_normal((4, 5)).astype(np.float32)
        y = np.array([0, 1, 2, 0], np.int64)
        assert_all_configs_equivalent(
            program, lambda step: {"x": x, "labels": y}, steps=4)

    def test_cnn_sparse_training_with_frozen_winograd(self, rng):
        from repro.frontend.keras_like import (Conv2D, Dense,
                                               GlobalAveragePooling2D,
                                               build_sequential)

        forward = build_sequential([
            Conv2D(8, 3, padding="same", activation="relu"),
            GlobalAveragePooling2D(),
            Dense(4),
        ], input_shape=(2, 3, 8, 8), seed=13)
        params = sorted(forward.trainable)
        # Train only the dense tail: the 3x3 conv freezes -> winograd.
        scheme = UpdateScheme("tail", {params[-1]: 1.0, params[-2]: 1.0})
        program = compile_training(forward, optimizer=SGD(0.1),
                                   scheme=scheme)
        assert any(n.attrs.get("algo") == "winograd"
                   for n in program.schedule), "fixture lost its winograd"
        x = rng.standard_normal((2, 3, 8, 8)).astype(np.float32)
        y = np.array([0, 3], np.int64)
        labels = program.meta["labels"]
        runners = assert_all_configs_equivalent(
            program, lambda step: {forward.inputs[0]: x, labels: y})
        spec = runners["default"].program.plan_spec()
        assert len(spec.precomputed) == 1
        assert spec.precomputed[0].transform == "winograd_weight"
        assert spec.precomputed_bytes > 0

    def test_int8_inference(self, rng):
        from repro.frontend.keras_like import (Conv2D, Dense,
                                               GlobalAveragePooling2D,
                                               build_sequential)
        from repro.quant import collect_ranges, quantize_inference_graph

        forward = build_sequential([
            Conv2D(6, 3, padding="same", activation="relu"),
            GlobalAveragePooling2D(),
            Dense(4),
        ], input_shape=(2, 3, 8, 8), seed=17)
        calib = [{forward.inputs[0]:
                  rng.standard_normal((2, 3, 8, 8)).astype(np.float32)}
                 for _ in range(2)]
        int8 = quantize_inference_graph(forward,
                                        collect_ranges(forward, calib))
        program = Program.from_graph(int8)
        assert_all_configs_equivalent(program, lambda step: calib[0],
                                      steps=2)

    def test_lora_training(self, rng):
        from repro.models import build_model

        base = build_model("bert_micro", batch=2, seq_len=8, num_classes=2)
        lora = inject_lora(base, LoRAConfig(rank=2))
        program = compile_training(lora, optimizer=SGD(0.1),
                                   scheme=lora_scheme(lora))
        ids = rng.integers(0, 50, base.spec(base.inputs[0]).shape)
        feeds = {base.inputs[0]: ids.astype(np.int64),
                 program.meta["labels"]:
                 rng.integers(0, 2, 2).astype(np.int64)}
        assert_all_configs_equivalent(program, lambda step: feeds, steps=2)


class TestFusionStructure:
    def _chain_program(self):
        b = GraphBuilder("chain")
        x = b.input("x", (16, 16))
        h = b.emit("relu", [x])
        h = b.emit("tanh", [h])
        h = b.emit("sigmoid", [h])
        y = b.emit("reduce_sum", [h])
        b.mark_output(y)
        return Program.from_graph(b.graph)

    def test_chain_collapses_instructions_and_slots(self):
        program = self._chain_program()
        fused = build_plan_spec(program, passes="default")
        none = build_plan_spec(program, passes="none")
        assert len(fused.instructions) < len(none.instructions)
        assert fused.num_slots < none.num_slots
        chain = [i for i in fused.instructions if i.fused is not None]
        assert len(chain) == 1
        assert [link.kernel for link in chain[0].fused] \
            == ["relu", "tanh", "sigmoid"]
        assert fused.passes == DEFAULT_PASSES
        assert none.passes == ()

    def test_fused_chain_runs_byte_identically(self, rng):
        program = self._chain_program()
        feeds = {"x": rng.standard_normal((16, 16)).astype(np.float32)}
        ex = Executor(with_passes(program, "default"))
        ex_int = Executor(with_passes(program, "none"),
                          backend="interpreter")
        for _ in range(4):  # recycled buffers carry garbage across steps
            got = ex.run(feeds)
            want = ex_int.run(feeds)
            for name in want:
                assert got[name].tobytes() == want[name].tobytes()

    def test_output_values_never_fused_away(self, rng):
        """A chain intermediate marked as a program output must
        materialise, capping the chain."""
        b = GraphBuilder("keepmid")
        x = b.input("x", (8, 8))
        h1 = b.emit("relu", [x])
        h2 = b.emit("tanh", [h1])
        b.mark_output(h1)
        b.mark_output(h2)
        program = Program.from_graph(b.graph)
        spec = build_plan_spec(program, passes="default")
        assert all(i.fused is None for i in spec.instructions)
        feeds = {"x": rng.standard_normal((8, 8)).astype(np.float32)}
        got = Executor(program).run(feeds)
        want = Executor(Program.from_graph(b.graph),
                        backend="interpreter").run(feeds)
        for name in want:
            assert got[name].tobytes() == want[name].tobytes()

    def test_broadcast_into_chain_fuses(self, rng):
        """bias_add broadcasts its bias *into* a link; the carried value
        keeps its shape, so the chain is legal."""
        b = GraphBuilder("bcast")
        x = b.input("x", (4, 6))
        bias = b.initializer("bias", np.arange(6, dtype=np.float32))
        h = b.emit("bias_add", [x, bias], {"axis": 1})
        h = b.emit("relu", [h])
        y = b.emit("reduce_sum", [h])
        b.mark_output(y)
        program = Program.from_graph(b.graph)
        spec = build_plan_spec(program, passes="default")
        chain = [i for i in spec.instructions if i.fused is not None]
        assert len(chain) == 1
        assert [link.kernel for link in chain[0].fused] \
            == ["bias_add", "relu"]
        feeds = {"x": rng.standard_normal((4, 6)).astype(np.float32)}
        got = Executor(program).run(feeds)
        want = Executor(Program.from_graph(b.graph),
                        backend="interpreter").run(feeds)
        out = program.outputs[0]
        assert got[out].tobytes() == want[out].tobytes()

    def test_shape_changing_intermediate_blocks_chain(self, rng):
        """A link whose carried value would change shape mid-chain (here
        (6,) -> broadcast to (4, 6)) must not fuse."""
        b = GraphBuilder("grow")
        x = b.input("x", (4, 6))
        v = b.input("v", (6,))
        s = b.emit("exp", [v])          # (6,)
        h = b.emit("add", [x, s])       # (4, 6): shape grows at this link
        y = b.emit("reduce_sum", [h])
        b.mark_output(y)
        program = Program.from_graph(b.graph)
        spec = build_plan_spec(program, passes="default")
        assert all(i.fused is None for i in spec.instructions)
        feeds = {"x": rng.standard_normal((4, 6)).astype(np.float32),
                 "v": rng.standard_normal(6).astype(np.float32)}
        got = Executor(program).run(feeds)
        want = Executor(Program.from_graph(b.graph),
                        backend="interpreter").run(feeds)
        for name in want:
            assert got[name].tobytes() == want[name].tobytes()

    def test_repeated_chain_value_fuses(self, rng):
        """mul(h, h) consumes the chain value twice — both occurrences in
        the sole next instruction, so the chain is legal."""
        b = GraphBuilder("square")
        x = b.input("x", (8, 8))
        h = b.emit("tanh", [x])
        m = b.emit("mul", [h, h])
        y = b.emit("reduce_sum", [m])
        b.mark_output(y)
        program = Program.from_graph(b.graph)
        spec = build_plan_spec(program, passes="default")
        chain = [i for i in spec.instructions if i.fused is not None]
        assert len(chain) == 1
        assert chain[0].fused[1].args == (None, None)
        feeds = {"x": rng.standard_normal((8, 8)).astype(np.float32)}
        ex = Executor(program)
        ex_int = Executor(Program.from_graph(b.graph),
                          backend="interpreter")
        for _ in range(3):
            got = ex.run(feeds)
            want = ex_int.run(feeds)
            for name in want:
                assert got[name].tobytes() == want[name].tobytes()


class TestDonationInterplay:
    def test_later_link_reader_blocks_donation(self, rng):
        """An input a *later* link still reads must never become the
        chain's output buffer — the first link's write would clobber it."""
        b = GraphBuilder("nodonate")
        x = b.input("x", (32, 32))
        t = b.emit("tanh", [x])         # materialised: two consumers below
        r = b.emit("relu", [t])
        m = b.emit("mul", [r, t])       # chain [relu, mul]; t read by mul
        y = b.emit("reduce_sum", [m])
        b.mark_output(y)
        program = Program.from_graph(b.graph)
        spec = build_plan_spec(program, passes="default")
        chain = [i for i in spec.instructions if i.fused is not None]
        assert len(chain) == 1
        assert [link.kernel for link in chain[0].fused] == ["relu", "mul"]
        # t dies at the fused instruction and matches the output's shape —
        # it would be donated if the safety rule did not block it.
        assert chain[0].donate_slot == -1
        ex = Executor(program)
        ex_int = Executor(Program.from_graph(b.graph),
                          backend="interpreter")
        feeds = {"x": rng.standard_normal((32, 32)).astype(np.float32)}
        for _ in range(4):
            got = ex.run(feeds)
            want = ex_int.run(feeds)
            for name in want:
                assert got[name].tobytes() == want[name].tobytes()

    def test_first_link_only_input_is_donated(self, rng):
        """A dying input read only by the first link is safe to donate:
        the chain writes over it exactly as an alias-safe out= would."""
        b = GraphBuilder("donate")
        x = b.input("x", (16, 16))
        w = b.initializer(
            "w", np.eye(16, dtype=np.float32), trainable=False)
        p = b.matmul(x, w)              # materialised, recyclable producer
        h = b.emit("relu", [p])
        h = b.emit("tanh", [h])
        y = b.emit("reduce_sum", [h])
        b.mark_output(y)
        program = Program.from_graph(b.graph)
        spec = build_plan_spec(program, passes="default")
        chain = [i for i in spec.instructions if i.fused is not None]
        assert len(chain) == 1
        assert chain[0].donate_slot >= 0
        ex = Executor(program)
        ex_int = Executor(Program.from_graph(b.graph),
                          backend="interpreter")
        feeds = {"x": rng.standard_normal((16, 16)).astype(np.float32)}
        for _ in range(4):
            got = ex.run(feeds)
            want = ex_int.run(feeds)
            for name in want:
                assert got[name].tobytes() == want[name].tobytes()


def _frozen_conv_program():
    """Training step whose 3x3 conv is frozen -> winograd + precompute."""
    from repro.frontend.keras_like import (Conv2D, Dense,
                                           GlobalAveragePooling2D,
                                           build_sequential)

    forward = build_sequential([
        Conv2D(8, 3, padding="same", activation="relu"),
        GlobalAveragePooling2D(),
        Dense(4),
    ], input_shape=(2, 3, 8, 8), seed=23)
    params = sorted(forward.trainable)
    scheme = UpdateScheme("tail", {params[-1]: 1.0, params[-2]: 1.0})
    return compile_training(forward, optimizer=SGD(0.1), scheme=scheme)


class TestPrecomputeFrozen:
    def test_transform_computed_once_per_session(self, rng):
        program = _frozen_conv_program()
        spec = program.plan_spec()
        assert len(spec.precomputed) == 1
        entry = spec.precomputed[0]
        ex = Executor(program)
        name = [n for n in program.graph.inputs
                if n != program.meta["labels"]][0]
        feeds = {name: rng.standard_normal((2, 3, 8, 8)).astype(np.float32),
                 program.meta["labels"]: np.array([0, 1], np.int64)}
        ex.run(feeds)
        first = ex._precomputed[entry.slot][1]
        assert first.shape == entry.shape
        ex.run(feeds)
        assert ex._precomputed[entry.slot][1] is first  # cached, not redone

    def test_overlayed_frozen_weights_recompute(self, rng):
        """A with_state overlay swapping the frozen weight must invalidate
        the cached transform (identity keying) — and the overlaid session
        must then match a from-scratch session bit for bit."""
        program = _frozen_conv_program()
        entry = program.plan_spec().precomputed[0]
        name = [n for n in program.graph.inputs
                if n != program.meta["labels"]][0]
        feeds = {name: rng.standard_normal((2, 3, 8, 8)).astype(np.float32),
                 program.meta["labels"]: np.array([0, 1], np.int64)}
        ex = Executor(program.with_state(
            {n: a.copy() for n, a in program.state.items()}))
        ex.run(feeds)
        first = ex._precomputed[entry.slot][1]
        new_w = rng.standard_normal(
            program.state[entry.state].shape).astype(np.float32)
        overlay = {n: a.copy() for n, a in program.state.items()}
        overlay[entry.state] = new_w
        ex.program = program.with_state(overlay)
        got = ex.run(feeds)[program.meta["loss"]]
        assert ex._precomputed[entry.slot][1] is not first
        fresh_overlay = {n: a.copy() for n, a in program.state.items()}
        fresh_overlay[entry.state] = new_w.copy()
        fresh = Executor(program.with_state(fresh_overlay))
        want = fresh.run(feeds)[program.meta["loss"]]
        assert got.tobytes() == want.tobytes()

    def test_precomputed_variant_in_required_kernels(self):
        program = _frozen_conv_program()
        spec = program.plan_spec()
        assert "winograd_precomputed" in spec.required_kernels()["conv2d"]
        assert spec.required_transforms() == {"winograd_weight"}


class TestSpecCompatAndConfig:
    def test_v1_spec_loads_through_shim(self, rng):
        b, _ = make_mlp_graph(seed=29)
        program = compile_training(b.graph, optimizer=SGD(0.1))
        doc = build_plan_spec(program, passes="none").to_dict()
        # Regress the document to what a v1 writer produced.
        doc["plan_version"] = 1
        del doc["passes"]
        del doc["precomputed"]
        del doc["precomputed_bytes"]
        for instr in doc["instructions"]:
            assert "fused" not in instr
        spec = PlanSpec.from_dict(json.loads(json.dumps(doc)))
        assert spec.passes == ()
        assert spec.precomputed == ()
        plan = bind_plan(spec, {n.name: n for n in program.schedule})
        clone = with_passes(program, "none")
        clone.attach_plan_spec(spec)
        clone.meta["__plan__"] = plan
        feeds = {"x": rng.standard_normal((4, 5)).astype(np.float32),
                 program.meta["labels"]: np.array([0, 1, 2, 0], np.int64)}
        got = Executor(clone).run(feeds)
        want = Executor(with_passes(program, "none"),
                        backend="interpreter").run(feeds)
        for name in want:
            assert got[name].tobytes() == want[name].tobytes()

    def test_unsupported_version_raises_plan_version_error(self):
        b, _ = make_mlp_graph()
        doc = build_plan_spec(Program.from_graph(b.graph)).to_dict()
        doc["plan_version"] = 999
        with pytest.raises(PlanVersionError):
            PlanSpec.from_dict(doc)

    def test_unknown_pass_rejected(self):
        b, _ = make_mlp_graph()
        program = Program.from_graph(b.graph)
        with pytest.raises(ExecutionError, match="unknown"):
            build_plan_spec(program, passes=("bogus_pass",))
        with pytest.raises(ExecutionError, match="unknown"):
            build_plan_spec(program, passes="bogus")

    def test_resolve_passes_normalisation(self):
        assert resolve_passes(None) == DEFAULT_PASSES
        assert resolve_passes("default") == DEFAULT_PASSES
        assert resolve_passes("none") == ()
        assert resolve_passes(["fuse_elementwise"]) == ("fuse_elementwise",)

    def test_compile_options_plumb_passes(self):
        b, _ = make_mlp_graph()
        program = compile_training(
            b.graph, optimizer=SGD(0.1),
            options=CompileOptions(plan_passes="none"))
        assert program.plan_spec().passes == ()
        assert program.meta["plan_passes"] == "none"

    def test_pipeline_report_stages(self):
        b, _ = make_mlp_graph()
        program = compile_training(b.graph, optimizer=SGD(0.1))
        report: dict = {}
        run_pipeline(program, passes="default", report=report)
        stages = [s["stage"] for s in report["stages"]]
        assert stages == ["lower", "fuse_elementwise",
                          "precompute_frozen", "allocate"]
        counts = [s["instructions"] for s in report["stages"]]
        assert counts[-1] <= counts[0]

    def test_pass_config_separates_program_keys(self):
        from repro.serve.keys import program_key
        from repro.sparse import full_update

        b, _ = make_mlp_graph()
        scheme = full_update(b.graph)
        base = dict(scheme=scheme, optimizer=SGD(0.1))
        k_default = program_key(
            b.graph, options=CompileOptions(), **base)
        k_none = program_key(
            b.graph, options=CompileOptions(plan_passes="none"), **base)
        assert k_default != k_none


class TestArtifactRoundTripOptimized:
    def test_fused_and_precomputed_plan_survives_artifact(self, tmp_path,
                                                          rng):
        """MCUNet sparse — the paper workload — exercises both passes at
        once through a full save/load/execute cycle."""
        from repro.deploy import load_artifact, save_artifact
        from repro.models import build_model, paper_scheme

        forward = build_model("mcunet_micro", batch=2)
        program = compile_training(forward, optimizer=SGD(0.05),
                                   scheme=paper_scheme(forward))
        spec = program.plan_spec()
        assert spec.precomputed and any(
            i.fused is not None for i in spec.instructions)
        save_artifact(program, tmp_path / "model")
        manifest = json.loads(
            (tmp_path / "model" / "manifest.json").read_text())
        assert manifest["plan_passes"] == list(DEFAULT_PASSES)
        assert manifest["transforms"] == ["winograd_weight"]
        deployed = load_artifact(tmp_path / "model")
        assert deployed.program.plan_spec() == spec
        name = [n for n in program.graph.inputs
                if n != program.meta["labels"]][0]
        feeds = {name: rng.standard_normal(
            program.graph.spec(name).shape).astype(np.float32),
                 program.meta["labels"]: np.array([1, 2], np.int64)}
        ex_ref = Executor(program)
        ex_dep = Executor(deployed.program)
        for _ in range(3):
            want = ex_ref.run(feeds)
            got = ex_dep.run(dict(feeds))
            for key in want:
                assert want[key].tobytes() == got[key].tobytes()
        for key in program.state:
            assert program.state[key].tobytes() \
                == deployed.program.state[key].tobytes()
