"""Durability tests: checkpoint/restore, idempotent replay, deadlines,
fault injection, and corrupt-artifact quarantine.

The crash-safety invariants under test:

* a checkpoint write killed mid-flight leaves the previous version
  byte-identically intact (atomic temp-file + rename);
* a restored session's next step is bit-for-bit equal to the same step
  on the uninterrupted session (restore loses nothing);
* a retried step carrying the same idempotency key returns the recorded
  result without a second optimizer update (no double-apply);
* expired-deadline work is shed, never executed.
"""

from __future__ import annotations

import threading
import time
from contextlib import contextmanager

import numpy as np
import pytest

from repro.errors import (CheckpointError, DeadlineExpired, FaultInjected,
                          ServeError)
from repro.serve import (FAULTS, CheckpointStore, FineTuneService,
                         GatewayError, GatewayServer, ResponseLost,
                         ServeClient, SessionCheckpoint, dump_checkpoint,
                         load_checkpoint, read_checkpoint, write_checkpoint)
from repro.serve.faults import FaultRegistry

from conftest import make_mlp_graph


def build_mlp(batch: int):
    return make_mlp_graph(batch=batch, din=5, dhidden=6, dout=3,
                          seed=0)[0].graph


def mlp_example(rng):
    return (rng.standard_normal(5).astype(np.float32),
            int(rng.integers(0, 3)))


@pytest.fixture(autouse=True)
def _disarm_faults():
    yield
    FAULTS.disarm()


def sample_ckpt(step_seq=3, session_id="sess-0000"):
    rng = np.random.default_rng(7)
    return SessionCheckpoint(
        session={"id": session_id, "tenant": "t0", "step_seq": step_seq,
                 "steps": step_seq, "examples": step_seq * 2,
                 "last_loss": 0.5},
        family={"model": "mcunet_micro", "model_id": "mcunet_micro",
                "model_kwargs": {}, "scheme": {"name": "s", "updates": {}},
                "optimizer": {"family": "sgd", "params": {"lr": 0.01}},
                "loss": "softmax_ce", "logits": None},
        state={"w": rng.standard_normal((4, 3)).astype(np.float32),
               "b": rng.standard_normal(3).astype(np.float32)},
        idempotency={"key-1": {"session_id": session_id, "loss": 0.5,
                               "step": step_seq, "batch_size": 1,
                               "program_key": "k", "timings": None,
                               "replayed": False}},
    )


def stall_scheduler(service):
    release = threading.Event()
    original = service.scheduler._run_batch

    def stalled(session, batch):
        assert release.wait(timeout=30)
        return original(session, batch)

    service.scheduler._run_batch = stalled
    return release


# ---------------------------------------------------------------------------
# checkpoint file format
# ---------------------------------------------------------------------------

class TestCheckpointFormat:

    def test_roundtrip_is_exact(self):
        ckpt = sample_ckpt()
        back = load_checkpoint(dump_checkpoint(ckpt))
        assert back.session == ckpt.session
        assert back.family == ckpt.family
        assert back.idempotency == ckpt.idempotency
        assert set(back.state) == set(ckpt.state)
        for name in ckpt.state:
            assert back.state[name].dtype == ckpt.state[name].dtype
            assert np.array_equal(back.state[name], ckpt.state[name])

    def test_any_flipped_byte_is_detected(self):
        data = dump_checkpoint(sample_ckpt())
        # sample positions across header, payload, and digest
        for pos in (0, 9, len(data) // 2, len(data) - 1):
            bad = bytearray(data)
            bad[pos] ^= 0xFF
            with pytest.raises(CheckpointError):
                load_checkpoint(bytes(bad))

    def test_truncation_is_detected(self):
        data = dump_checkpoint(sample_ckpt())
        for cut in (4, 20, len(data) - 1):
            with pytest.raises(CheckpointError):
                load_checkpoint(data[:cut])

    def test_not_a_checkpoint(self):
        with pytest.raises(CheckpointError, match="magic"):
            load_checkpoint(b"x" * 100)

    def test_unsupported_version(self):
        import json as json_mod
        import struct

        from repro.serve.checkpoint import _DIGEST, MAGIC
        header = json_mod.dumps({"version": 99, "session": {},
                                 "family": {}, "tensors": []}).encode()
        body = MAGIC + struct.pack(">Q", len(header)) + header
        data = body + _DIGEST(body).digest()
        with pytest.raises(CheckpointError, match="version"):
            load_checkpoint(data)

    def test_write_read_file(self, tmp_path):
        path = tmp_path / "a.ckpt"
        write_checkpoint(path, sample_ckpt())
        assert read_checkpoint(path).step_seq == 3
        with pytest.raises(CheckpointError, match="cannot read"):
            read_checkpoint(tmp_path / "missing.ckpt")


class TestCheckpointWireForm:
    """The transport form: a checkpoint as one serve.wire frame."""

    def test_wire_roundtrip_is_exact(self):
        from repro.serve import wire
        from repro.serve.checkpoint import (checkpoint_from_wire,
                                            checkpoint_to_wire)

        ckpt = sample_ckpt()
        frame = checkpoint_to_wire(ckpt)
        assert frame.startswith(wire.MAGIC)
        back = checkpoint_from_wire(frame)
        assert back.session == ckpt.session
        assert back.family == ckpt.family
        assert back.idempotency == ckpt.idempotency
        assert set(back.state) == set(ckpt.state)
        for name in ckpt.state:
            assert back.state[name].dtype == ckpt.state[name].dtype
            assert np.array_equal(back.state[name], ckpt.state[name])
            # copy=True decode: the checkpoint outlives the request body
            assert back.state[name].flags.writeable

    def test_wire_form_matches_ckpt_form_values(self):
        from repro.serve.checkpoint import checkpoint_from_wire, \
            checkpoint_to_wire

        ckpt = sample_ckpt()
        via_wire = checkpoint_from_wire(checkpoint_to_wire(ckpt))
        via_ckpt = load_checkpoint(dump_checkpoint(ckpt))
        assert via_wire.session == via_ckpt.session
        for name in via_ckpt.state:
            assert via_wire.state[name].tobytes() \
                == via_ckpt.state[name].tobytes()

    def test_damaged_wire_frame_is_checkpoint_error(self):
        from repro.serve.checkpoint import checkpoint_from_wire, \
            checkpoint_to_wire

        frame = checkpoint_to_wire(sample_ckpt())
        with pytest.raises(CheckpointError):
            checkpoint_from_wire(frame[: len(frame) // 2])
        with pytest.raises(CheckpointError, match="magic|wire"):
            checkpoint_from_wire(b"x" * 64)

    def test_step_frame_is_not_a_checkpoint(self):
        """A valid wire frame that is not a checkpoint must be refused —
        the restore route dispatches on the same magic."""
        from repro.serve import wire
        from repro.serve.checkpoint import checkpoint_from_wire

        frame = wire.encode_frame(
            {"kind": "step"}, {"x": np.zeros(3, np.float32)})
        with pytest.raises(CheckpointError, match="kind"):
            checkpoint_from_wire(frame)

    def test_wrong_version_is_refused(self):
        from repro.serve import wire
        from repro.serve.checkpoint import checkpoint_from_wire

        frame = wire.encode_frame(
            {"kind": "checkpoint", "checkpoint_version": 99,
             "session": {}, "family": {}}, {})
        with pytest.raises(CheckpointError, match="version"):
            checkpoint_from_wire(frame)


# ---------------------------------------------------------------------------
# checkpoint store: versioning, pruning, quarantine, atomicity
# ---------------------------------------------------------------------------

class TestCheckpointStore:

    def test_versions_retained_and_pruned(self, tmp_path):
        store = CheckpointStore(tmp_path, keep=2)
        for seq in (1, 2, 3):
            store.save(sample_ckpt(step_seq=seq))
        assert store.versions("sess-0000") == [2, 3]
        assert store.load("sess-0000").step_seq == 3
        assert store.load("sess-0000", version=2).step_seq == 2
        assert store.session_ids() == ["sess-0000"]

    def test_corrupt_newest_falls_back_and_quarantines(self, tmp_path):
        store = CheckpointStore(tmp_path, keep=3)
        store.save(sample_ckpt(step_seq=1))
        store.save(sample_ckpt(step_seq=2))
        newest = store.path_for("sess-0000", 2)
        newest.write_bytes(newest.read_bytes()[:-10])  # torn write
        loaded = store.load("sess-0000")
        assert loaded.step_seq == 1
        assert store.corrupt == 1
        assert not newest.exists()
        assert newest.with_suffix(".corrupt").exists()

    def test_all_corrupt_raises(self, tmp_path):
        store = CheckpointStore(tmp_path)
        store.save(sample_ckpt(step_seq=1))
        store.path_for("sess-0000", 1).write_bytes(b"garbage")
        with pytest.raises(CheckpointError, match="corrupt"):
            store.load("sess-0000")
        with pytest.raises(CheckpointError, match="no checkpoint"):
            store.load("never-seen")

    def test_kill_mid_write_leaves_previous_version_intact(self, tmp_path):
        """The tentpole atomicity guarantee: a failure between the header
        and the payload hitting disk never tears the previous version."""
        store = CheckpointStore(tmp_path, keep=3)
        store.save(sample_ckpt(step_seq=1))
        before = store.path_for("sess-0000", 1).read_bytes()

        FAULTS.arm("checkpoint.write", times=1)
        with pytest.raises(FaultInjected):
            store.save(sample_ckpt(step_seq=2))

        assert store.versions("sess-0000") == [1]
        assert store.path_for("sess-0000", 1).read_bytes() == before
        # no stray temp files either — the failed write cleaned up
        assert not list(tmp_path.glob("**/.tmp-*"))
        # and the next save (process restarted, fault gone) succeeds
        store.save(sample_ckpt(step_seq=2))
        assert store.load("sess-0000").step_seq == 2


# ---------------------------------------------------------------------------
# fault registry
# ---------------------------------------------------------------------------

class TestFaultRegistry:

    def test_unknown_point_or_action_rejected(self):
        reg = FaultRegistry()
        with pytest.raises(ValueError, match="unknown fault point"):
            reg.arm("no.such.point")
        with pytest.raises(ValueError, match="unknown fault action"):
            reg.arm("disk.slow", action="explode")

    def test_times_skip_and_disarm(self):
        reg = FaultRegistry()
        reg.arm("disk.slow", times=2, skip=1)
        assert not reg.fire("disk.slow")          # skipped
        with pytest.raises(FaultInjected):
            reg.fire("disk.slow")
        with pytest.raises(FaultInjected):
            reg.fire("disk.slow")
        assert not reg.fire("disk.slow")          # times exhausted
        assert reg.fired("disk.slow") == 2
        reg.arm("disk.slow", times=1)
        reg.disarm("disk.slow")
        assert not reg.fire("disk.slow")

    def test_exc_none_is_a_pure_side_effect(self):
        reg = FaultRegistry()
        seen = {}
        reg.arm("disk.slow", exc=None, handler=lambda **ctx: seen.update(ctx))
        assert reg.fire("disk.slow", path="p")
        assert seen == {"path": "p"}

    def test_load_env(self):
        reg = FaultRegistry()
        reg.load_env({"REPRO_FAULTS":
                      '{"disk.slow": {"times": 2, "skip": 1}}'})
        assert not reg.fire("disk.slow")
        with pytest.raises(FaultInjected):
            reg.fire("disk.slow")
        reg2 = FaultRegistry()
        reg2.load_env({})                          # unset: no-op
        assert not reg2.fire("disk.slow")


# ---------------------------------------------------------------------------
# service-level checkpoint / restore
# ---------------------------------------------------------------------------

@contextmanager
def mlp_service(tmp_path=None, **kwargs):
    kwargs.setdefault("max_batch", 1)
    kwargs.setdefault("workers", 1)
    if tmp_path is not None:
        kwargs.setdefault("checkpoint_dir", tmp_path)
    service = FineTuneService(**kwargs)
    try:
        yield service
    finally:
        service.close()


class TestServiceCheckpointRestore:

    def _drive(self, service, session, steps, seed=3):
        rng = np.random.default_rng(seed)
        for _ in range(steps):
            service.step(session.id, *mlp_example(rng))
        return rng

    def test_checkpoint_requires_store(self):
        with mlp_service() as service:
            session = service.create_session(build_mlp, model_id="mlp",
                                             scheme="full")
            with pytest.raises(ServeError, match="checkpoint_dir"):
                service.checkpoint_session(session.id)
            # bytes download works without a store
            assert service.checkpoint_bytes(session.id)[:8] == b"RPCKPT1\n"

    def test_restore_is_byte_identical_and_deterministic(self, tmp_path):
        """Restored state must equal the checkpointed state exactly, and
        the restored session's next step must be bit-for-bit equal to the
        uninterrupted session's."""
        with mlp_service(tmp_path) as service:
            session = service.create_session(build_mlp, model_id="mlp",
                                             scheme="full")
            rng = self._drive(service, session, 3)
            service.checkpoint_session(session.id)
            frozen = {k: v.copy() for k, v in session.state.items()}
            counters = (session.step_seq, session.steps, session.examples)
            # the uninterrupted continuation
            x, y = mlp_example(rng)
            uninterrupted = service.step(session.id, x, y)
            after = {k: v.copy() for k, v in session.state.items()}

        with mlp_service(tmp_path) as fresh:
            restored = fresh.restore_session(session_id=session.id,
                                             model=build_mlp)
            assert restored.id == session.id
            assert (restored.step_seq, restored.steps,
                    restored.examples) == counters
            for name, array in frozen.items():
                assert restored.state[name].tobytes() == array.tobytes()
            # replaying the same example lands on the same bits
            result = fresh.step(restored.id, x, y)
            assert result.loss == uninterrupted.loss
            for name, array in after.items():
                assert restored.state[name].tobytes() == array.tobytes()

    def test_restore_from_bytes_without_store(self, tmp_path):
        with mlp_service() as service:
            session = service.create_session(build_mlp, model_id="mlp",
                                             scheme="full")
            self._drive(service, session, 2)
            blob = service.checkpoint_bytes(session.id)
            frozen = {k: v.copy() for k, v in session.state.items()}
        with mlp_service() as fresh:
            restored = fresh.restore_session(blob, model=build_mlp)
            for name, array in frozen.items():
                assert np.array_equal(restored.state[name], array)

    def test_restore_refuses_live_session(self, tmp_path):
        with mlp_service(tmp_path) as service:
            session = service.create_session(build_mlp, model_id="mlp",
                                             scheme="full")
            self._drive(service, session, 1)
            service.checkpoint_session(session.id)
            with pytest.raises(ServeError, match="already open"):
                service.restore_session(session_id=session.id,
                                        model=build_mlp)
            service.close_session(session.id)
            restored = service.restore_session(session_id=session.id,
                                               model=build_mlp)
            assert restored.step_seq == 1

    def test_callable_family_requires_model_on_restore(self, tmp_path):
        with mlp_service(tmp_path) as service:
            session = service.create_session(build_mlp, model_id="mlp",
                                             scheme="full")
            self._drive(service, session, 1)
            service.checkpoint_session(session.id)
            service.close_session(session.id)
            with pytest.raises(ServeError, match="callable model"):
                service.restore_session(session_id=session.id)

    def test_registry_model_restores_without_model_arg(self, tmp_path):
        with mlp_service(tmp_path, max_batch=2) as service:
            session = service.create_session("mcunet_micro", scheme="paper")
            rng = np.random.default_rng(0)
            family = session.family
            x = rng.standard_normal(family.example_shape).astype(
                family.example_dtype)
            y = np.asarray(0, dtype=family.label_dtype)
            service.step(session.id, x, y)
            service.checkpoint_session(session.id)
            frozen = {k: v.copy() for k, v in session.state.items()}
        with mlp_service(tmp_path, max_batch=2) as fresh:
            restored = fresh.restore_session(session_id=session.id)
            for name, array in frozen.items():
                assert np.array_equal(restored.state[name], array)

    def test_auto_checkpoint_every_n_steps(self, tmp_path):
        with mlp_service(tmp_path, checkpoint_every=2) as service:
            session = service.create_session(build_mlp, model_id="mlp",
                                             scheme="full")
            self._drive(service, session, 5)
            versions = service.checkpoints.versions(session.id)
            assert versions == [2, 4]
            assert session.steps_since_checkpoint == 1

    def test_failed_auto_checkpoint_does_not_fail_the_step(self, tmp_path):
        with mlp_service(tmp_path, checkpoint_every=1) as service:
            session = service.create_session(build_mlp, model_id="mlp",
                                             scheme="full")
            FAULTS.arm("checkpoint.write", times=1)
            rng = np.random.default_rng(0)
            result = service.step(session.id, *mlp_example(rng))
            assert result.step == 1                # the update applied
            stats = service.stats()
            assert stats["serve.checkpoint_errors"] == 1

    def test_checkpoint_state_mismatch_detected(self, tmp_path):
        with mlp_service() as service:
            session = service.create_session(build_mlp, model_id="mlp",
                                             scheme="full")
            blob = service.checkpoint_bytes(session.id)
        ckpt = load_checkpoint(blob)
        ckpt.state["not-a-real-tensor"] = np.zeros(3, dtype=np.float32)
        with mlp_service() as fresh:
            with pytest.raises(CheckpointError, match="does not match"):
                fresh.restore_session(dump_checkpoint(ckpt),
                                      model=build_mlp)


# ---------------------------------------------------------------------------
# idempotent step replay
# ---------------------------------------------------------------------------

class TestIdempotentReplay:

    def test_replay_returns_recorded_result_without_reapplying(self):
        with mlp_service() as service:
            session = service.create_session(build_mlp, model_id="mlp",
                                             scheme="full")
            rng = np.random.default_rng(1)
            x, y = mlp_example(rng)
            first = service.submit(session.id, x, y,
                                   idempotency_key="step-1").result()
            assert not first.replayed
            state = {k: v.copy() for k, v in session.state.items()}
            examples = session.examples

            replay = service.submit(session.id, x, y,
                                    idempotency_key="step-1").result()
            assert replay.replayed
            assert replay.loss == first.loss
            assert replay.step == first.step
            assert session.examples == examples     # no second update
            for name, array in state.items():
                assert np.array_equal(session.state[name], array)
            stats = service.stats()
            assert stats["serve.steps_replayed"] == 1

    def test_concurrent_same_key_shares_one_future(self):
        with mlp_service() as service:
            session = service.create_session(build_mlp, model_id="mlp",
                                             scheme="full")
            release = stall_scheduler(service)
            rng = np.random.default_rng(1)
            x, y = mlp_example(rng)
            f1 = service.submit(session.id, x, y, idempotency_key="k")
            f2 = service.submit(session.id, x, y, idempotency_key="k")
            assert f2 is f1                        # attached, not enqueued
            release.set()
            assert f1.result(timeout=10).step == 1
            assert session.examples == 1

    def test_failed_step_releases_the_claim(self):
        with mlp_service() as service:
            session = service.create_session(build_mlp, model_id="mlp",
                                             scheme="full")
            boom = RuntimeError("engine exploded")
            original = service.scheduler._run_batch
            calls = {"n": 0}

            def flaky(sess, batch):
                calls["n"] += 1
                if calls["n"] == 1:
                    raise boom
                return original(sess, batch)

            service.scheduler._run_batch = flaky
            rng = np.random.default_rng(1)
            x, y = mlp_example(rng)
            future = service.submit(session.id, x, y, idempotency_key="k")
            with pytest.raises(RuntimeError, match="exploded"):
                future.result(timeout=10)
            # the retry with the same key re-executes (claim released)
            retry = service.submit(session.id, x, y,
                                   idempotency_key="k").result(timeout=10)
            assert not retry.replayed
            assert retry.step == 1

    def test_window_eviction(self):
        from repro.serve import IDEMPOTENCY_WINDOW
        from repro.serve.sessions import TenantSession
        session = TenantSession.__new__(TenantSession)
        import threading as _t
        from collections import OrderedDict
        session.idem_lock = _t.RLock()
        session._idem_results = OrderedDict()
        session._idem_pending = {}
        for i in range(IDEMPOTENCY_WINDOW + 10):
            session.remember(f"k{i}", i)
        assert session.recall("k0") is None        # evicted
        assert session.recall(f"k{IDEMPOTENCY_WINDOW + 9}") is not None


# ---------------------------------------------------------------------------
# end-to-end deadlines
# ---------------------------------------------------------------------------

class TestDeadlines:

    def test_pre_expired_submit_is_shed(self):
        with mlp_service() as service:
            session = service.create_session(build_mlp, model_id="mlp",
                                             scheme="full")
            rng = np.random.default_rng(1)
            x, y = mlp_example(rng)
            with pytest.raises(DeadlineExpired):
                service.submit(session.id, x, y,
                               deadline=time.monotonic() - 0.1)
            assert session.examples == 0
            stats = service.stats()
            assert stats["serve.deadline_expired"] == 1

    def test_queued_request_expiring_is_shed_at_cut(self):
        with mlp_service() as service:
            session = service.create_session(build_mlp, model_id="mlp",
                                             scheme="full")
            release = stall_scheduler(service)
            rng = np.random.default_rng(1)
            x, y = mlp_example(rng)
            # the stalled batch occupies the worker; the next request
            # waits in queue past its deadline
            blocker = service.submit(session.id, x, y)
            doomed = service.submit(session.id, x, y,
                                    deadline=time.monotonic() + 0.05,
                                    idempotency_key="doomed")
            time.sleep(0.15)
            release.set()
            assert blocker.result(timeout=10).step == 1
            with pytest.raises(DeadlineExpired):
                doomed.result(timeout=10)
            service.drain()
            assert session.examples == 1           # doomed never applied
            # its idempotency claim was released: a fresh attempt runs
            retry = service.submit(session.id, x, y,
                                   idempotency_key="doomed").result(10)
            assert not retry.replayed


# ---------------------------------------------------------------------------
# corrupt program-cache artifacts
# ---------------------------------------------------------------------------

class TestCacheQuarantine:

    def test_corrupt_artifact_quarantined_and_recompiled(self, tmp_path):
        with mlp_service(cache_dir=tmp_path) as service:
            session = service.create_session(build_mlp, model_id="mlp",
                                             scheme="full")
            rng = np.random.default_rng(1)
            service.step(session.id, *mlp_example(rng))
        artifact_dirs = [p for p in tmp_path.iterdir() if p.is_dir()]
        assert artifact_dirs
        (artifact_dirs[0] / "manifest.json").write_text("{ garbled")

        with mlp_service(cache_dir=tmp_path) as fresh:
            session = fresh.create_session(build_mlp, model_id="mlp",
                                           scheme="full")
            rng = np.random.default_rng(1)
            result = fresh.step(session.id, *mlp_example(rng))
            assert result.step == 1                # recompiled and served
            assert fresh.cache.stats.corrupt_entries == 1
            stats = fresh.stats()
            assert stats["serve.cache.corrupt_entries"] == 1
        corrupt = [p for p in tmp_path.iterdir()
                   if p.name.endswith(".corrupt")]
        assert len(corrupt) == 1

    def test_injected_read_fault_quarantines(self, tmp_path):
        with mlp_service(cache_dir=tmp_path) as service:
            service.create_session(build_mlp, model_id="mlp", scheme="full")
            service.warm("sess-0000", batches=[1])
        FAULTS.arm("cache.artifact_read", times=1)
        with mlp_service(cache_dir=tmp_path) as fresh:
            fresh.create_session(build_mlp, model_id="mlp", scheme="full")
            fresh.warm("sess-0000", batches=[1])
            assert fresh.cache.stats.corrupt_entries == 1


# ---------------------------------------------------------------------------
# gateway + client end-to-end durability
# ---------------------------------------------------------------------------

@contextmanager
def mlp_gateway(tmp_path=None, *, step_timeout=30.0, **service_kwargs):
    service_kwargs.setdefault("max_batch", 2)
    service_kwargs.setdefault("workers", 1)
    if tmp_path is not None:
        service_kwargs.setdefault("checkpoint_dir", tmp_path)
    service = FineTuneService(**service_kwargs)
    gateway = GatewayServer(service, step_timeout=step_timeout)
    gateway.start()
    session = service.create_session(build_mlp, model_id="mlp",
                                     scheme="full")
    client = ServeClient(gateway.url)
    try:
        yield service, gateway, client, session
    finally:
        client.close()
        gateway.close(drain_timeout=10.0)


class TestGatewayDurability:

    def test_healthz_advertises_features(self):
        with mlp_gateway() as (_service, _gw, client, _session):
            features = client.healthz()["features"]
            assert set(features) >= {"binary_checkpoint", "checkpoint",
                                     "deadline", "idempotency"}

    def test_lost_response_is_retried_exactly_once_applied(self):
        """The e2e retry satellite: the response to an applied step is
        dropped on the wire; the client retries under its idempotency
        key and gets the recorded result — one update, one ack."""
        with mlp_gateway() as (service, _gw, client, session):
            rng = np.random.default_rng(1)
            FAULTS.arm("gateway.reset_after_send", times=1)
            result = client.step(session.id, *mlp_example(rng))
            assert result["replayed"] is True
            assert result["step"] == 1
            assert session.examples == 1           # applied exactly once
            assert FAULTS.fired("gateway.reset_after_send") == 1

    def test_legacy_client_does_not_retry_lost_response(self):
        with mlp_gateway() as (service, _gw, client, session):
            client._features_cache = frozenset()   # server "predates" keys
            rng = np.random.default_rng(1)
            FAULTS.arm("gateway.reset_after_send", times=1)
            with pytest.raises(ResponseLost):
                client.step(session.id, *mlp_example(rng))
            service.drain()
            assert session.examples == 1           # applied, just unacked

    def test_pre_expired_deadline_504(self):
        with mlp_gateway() as (_service, _gw, client, session):
            rng = np.random.default_rng(1)
            with pytest.raises(GatewayError) as info:
                client.step(session.id, *mlp_example(rng), timeout=-0.5,
                            wait=False)
            assert info.value.status == 504

    def test_step_timeout_504_without_leaking_the_session(self):
        with mlp_gateway(step_timeout=0.2) as (service, _gw, client,
                                               session):
            release = stall_scheduler(service)
            rng = np.random.default_rng(1)
            x, y = mlp_example(rng)
            with pytest.raises(GatewayError) as info:
                client.step(session.id, x, y, wait=False)
            assert info.value.status == 504
            release.set()
            service.drain()
            # busy-protection was not leaked: the session can be closed
            client.close_session(session.id)
            stats = service.stats()
            assert stats["serve.deadline_expired"] >= 1

    def test_bad_durability_headers_400(self):
        with mlp_gateway() as (_service, _gw, client, session):
            for headers in ({"X-Deadline": "not-a-number"},
                            {"Idempotency-Key": "bad key with spaces"}):
                with pytest.raises(GatewayError) as info:
                    client._request(
                        "POST", f"/v1/sessions/{session.id}/step",
                        {"x": [0.0] * 5, "y": 0}, headers=headers)
                assert info.value.status == 400

    def test_checkpoint_routes_roundtrip(self, tmp_path):
        # A registry-key model: the only kind restorable over HTTP (a
        # callable builder cannot ride in a checkpoint).
        with mlp_gateway(tmp_path) as (service, _gw, client, _mlp):
            doc = client.create_session("mcunet_micro")
            sid = doc["session_id"]
            rng = np.random.default_rng(1)
            x = rng.standard_normal(doc["input_shape"])
            y = int(rng.integers(0, doc["num_classes"]))
            client.step(sid, x, y)
            session = service.sessions.get(sid)
            meta = client.checkpoint(sid)
            assert meta["step_seq"] == 1
            assert meta["versions"] == [1]
            blob = client.download_checkpoint(sid, binary=False)
            assert blob[:8] == b"RPCKPT1\n"
            frozen = {k: v.copy() for k, v in session.state.items()}

            # restore over a live session is a conflict
            with pytest.raises(GatewayError) as info:
                client.restore(session_id=sid)
            assert info.value.status == 409

            client.close_session(sid)
            restored_doc = client.restore(session_id=sid)
            assert restored_doc["restored"]
            assert restored_doc["session_id"] == sid
            restored = service.sessions.get(sid)
            for name, array in frozen.items():
                assert np.array_equal(restored.state[name], array)

            # restore from the downloaded bytes too
            client.close_session(sid)
            assert client.restore(blob)["step_seq"] == 1

    def test_binary_checkpoint_download_and_restore(self, tmp_path):
        """Negotiated wire-frame checkpoint transport: the default
        download against a ``binary_checkpoint`` server is a frame, both
        forms decode to identical state, and both restore."""
        from repro.serve import wire
        from repro.serve.checkpoint import checkpoint_from_wire

        with mlp_gateway(tmp_path) as (service, _gw, client, _mlp):
            doc = client.create_session("mcunet_micro")
            sid = doc["session_id"]
            rng = np.random.default_rng(5)
            x = rng.standard_normal(doc["input_shape"])
            y = int(rng.integers(0, doc["num_classes"]))
            client.step(sid, x, y)

            framed = client.download_checkpoint(sid)   # negotiated
            legacy = client.download_checkpoint(sid, binary=False)
            assert framed.startswith(wire.MAGIC)
            assert legacy.startswith(b"RPCKPT1\n")
            via_wire = checkpoint_from_wire(framed)
            via_ckpt = load_checkpoint(legacy)
            assert via_wire.session == via_ckpt.session
            assert set(via_wire.state) == set(via_ckpt.state)
            for name in via_ckpt.state:
                assert via_wire.state[name].tobytes() \
                    == via_ckpt.state[name].tobytes()

            # a wire-framed upload restores bit-for-bit
            frozen = {k: v.copy()
                      for k, v in service.sessions.get(sid).state.items()}
            client.close_session(sid)
            restored_doc = client.restore(framed)
            assert restored_doc["restored"]
            assert restored_doc["session_id"] == sid
            restored = service.sessions.get(sid)
            for name, array in frozen.items():
                assert np.array_equal(restored.state[name], array)

            # garbled frame uploads are 422 (content, not request shape)
            client.close_session(sid)
            with pytest.raises(GatewayError) as info:
                client.restore(framed[: len(framed) // 2])
            assert info.value.status == 422

    def test_checkpoint_route_conflicts(self, tmp_path):
        with mlp_gateway() as (_service, _gw, client, session):
            with pytest.raises(GatewayError) as info:
                client.checkpoint(session.id)      # no checkpoint_dir
            assert info.value.status == 409
        with mlp_gateway(tmp_path) as (_service, _gw, client, _session):
            with pytest.raises(GatewayError) as info:
                client.checkpoint("sess-9999")
            assert info.value.status == 404
            with pytest.raises(GatewayError) as info:
                client.restore(session_id="never-checkpointed")
            assert info.value.status == 422
            with pytest.raises(GatewayError) as info:
                client.restore(b"RPCKPT1\n" + b"junk" * 10)
            assert info.value.status == 422
