"""Graph structure: topological order, DCE, cloning, validation,
serialization round trips."""

import numpy as np
import pytest

from repro.errors import GraphError
from repro.ir import (GraphBuilder, graph_from_dict, graph_to_dict,
                      load_graph, save_graph, summarize, validate_graph)
from repro.ir.node import Node

from conftest import make_mlp_graph


class TestTopology:
    def test_topological_order_valid(self):
        b, names = make_mlp_graph()
        order = b.graph.topological_order()
        position = {n.name: i for i, n in enumerate(order)}
        producers = b.graph.producer_map()
        for node in order:
            for inp in node.inputs:
                if inp in producers:
                    assert position[producers[inp].name] < position[node.name]

    def test_cycle_detected(self):
        b, _ = make_mlp_graph()
        node = b.graph.nodes[0]
        # Wire the first node to consume the last node's output -> cycle.
        last_out = b.graph.nodes[-1].outputs[0]
        node.inputs = (last_out,) + node.inputs[1:]
        with pytest.raises(GraphError):
            b.graph.topological_order()

    def test_undefined_input_detected(self):
        b, _ = make_mlp_graph()
        b.graph.nodes[0].inputs = ("ghost",) + b.graph.nodes[0].inputs[1:]
        with pytest.raises(GraphError):
            b.graph.topological_order()

    def test_producer_and_consumer_maps(self):
        b, names = make_mlp_graph()
        producers = b.graph.producer_map()
        consumers = b.graph.consumer_map()
        assert names["logits"] in producers
        assert any(n.op_type == "matmul" for n in consumers[names["x"]])


class TestDCE:
    def test_removes_unused_chain(self):
        b, names = make_mlp_graph()
        before = len(b.graph.nodes)
        dead = b.emit("relu", [names["logits"]])  # not marked output
        dead2 = b.emit("relu", [dead])
        assert len(b.graph.nodes) == before + 2
        removed = b.graph.dead_code_elimination()
        assert removed == 2
        assert len(b.graph.nodes) == before

    def test_keeps_outputs(self):
        b, names = make_mlp_graph()
        removed = b.graph.dead_code_elimination()
        assert removed == 0
        validate_graph(b.graph)

    def test_drops_orphan_initializers(self):
        b, names = make_mlp_graph()
        b.initializer("unused", np.zeros(3, np.float32))
        b.graph.dead_code_elimination()
        assert "unused" not in b.graph.initializers


class TestClone:
    def test_clone_is_independent(self):
        b, names = make_mlp_graph()
        clone = b.graph.clone()
        clone.nodes.pop()
        clone.nodes[0].attrs["stride"] = 9
        assert len(b.graph.nodes) == len(clone.nodes) + 1
        assert "stride" not in b.graph.nodes[0].attrs

    def test_clone_shares_weights(self):
        b, _ = make_mlp_graph()
        clone = b.graph.clone()
        assert clone.initializers["w1"] is b.graph.initializers["w1"]

    def test_num_params(self):
        b, _ = make_mlp_graph(din=5, dhidden=6, dout=3)
        assert b.graph.num_params() == 5 * 6 + 6 + 6 * 3 + 3


class TestValidate:
    def test_valid_graph_passes(self):
        b, _ = make_mlp_graph()
        validate_graph(b.graph)

    def test_detects_wrong_output_spec(self):
        b, names = make_mlp_graph()
        from repro.ir.tensor import TensorSpec

        bad = b.graph.nodes[-1].outputs[0]
        b.graph.values[bad] = TensorSpec(bad, (99, 99))
        with pytest.raises(Exception):
            validate_graph(b.graph)

    def test_detects_double_production(self):
        b, _ = make_mlp_graph()
        node = b.graph.nodes[1]
        dup = Node(node.op_type, "dup", node.inputs, node.outputs,
                   dict(node.attrs))
        b.graph.nodes.append(dup)
        with pytest.raises(GraphError):
            validate_graph(b.graph)

    def test_detects_missing_graph_output(self):
        b, _ = make_mlp_graph()
        b.graph.outputs.append("nonexistent")
        with pytest.raises(GraphError):
            validate_graph(b.graph)


class TestSerialization:
    def test_dict_roundtrip(self):
        b, _ = make_mlp_graph()
        doc = graph_to_dict(b.graph)
        back = graph_from_dict(doc)
        validate_graph(back)
        assert [n.op_type for n in back.nodes] == \
            [n.op_type for n in b.graph.nodes]
        np.testing.assert_array_equal(back.initializers["w1"],
                                      b.graph.initializers["w1"])
        assert back.trainable == b.graph.trainable

    def test_file_roundtrip(self, tmp_path):
        b, _ = make_mlp_graph()
        save_graph(b.graph, tmp_path / "model")
        back = load_graph(tmp_path / "model")
        validate_graph(back)
        np.testing.assert_array_equal(back.initializers["w2"],
                                      b.graph.initializers["w2"])

    def test_roundtrip_preserves_attrs(self):
        b = GraphBuilder("g")
        x = b.input("x", (1, 3, 8, 8))
        w = b.initializer("w", np.zeros((4, 3, 3, 3), np.float32))
        y = b.conv2d(x, w, stride=2, padding=1)
        b.mark_output(y)
        back = graph_from_dict(graph_to_dict(b.graph))
        assert back.nodes[0].attrs["stride"] == 2

    def test_rejects_bad_version(self):
        b, _ = make_mlp_graph()
        doc = graph_to_dict(b.graph)
        doc["format_version"] = 99
        with pytest.raises(GraphError):
            graph_from_dict(doc)

    def test_summarize_mentions_counts(self):
        b, _ = make_mlp_graph()
        text = summarize(b.graph)
        assert "nodes" in text and "trainable" in text
