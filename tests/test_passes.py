"""Graph-optimization passes: semantics preserved, savings real."""

import numpy as np
import pytest

from repro.ir import GraphBuilder, validate_graph
from repro.passes import (BiasActivationFusionPass,
                          CommonSubexpressionEliminationPass,
                          ConstantFoldingPass, DeadCodeEliminationPass,
                          ElementwiseGroupPass, LayoutSelectionPass,
                          PassContext, PassManager, WinogradSelectionPass,
                          default_schedule, memory_aware_schedule)
from repro.runtime import interpret

from conftest import make_mlp_graph


def conv_act_graph(rng, mark_intermediate=False):
    b = GraphBuilder("g")
    x = b.input("x", (2, 3, 8, 8))
    w = b.initializer("w", rng.standard_normal((4, 3, 3, 3))
                      .astype(np.float32), trainable=True)
    bias = b.initializer("bias", rng.standard_normal(4).astype(np.float32),
                         trainable=True)
    conv = b.conv2d(x, w, padding=1)
    biased = b.bias_add(conv, bias, axis=1)
    act = b.emit("relu", [biased])
    if mark_intermediate:
        b.mark_output(biased)
    b.mark_output(act)
    return b, x


class TestFusion:
    def test_conv_bias_relu_fuses_to_one_node(self, rng):
        b, x = conv_act_graph(rng)
        before = interpret(b.graph, {"x": np.ones((2, 3, 8, 8), np.float32)})
        result = BiasActivationFusionPass().run(b.graph, PassContext())
        assert result.stats["fused"] == 1
        assert len(b.graph.nodes) == 1
        node = b.graph.nodes[0]
        assert node.op_type == "conv2d" and len(node.inputs) == 3
        assert node.attrs["activation"] == "relu"
        validate_graph(b.graph)
        after = interpret(b.graph, {"x": np.ones((2, 3, 8, 8), np.float32)})
        for key in before:
            np.testing.assert_allclose(before[key], after[key], atol=1e-5)

    def test_activation_not_fused_when_intermediate_is_output(self, rng):
        """With the biased value needed downstream, bias may fuse into the
        conv (it adopts that output name) but the activation must stay a
        separate node."""
        b, _ = conv_act_graph(rng, mark_intermediate=True)
        xa = np.ones((2, 3, 8, 8), np.float32)
        before = interpret(b.graph, {"x": xa})
        BiasActivationFusionPass().run(b.graph, PassContext())
        validate_graph(b.graph)
        assert any(n.op_type == "relu" for n in b.graph.nodes)
        after = interpret(b.graph, {"x": xa})
        for key in before:
            np.testing.assert_allclose(before[key], after[key], atol=1e-5)

    def test_matmul_bias_gelu_fuses(self, rng):
        b, names = make_mlp_graph(activation="gelu")
        xa = rng.standard_normal((4, 5)).astype(np.float32)
        before = interpret(b.graph, {"x": xa})
        result = BiasActivationFusionPass().run(b.graph, PassContext())
        assert result.stats["fused"] == 2  # both layers fuse (2nd: bias only)
        after = interpret(b.graph, {"x": xa})
        np.testing.assert_allclose(before[names["logits"]],
                                   after[names["logits"]], atol=1e-5)

    def test_elementwise_groups_assigned(self, rng):
        b = GraphBuilder("g")
        x = b.input("x", (4, 4))
        h = b.emit("tanh", [b.emit("sigmoid", [b.emit("relu", [x])])])
        b.mark_output(h)
        result = ElementwiseGroupPass().run(b.graph, PassContext())
        groups = b.graph.metadata["fusion_groups"]
        assert result.stats["groups"] == 1
        assert len(groups) == 3

    def test_elementwise_group_breaks_at_fanout(self, rng):
        b = GraphBuilder("g")
        x = b.input("x", (4, 4))
        mid = b.emit("relu", [x])
        a = b.emit("tanh", [mid])
        c = b.emit("sigmoid", [mid])  # mid has two consumers
        b.mark_output(a)
        b.mark_output(c)
        ElementwiseGroupPass().run(b.graph, PassContext())
        groups = b.graph.metadata["fusion_groups"]
        assert groups.get(b.graph.nodes[0].name) is None


class TestFoldingCseDce:
    def test_constant_folding_frozen_only(self, rng):
        b = GraphBuilder("g")
        x = b.input("x", (2, 3))
        frozen = b.initializer("frozen", np.ones((3,), np.float32))
        train = b.initializer("train", np.ones((2, 3), np.float32),
                              trainable=True)
        doubled = b.mul(frozen, b.constant(np.float32(2.0)))  # foldable
        scaled = b.mul(train, b.constant(np.float32(3.0)))    # trainable!
        out = b.add(b.add(x, doubled), scaled)
        b.mark_output(out)
        ctx = PassContext(updated_params={"train"})
        result = ConstantFoldingPass().run(b.graph, ctx)
        assert result.stats["folded"] == 1
        np.testing.assert_allclose(
            b.graph.initializers[doubled], 2 * np.ones(3), atol=1e-6)
        validate_graph(b.graph)

    def test_cse_merges_duplicates(self, rng):
        b = GraphBuilder("g")
        x = b.input("x", (2, 2))
        a1 = b.emit("relu", [x])
        a2 = b.emit("relu", [x])
        out = b.add(a1, a2)
        b.mark_output(out)
        result = CommonSubexpressionEliminationPass().run(b.graph,
                                                          PassContext())
        assert result.stats["removed"] == 1
        validate_graph(b.graph)
        got = interpret(b.graph, {"x": np.array([[1, -1], [2, -2]],
                                                np.float32)})
        np.testing.assert_allclose(got[out], [[2, 0], [4, 0]])

    def test_cse_respects_attrs(self, rng):
        b = GraphBuilder("g")
        x = b.input("x", (2, 4))
        s1 = b.reduce_sum(x, axes=(0,))
        s2 = b.reduce_sum(x, axes=(1,))
        b.mark_output(b.add(b.reshape(s1, (4,))[:0] if False else s1, s1))
        b.mark_output(s2)
        removed = CommonSubexpressionEliminationPass().run(
            b.graph, PassContext()).stats["removed"]
        assert removed == 0

    def test_dce_pass(self, rng):
        b, names = make_mlp_graph()
        b.emit("relu", [names["logits"]])
        result = DeadCodeEliminationPass().run(b.graph, PassContext())
        assert result.stats["removed"] == 1


class TestKernelSelect:
    def test_winograd_only_for_frozen_3x3_s1(self, rng):
        b = GraphBuilder("g")
        x = b.input("x", (1, 3, 8, 8))
        w_frozen = b.initializer("wf", rng.standard_normal((4, 3, 3, 3))
                                 .astype(np.float32), trainable=True)
        w_train = b.initializer("wt", rng.standard_normal((4, 3, 3, 3))
                                .astype(np.float32), trainable=True)
        w_5x5 = b.initializer("w5", rng.standard_normal((4, 3, 5, 5))
                              .astype(np.float32))
        y1 = b.conv2d(x, w_frozen, padding=1)
        y2 = b.conv2d(x, w_train, padding=1)
        y3 = b.conv2d(x, w_5x5, padding=2)
        y4 = b.conv2d(x, w_frozen, stride=2, padding=1)
        for y in (y1, y2, y3, y4):
            b.mark_output(y)
        ctx = PassContext(updated_params={"wt"})
        result = WinogradSelectionPass().run(b.graph, ctx)
        algos = {n.outputs[0]: n.attrs.get("algo") for n in b.graph.nodes}
        assert algos[y1] == "winograd"
        assert algos[y2] is None       # trainable: transform not amortisable
        assert algos[y3] is None       # 5x5
        assert algos[y4] is None       # strided
        assert result.stats["winograd_convs"] == 1

    def test_winograd_numerically_safe(self, rng):
        b = GraphBuilder("g")
        x = b.input("x", (1, 3, 8, 8))
        w = b.initializer("w", rng.standard_normal((4, 3, 3, 3))
                          .astype(np.float32))
        y = b.conv2d(x, w, padding=1)
        b.mark_output(y)
        xa = rng.standard_normal((1, 3, 8, 8)).astype(np.float32)
        before = interpret(b.graph, {"x": xa})[y]
        WinogradSelectionPass().run(b.graph, PassContext())
        after = interpret(b.graph, {"x": xa})[y]
        np.testing.assert_allclose(before, after, atol=1e-3)

    def test_layout_pass_records_device_preference(self):
        from repro.devices import get_device

        b, _ = make_mlp_graph()
        ctx = PassContext(device=get_device("raspberry_pi_4"))
        LayoutSelectionPass().run(b.graph, ctx)
        assert b.graph.metadata["layout"] == "NHWC"


class TestScheduling:
    def test_memory_aware_is_valid_topological_order(self, rng):
        b, names = make_mlp_graph()
        schedule = memory_aware_schedule(b.graph)
        assert len(schedule) == len(b.graph.nodes)
        seen = set(b.graph.inputs) | set(b.graph.initializers)
        for node in schedule:
            assert all(i in seen for i in node.inputs)
            seen.update(node.outputs)

    def test_memory_aware_not_worse_than_default(self):
        from repro.memory import profile_memory
        from repro.models import build_model
        from repro.runtime.compiler import CompileOptions, compile_training
        from repro.train import SGD

        g = build_model("mcunet_micro", batch=2)
        program = compile_training(
            g, optimizer=SGD(0.1),
            options=CompileOptions(reorder=False, applies_last=True))
        naive = profile_memory(program.graph,
                               default_schedule(program.graph, True))
        smart = profile_memory(program.graph,
                               memory_aware_schedule(program.graph))
        assert smart.peak_transient_bytes <= naive.peak_transient_bytes

    def test_apply_ordering_respects_read_hazard(self):
        """An in-place update may not run before another reader of the
        parameter (write-after-read)."""
        b = GraphBuilder("g")
        x = b.input("x", (2, 2))
        w = b.initializer("w", np.ones((2, 2), np.float32), trainable=True)
        y1 = b.matmul(x, w)
        y2 = b.matmul(y1, w)  # second read of w
        grad = b.mul(y1, y1)
        upd = b.emit("apply_sgd", [w, grad], {"lr": 0.1})
        b.mark_output(y2)
        b.mark_output(upd)
        schedule = memory_aware_schedule(b.graph)
        order = {n.name: i for i, n in enumerate(schedule)}
        apply_node = next(n for n in schedule if n.op_type == "apply_sgd")
        for node in schedule:
            if node is not apply_node and "w" in node.inputs:
                assert order[node.name] < order[apply_node.name]

    def test_default_schedule_applies_last(self):
        b, names = make_mlp_graph()
        from repro.runtime.compiler import compile_training, CompileOptions
        from repro.train import SGD

        program = compile_training(
            b.graph, optimizer=SGD(0.1),
            options=CompileOptions(reorder=False, applies_last=True))
        tail_types = [n.op_type for n in program.schedule[-4:]]
        assert all(t == "apply_sgd" for t in tail_types)

    def test_pass_manager_runs_pipeline(self, rng):
        b, _ = conv_act_graph(rng)
        manager = PassManager([
            BiasActivationFusionPass(),
            DeadCodeEliminationPass(),
        ], debug=True)
        report = manager.run(b.graph)
        assert report["fuse_bias_act"].stats["fused"] == 1
