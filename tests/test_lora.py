"""LoRA adapters: injection, training, backward depth, and merge-back."""

import numpy as np
import pytest

from repro.errors import SchemeError
from repro.ir import validate_graph
from repro.memory import profile_memory
from repro.models import build_model, paper_scheme
from repro.runtime import Executor, interpret
from repro.runtime.compiler import CompileOptions, compile_training
from repro.sparse import (LoRAConfig, full_update, inject_lora, lora_scheme,
                          merge_lora)
from repro.train import SGD
from repro.train.optim import optimizer_state_bytes


@pytest.fixture(scope="module")
def base():
    return build_model("bert_micro", batch=2, seq_len=8, num_classes=2)


@pytest.fixture
def token_feeds(base, rng):
    return {base.inputs[0]: rng.integers(
        0, 50, base.spec(base.inputs[0]).shape).astype(np.int64)}


class TestInjection:
    def test_adapters_on_attention_weights(self, base):
        lora = inject_lora(base, LoRAConfig(rank=4))
        adapters = lora.metadata["lora_adapters"]
        meta = base.metadata["params"]
        for weight in adapters:
            assert meta[weight]["role_in_block"] == "attention"
        validate_graph(lora)

    def test_base_weights_frozen(self, base):
        lora = inject_lora(base, LoRAConfig(rank=4))
        for weight in lora.metadata["lora_adapters"]:
            assert weight not in lora.trainable
        for entry in lora.metadata["lora_adapters"].values():
            assert entry["a"] in lora.trainable
            assert entry["b"] in lora.trainable

    def test_zero_init_is_exact_noop(self, base, token_feeds):
        lora = inject_lora(base, LoRAConfig(rank=4))
        want = interpret(base, token_feeds)[base.outputs[0]]
        got = interpret(lora, token_feeds)[lora.outputs[0]]
        np.testing.assert_array_equal(want, got)

    def test_adapter_shapes(self, base):
        lora = inject_lora(base, LoRAConfig(rank=3))
        for weight, entry in lora.metadata["lora_adapters"].items():
            in_dim, out_dim = lora.spec(weight).shape
            assert lora.spec(entry["a"]).shape == (in_dim, 3)
            assert lora.spec(entry["b"]).shape == (3, out_dim)

    def test_all_linears_mode(self, base):
        narrow = inject_lora(base, LoRAConfig(rank=2))
        wide = inject_lora(base, LoRAConfig(rank=2, target_roles=None))
        assert len(wide.metadata["lora_adapters"]) \
            > len(narrow.metadata["lora_adapters"])

    def test_rejects_bad_rank(self, base):
        with pytest.raises(SchemeError, match="rank"):
            inject_lora(base, LoRAConfig(rank=0))

    def test_rejects_no_targets(self, base):
        with pytest.raises(SchemeError, match="target"):
            inject_lora(base, LoRAConfig(target_roles=("no_such_role",)))

    def test_original_graph_untouched(self, base):
        nodes = len(base.nodes)
        trainable = set(base.trainable)
        inject_lora(base, LoRAConfig(rank=4))
        assert len(base.nodes) == nodes
        assert base.trainable == trainable


class TestTraining:
    def test_adapters_learn(self, base, token_feeds, rng):
        lora = inject_lora(base, LoRAConfig(rank=4, alpha=8.0))
        program = compile_training(lora, optimizer=SGD(0.1),
                                   scheme=lora_scheme(lora))
        executor = Executor(program)
        labels = rng.integers(0, 2, 2).astype(np.int64)
        losses = [float(executor.run(
            {**token_feeds, program.meta["labels"]: labels}
        )[program.meta["loss"]]) for _ in range(20)]
        assert losses[-1] < losses[0] * 0.5

    def test_base_weights_do_not_move(self, base, token_feeds, rng):
        lora = inject_lora(base, LoRAConfig(rank=4))
        # parallel fusion would merge (and rename) the frozen QKV bases;
        # disable it so the original weights stay addressable.
        program = compile_training(
            lora, optimizer=SGD(0.1), scheme=lora_scheme(lora),
            options=CompileOptions(parallel_fusion=False))
        frozen = next(iter(lora.metadata["lora_adapters"]))
        before = program.state[frozen].copy()
        executor = Executor(program)
        labels = rng.integers(0, 2, 2).astype(np.int64)
        for _ in range(3):
            executor.run({**token_feeds, program.meta["labels"]: labels})
        np.testing.assert_array_equal(program.state[frozen], before)

    def test_lora_frozen_bases_unlock_qkv_fusion(self, base):
        # Freezing Q/K/V for LoRA makes them mergeable — the same
        # frozen-weight synergy the paper describes for Winograd.
        lora = inject_lora(base, LoRAConfig(rank=4))
        program = compile_training(lora, optimizer=SGD(0.1),
                                   scheme=lora_scheme(lora))
        stats = program.meta["report"].pass_stats.get("parallel_fusion", {})
        assert stats.get("groups", 0) >= 1

    def test_optimizer_state_is_tiny(self, base):
        from repro.train import Adam
        lora = inject_lora(base, LoRAConfig(rank=4))
        lora_prog = compile_training(lora, optimizer=Adam(1e-3),
                                     scheme=lora_scheme(lora))
        full_prog = compile_training(base, optimizer=Adam(1e-3),
                                     scheme=full_update(base))
        assert optimizer_state_bytes(lora_prog.graph) \
            < optimizer_state_bytes(full_prog.graph) / 4

    def test_backward_reaches_first_block_unlike_sparse(self, base):
        """The paper's Table 5 argument: LoRA's backward must descend to
        every adapted block, so pruning cannot shorten it; sparse-BP's
        can stop early."""
        lora = inject_lora(base, LoRAConfig(rank=4))
        lora_prog = compile_training(lora, optimizer=SGD(0.1),
                                     scheme=lora_scheme(lora))
        sparse_prog = compile_training(base, optimizer=SGD(0.1),
                                       scheme=paper_scheme(base))

        def earliest_updated_block(program, graph):
            meta = graph.metadata.get("params", {})
            blocks = []
            for node in program.graph.nodes:
                if not node.op_type.startswith("apply_"):
                    continue
                param = node.inputs[0]
                root = param.rsplit(".lora_", 1)[0]
                info = meta.get(root) or meta.get(param) or {}
                if "block" in info:
                    blocks.append(info["block"])
            return min(blocks) if blocks else None

        lora_first = earliest_updated_block(lora_prog, lora)
        sparse_first = earliest_updated_block(sparse_prog, base)
        assert lora_first == 0
        assert sparse_first > 0


class TestMerge:
    def test_merge_restores_base_structure(self, base, token_feeds, rng):
        lora = inject_lora(base, LoRAConfig(rank=4))
        # give the adapters some real values
        for entry in lora.metadata["lora_adapters"].values():
            lora.initializers[entry["b"]] = (
                rng.standard_normal(lora.spec(entry["b"]).shape) * 0.02
            ).astype(np.float32)
        merged = merge_lora(lora)
        validate_graph(merged)
        assert len(merged.nodes) == len(base.nodes)
        assert "lora_adapters" not in merged.metadata

    def test_merge_is_numerically_exact(self, base, token_feeds, rng):
        lora = inject_lora(base, LoRAConfig(rank=4, alpha=4.0))
        for entry in lora.metadata["lora_adapters"].values():
            lora.initializers[entry["b"]] = (
                rng.standard_normal(lora.spec(entry["b"]).shape) * 0.02
            ).astype(np.float32)
        merged = merge_lora(lora)
        want = interpret(lora, token_feeds)[lora.outputs[0]]
        got = interpret(merged, token_feeds)[merged.outputs[0]]
        np.testing.assert_allclose(want, got, atol=1e-5)

    def test_merge_requires_adapters(self, base):
        with pytest.raises(SchemeError, match="adapters"):
            merge_lora(base)

    def test_adapter_weights_removed_after_merge(self, base):
        lora = inject_lora(base, LoRAConfig(rank=4))
        merged = merge_lora(lora)
        for name in merged.initializers:
            assert ".lora_" not in name
