"""IR fundamentals: dtypes, tensor specs, nodes."""

import numpy as np
import pytest

from repro.ir import DType, TensorSpec
from repro.ir.node import Node


class TestDType:
    def test_itemsizes(self):
        assert DType.FLOAT32.itemsize == 4
        assert DType.FLOAT16.itemsize == 2
        assert DType.INT64.itemsize == 8
        assert DType.BOOL.itemsize == 1

    def test_numpy_roundtrip(self):
        for dt in DType:
            assert DType.from_numpy(dt.np) is dt

    def test_from_numpy_rejects_unknown(self):
        with pytest.raises(ValueError):
            DType.from_numpy(np.dtype("complex64"))

    def test_is_float(self):
        assert DType.FLOAT32.is_float
        assert DType.FLOAT16.is_float
        assert not DType.INT64.is_float


class TestTensorSpec:
    def test_nbytes(self):
        spec = TensorSpec("t", (2, 3, 4), DType.FLOAT32)
        assert spec.num_elements == 24
        assert spec.nbytes == 96

    def test_scalar(self):
        spec = TensorSpec("s", ())
        assert spec.num_elements == 1
        assert spec.rank == 0

    def test_fp16_halves_bytes(self):
        a = TensorSpec("a", (10, 10), DType.FLOAT32)
        b = TensorSpec("b", (10, 10), DType.FLOAT16)
        assert a.nbytes == 2 * b.nbytes

    def test_negative_dim_rejected(self):
        with pytest.raises(ValueError):
            TensorSpec("t", (2, -1))

    def test_with_name(self):
        spec = TensorSpec("a", (2,))
        renamed = spec.with_name("b")
        assert renamed.name == "b" and renamed.shape == (2,)

    def test_str(self):
        assert "float32" in str(TensorSpec("a", (2, 3)))


class TestNode:
    def test_replace_input(self):
        node = Node("add", "n", ("a", "b"), ("c",))
        node.replace_input("a", "z")
        assert node.inputs == ("z", "b")

    def test_attr_key_order_independent(self):
        n1 = Node("conv2d", "a", ("x", "w"), ("y",),
                  {"stride": 2, "padding": 1})
        n2 = Node("conv2d", "b", ("x", "w"), ("y2",),
                  {"padding": 1, "stride": 2})
        assert n1.attr_key() == n2.attr_key()

    def test_attr_key_freezes_nested(self):
        node = Node("pad", "p", ("x",), ("y",), {"pads": [(1, 2), (0, 0)]})
        assert isinstance(hash(node.attr_key()), int)

    def test_str_contains_op(self):
        node = Node("mul", "m", ("a", "b"), ("c",))
        assert "mul" in str(node)
