"""Model zoo and synthetic data generators."""

import numpy as np
import pytest

from repro.data import (build_corpus, build_tokenizer, instruction_batches,
                        text_task, vision_source, vision_task)
from repro.data.tasks import TEXT_TASKS, VISION_TASKS
from repro.ir import validate_graph
from repro.models import REGISTRY, build_model, lora_like_scheme, paper_scheme
from repro.runtime import interpret
from repro.sparse import scheme_memory_cost

MICRO_MODELS = [k for k, e in REGISTRY.items() if e.micro]
FULL_MODELS = [k for k, e in REGISTRY.items() if not e.micro]


class TestMicroModels:
    @pytest.mark.parametrize("key", MICRO_MODELS)
    def test_builds_validates_runs(self, key):
        g = build_model(key, batch=2)
        validate_graph(g)
        spec = g.spec(g.inputs[0])
        if spec.dtype.is_float:
            feed = np.random.default_rng(0).standard_normal(spec.shape) \
                .astype(np.float32)
        else:
            feed = np.zeros(spec.shape, np.int64)
        out = interpret(g, {g.inputs[0]: feed})
        assert all(np.isfinite(v).all() for v in out.values())

    @pytest.mark.parametrize("key", MICRO_MODELS)
    def test_paper_scheme_resolves(self, key):
        g = build_model(key, batch=2)
        scheme = paper_scheme(g)
        resolved = scheme.resolve(g)
        assert resolved.updates
        # Sparse scheme must be a strict subset of the trainables.
        assert set(resolved.updates) < g.trainable

    @pytest.mark.parametrize("key", MICRO_MODELS)
    def test_block_metadata_present(self, key):
        g = build_model(key, batch=2)
        meta = g.metadata["params"]
        blocks = {m["block"] for m in meta.values() if "block" in m}
        assert len(blocks) == g.metadata["num_blocks"]


class TestFullModels:
    @pytest.mark.parametrize("key", FULL_MODELS)
    def test_builds_lazily_with_true_shapes(self, key):
        g = build_model(key, batch=1)
        validate_graph(g)
        # Placeholder weights: zero strides, so ~no real memory.
        for arr in g.initializers.values():
            if arr.size > 4096:
                assert 0 in arr.strides

    def test_parameter_counts_close_to_paper(self):
        expectations = {
            "mcunet": (0.4e6, 1.2e6),        # paper: 0.6M
            "mobilenetv2": (3.0e6, 4.0e6),   # paper: 3.4M
            "resnet50": (23e6, 28e6),        # paper: 26M
            "llama7b": (6.0e9, 7.5e9),       # paper: 7B
        }
        for key, (lo, hi) in expectations.items():
            g = build_model(key, batch=1)
            assert lo < g.num_params() < hi, key

    def test_bert_block_counts(self):
        assert build_model("bert", batch=1).metadata["num_blocks"] == 12
        assert build_model("distilbert", batch=1).metadata["num_blocks"] == 6
        assert build_model("llama7b", batch=1).metadata["num_blocks"] == 32

    def test_llama_is_fp16(self):
        g = build_model("llama7b", batch=1, seq_len=64)
        emb = g.spec("embed.weight")
        assert emb.dtype.value == "float16"

    def test_lora_scheme_spreads_over_all_blocks(self):
        g = build_model("llama7b", batch=1, seq_len=64)
        scheme = lora_like_scheme(g)
        meta = g.metadata["params"]
        blocks = {meta[p]["block"] for p in scheme.updates
                  if "block" in meta[p]}
        assert len(blocks) == 32

    def test_sparse_cheaper_than_full_on_every_model(self):
        from repro.sparse import full_update

        for key in ("mobilenetv2", "resnet50", "bert"):
            g = build_model(key, batch=1)
            sparse = scheme_memory_cost(g, paper_scheme(g)).total_bytes
            full = scheme_memory_cost(g, full_update(g)).total_bytes
            assert sparse < full / 2, key

    def test_unknown_model_rejected(self):
        with pytest.raises(Exception):
            build_model("alexnet")


class TestVisionTasks:
    def test_deterministic(self):
        a = vision_task("cifar")
        b = vision_task("cifar")
        np.testing.assert_array_equal(a.x_train, b.x_train)

    def test_shapes_and_labels(self):
        task = vision_task("cars", resolution=16, n_train=32, n_test=16)
        assert task.x_train.shape == (32, 3, 16, 16)
        assert task.y_train.max() < task.num_classes

    def test_source_has_no_shift(self):
        source = vision_source(n_train=16, n_test=8)
        shifted = vision_task("cub", n_train=16, n_test=8)
        # Same class prototypes underneath; shifted stats differ more.
        assert source.x_train.std() != pytest.approx(
            shifted.x_train.std(), rel=1e-3)

    def test_all_named_tasks_generate(self):
        for name in VISION_TASKS:
            task = vision_task(name, n_train=8, n_test=4)
            assert len(task.x_train) == 8

    def test_batches_iterator(self):
        task = vision_task("pets", n_train=32)
        rng = np.random.default_rng(0)
        batches = list(task.batches(4, rng, steps=3))
        assert len(batches) == 3
        assert batches[0][0].shape[0] == 4


class TestTextTasks:
    def test_all_named_tasks_generate(self):
        for name in TEXT_TASKS:
            task = text_task(name, vocab_size=64, seq_len=8, n_train=8,
                             n_test=4)
            assert task.x_train.dtype == np.int64
            assert task.x_train.max() < 64

    def test_class_signal_exists(self):
        """Token distributions must differ between classes."""
        task = text_task("sst2", vocab_size=64, seq_len=16, n_train=200)
        c0 = task.x_train[task.y_train == 0].ravel()
        c1 = task.x_train[task.y_train == 1].ravel()
        h0 = np.bincount(c0, minlength=64) / len(c0)
        h1 = np.bincount(c1, minlength=64) / len(c1)
        assert np.abs(h0 - h1).sum() > 0.3


class TestInstructCorpus:
    def test_corpus_and_tokenizer(self):
        pairs = build_corpus()
        tok = build_tokenizer(pairs)
        assert len(pairs) == 100
        assert len(tok) < 96  # fits llama_micro vocab
        q, a = pairs[0]
        assert tok.decode(tok.encode(q)) == q

    def test_batches_shapes(self):
        tok, gen, (x_test, y_test) = instruction_batches(
            seq_len=23, batch_size=4, steps=2)
        x, y = next(gen)
        assert x.shape == (4, 23) and y.shape == (4, 23)
        # Targets are inputs shifted by one.
        np.testing.assert_array_equal(x[:, 1:], y[:, :-1])
        assert x_test.shape[1] == 23
