"""Compile-time autodiff: gradient rules vs finite differences, engine
semantics (pruning by construction, accumulation, mixed precision)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.autodiff import build_backward
from repro.errors import AutodiffError
from repro.ir import DType, GraphBuilder, validate_graph
from repro.runtime import interpret

from conftest import gradcheck_single_op, make_mlp_graph


class TestElementwiseGrads:
    @pytest.mark.parametrize("op", ["add", "sub", "mul", "div",
                                    "maximum", "minimum"])
    def test_binary(self, op):
        def mk(rng):
            a = rng.standard_normal((3, 4)).astype(np.float32)
            b = rng.standard_normal((3, 4)).astype(np.float32) + 3.0
            return [a, b]
        gradcheck_single_op(op, None, make_inputs=mk)

    def test_broadcast_grads(self):
        def mk(rng):
            return [rng.standard_normal((3, 4)).astype(np.float32),
                    rng.standard_normal((4,)).astype(np.float32)]
        gradcheck_single_op("add", None, make_inputs=mk)
        gradcheck_single_op("mul", None, make_inputs=mk)

    @pytest.mark.parametrize("op", ["neg", "exp", "tanh", "sigmoid",
                                    "gelu", "abs"])
    def test_unary(self, op):
        gradcheck_single_op(op, [(3, 4)])

    def test_log_sqrt_positive_domain(self):
        def mk(rng):
            return [rng.random((3, 4)).astype(np.float32) + 0.5]
        gradcheck_single_op("log", None, make_inputs=mk)
        gradcheck_single_op("sqrt", None, make_inputs=mk)

    def test_relu_relu6_away_from_kinks(self):
        def mk(rng):
            x = rng.standard_normal((4, 4)).astype(np.float32) * 3
            x[np.abs(x) < 0.1] = 0.5
            x[np.abs(x - 6) < 0.1] = 5.0
            return [x]
        gradcheck_single_op("relu", None, make_inputs=mk)
        gradcheck_single_op("relu6", None, make_inputs=mk)


class TestShapeGrads:
    def test_reshape(self):
        gradcheck_single_op("reshape", [(2, 6)], {"shape": (3, 4)})

    def test_transpose(self):
        gradcheck_single_op("transpose", [(2, 3, 4)], {"perm": (2, 0, 1)})

    def test_slice(self):
        gradcheck_single_op("slice", [(4, 6)],
                            {"axis": 1, "start": 1, "end": 5})

    def test_concat(self):
        gradcheck_single_op("concat", [(2, 3), (2, 2)], {"axis": 1})

    def test_pad(self):
        gradcheck_single_op("pad", [(2, 3)], {"pads": ((1, 0), (0, 2))})

    def test_broadcast_to(self):
        gradcheck_single_op("broadcast_to", [(1, 3)], {"shape": (4, 3)})


class TestReduceGrads:
    @pytest.mark.parametrize("keepdims", [True, False])
    def test_sum_mean(self, keepdims):
        gradcheck_single_op("reduce_sum", [(3, 4)],
                            {"axes": (1,), "keepdims": keepdims})
        gradcheck_single_op("reduce_mean", [(3, 4)],
                            {"axes": (0,), "keepdims": keepdims})

    def test_reduce_max(self):
        def mk(rng):
            x = rng.standard_normal((3, 5)).astype(np.float32)
            return [(x + np.arange(5) * 2).astype(np.float32)]  # break ties
        gradcheck_single_op("reduce_max", None, {"axes": (1,),
                                                 "keepdims": False},
                            make_inputs=mk)


class TestNNGrads:
    def test_matmul(self):
        gradcheck_single_op("matmul", [(3, 4), (4, 5)])

    def test_matmul_batched_activation(self):
        gradcheck_single_op("matmul", [(2, 3, 4), (4, 5)])

    def test_conv2d(self):
        gradcheck_single_op("conv2d", [(2, 3, 5, 5), (4, 3, 3, 3)],
                            {"stride": 1, "padding": 1})

    def test_conv2d_strided(self):
        gradcheck_single_op("conv2d", [(1, 2, 6, 6), (4, 2, 3, 3)],
                            {"stride": 2, "padding": 1})

    def test_conv2d_depthwise(self):
        gradcheck_single_op("conv2d", [(1, 4, 5, 5), (4, 1, 3, 3)],
                            {"padding": 1, "groups": 4})

    def test_bias_add(self):
        gradcheck_single_op("bias_add", [(2, 5, 3, 3), (5,)], {"axis": 1})

    def test_softmax_logsoftmax(self):
        gradcheck_single_op("softmax", [(3, 6)], {"axis": -1})
        gradcheck_single_op("log_softmax", [(3, 6)], {"axis": 1})

    def test_layernorm(self):
        def mk(rng):
            return [rng.standard_normal((3, 8)).astype(np.float32),
                    rng.random(8).astype(np.float32) + 0.5,
                    rng.standard_normal(8).astype(np.float32)]
        gradcheck_single_op("layernorm", None, {"eps": 1e-5}, make_inputs=mk,
                            tol=5e-2)

    def test_rmsnorm(self):
        def mk(rng):
            return [rng.standard_normal((3, 8)).astype(np.float32),
                    rng.random(8).astype(np.float32) + 0.5]
        gradcheck_single_op("rmsnorm", None, {"eps": 1e-6}, make_inputs=mk,
                            tol=5e-2)

    def test_pooling(self):
        def mk(rng):
            return [rng.standard_normal((1, 2, 4, 4)).astype(np.float32)]
        gradcheck_single_op("maxpool2d", None, {"kernel": 2, "stride": 2},
                            make_inputs=mk)
        gradcheck_single_op("avgpool2d", None, {"kernel": 2, "stride": 2},
                            make_inputs=mk)
        gradcheck_single_op("global_avg_pool", [(2, 3, 4, 4)])

    def test_embedding(self):
        def mk(rng):
            return [rng.standard_normal((7, 4)).astype(np.float32),
                    rng.integers(0, 7, (2, 3))]
        gradcheck_single_op("embedding", None, make_inputs=mk)


class TestEngine:
    def test_stops_at_deepest_trainable(self):
        """With only layer-2 weights requested, no backward nodes touch
        layer 1 (the paper's 'backpropagation stops here')."""
        b, names = make_mlp_graph()
        sq = b.mul(names["logits"], names["logits"])
        loss = b.reduce_mean(sq)
        b.mark_output(loss)

        full = b.graph.clone()
        res_full = build_backward(full, loss, ["w1", "w2"])
        res_sparse = build_backward(b.graph, loss, ["w2"])
        assert len(b.graph.nodes) < len(full.nodes)
        # dX through layer 1 requires the relu-mask mul; sparse has none.
        sparse_ops = [n.op_type for n in b.graph.nodes]
        assert "step" not in sparse_ops

    def test_gradient_accumulation_for_shared_input(self):
        b = GraphBuilder("g")
        x = b.initializer("x", np.array([2.0], np.float32), trainable=True)
        y = b.add(b.mul(x, x), x)  # y = x^2 + x -> dy/dx = 2x + 1 = 5
        b.mark_output(y)
        res = build_backward(b.graph, y, ["x"])
        out = interpret(b.graph)
        np.testing.assert_allclose(out[res.grads["x"]], [5.0], atol=1e-5)

    def test_unreachable_wrt_raises(self):
        b, names = make_mlp_graph()
        loss = b.reduce_mean(names["logits"])
        b.mark_output(loss)
        orphan = b.initializer("orphan", np.zeros(2, np.float32),
                               trainable=True)
        with pytest.raises(AutodiffError):
            build_backward(b.graph, loss, ["orphan"])

    def test_unknown_wrt_raises(self):
        b, names = make_mlp_graph()
        loss = b.reduce_mean(names["logits"])
        with pytest.raises(AutodiffError):
            build_backward(b.graph, loss, ["nope"])

    def test_result_graph_validates(self):
        b, names = make_mlp_graph()
        loss = b.reduce_mean(b.mul(names["logits"], names["logits"]))
        b.mark_output(loss)
        build_backward(b.graph, loss, ["w1", "b1", "w2", "b2", "x"])
        validate_graph(b.graph)

    def test_mixed_precision_grads_cast_to_param_dtype(self):
        b = GraphBuilder("g")
        x = b.input("x", (2, 3))
        w = b.initializer(
            "w", np.zeros((3, 4), np.float16), trainable=True)
        xh = b.emit("cast", [x], {"dtype": "float16"})
        y = b.matmul(xh, w)
        loss = b.reduce_mean(b.emit("cast", [y], {"dtype": "float32"}))
        b.mark_output(loss)
        res = build_backward(b.graph, loss, ["w"])
        assert b.graph.spec(res.grads["w"]).dtype == DType.FLOAT16

    def test_channel_sparse_grad_matches_full_slice(self):
        """dW for W[:k] under channel-sparse == the slice of the full dW."""
        rng = np.random.default_rng(3)
        xa = rng.standard_normal((4, 6)).astype(np.float32)

        def build(slice_k):
            b = GraphBuilder("g")
            x = b.input("x", (4, 6))
            w = b.initializer("w", rng.standard_normal((6, 3))
                              .astype(np.float32), trainable=True)
            y = b.matmul(x, w)
            loss = b.reduce_mean(b.mul(y, y))
            b.mark_output(loss)
            res = build_backward(b.graph, loss, ["w"],
                                 slice_k=slice_k)
            return b.graph, res

        g_full, r_full = build({})
        g_sp, r_sp = build({"w": 2})
        # Same weights: copy from full graph.
        g_sp.initializers["w"] = g_full.initializers["w"]
        full_grad = interpret(g_full, {"x": xa})[r_full.grads["w"]]
        sp_grad = interpret(g_sp, {"x": xa})[r_sp.grads["w"]]
        assert sp_grad.shape == (2, 3)
        np.testing.assert_allclose(sp_grad, full_grad[:2], atol=1e-5)

    def test_slice_k_requires_wrt(self):
        b, names = make_mlp_graph()
        loss = b.reduce_mean(names["logits"])
        b.mark_output(loss)
        with pytest.raises(AutodiffError):
            build_backward(b.graph, loss, ["w2"], slice_k={"w1": 2})


@given(st.integers(0, 1000))
@settings(max_examples=20, deadline=None)
def test_random_elementwise_chain_gradcheck(seed):
    """Property: random chains of differentiable unary ops gradcheck."""
    rng = np.random.default_rng(seed)
    ops = ["tanh", "sigmoid", "gelu", "neg", "exp"]
    depth = int(rng.integers(1, 4))
    b = GraphBuilder("chain")
    x0 = rng.standard_normal((2, 3)).astype(np.float32) * 0.5
    x = b.initializer("x", x0, trainable=True)
    h = x
    chain = [str(rng.choice(ops)) for _ in range(depth)]
    for op in chain:
        h = b.emit(op, [h])
    loss = b.reduce_mean(b.mul(h, h))
    b.mark_output(loss)
    res = build_backward(b.graph, loss, ["x"])
    got = interpret(b.graph)[res.grads["x"]]

    def f(val):
        arr = np.asarray(val, dtype=np.float64)
        for op in chain:
            if op == "tanh":
                arr = np.tanh(arr)
            elif op == "sigmoid":
                arr = 1 / (1 + np.exp(-arr))
            elif op == "gelu":
                arr = 0.5 * arr * (1 + np.tanh(
                    np.sqrt(2 / np.pi) * (arr + 0.044715 * arr ** 3)))
            elif op == "neg":
                arr = -arr
            elif op == "exp":
                arr = np.exp(arr)
        return (arr * arr).mean()

    from conftest import numeric_grad

    want = numeric_grad(f, x0)
    np.testing.assert_allclose(got, want, atol=5e-2, rtol=5e-2)
