"""Parallel-linear (QKV) fusion pass."""

import numpy as np
import pytest

from repro.ir import GraphBuilder, validate_graph
from repro.passes import ParallelLinearFusionPass, PassContext
from repro.runtime import interpret


def qkv_graph(rng, batch=2, seq=4, dim=8, bias=True, branches=3):
    """``branches`` parallel linears off one shared activation."""
    b = GraphBuilder("qkv")
    x = b.input("x", (batch, seq, dim))
    outs = []
    for i in range(branches):
        w = b.initializer(f"w{i}", (rng.standard_normal((dim, dim)) * 0.3)
                          .astype(np.float32))
        y = b.matmul(x, w)
        if bias:
            bias_name = b.initializer(
                f"b{i}", rng.standard_normal(dim).astype(np.float32))
            y = b.bias_add(y, bias_name, axis=2)
        outs.append(y)
    total = outs[0]
    for y in outs[1:]:
        total = b.add(total, y)
    b.mark_output(total)
    return b.graph, outs


def run_pass(graph, updated=()):
    return ParallelLinearFusionPass().run(
        graph, PassContext(updated_params=set(updated)))


class TestMatching:
    def test_merges_three_branches(self, rng):
        graph, _ = qkv_graph(rng)
        result = run_pass(graph)
        assert result.changed
        assert result.stats == {"groups": 1, "branches": 3}
        matmuls = [n for n in graph.nodes if n.op_type == "matmul"]
        assert len(matmuls) == 1
        validate_graph(graph)

    def test_merges_without_bias(self, rng):
        graph, _ = qkv_graph(rng, bias=False)
        result = run_pass(graph)
        assert result.stats["groups"] == 1
        assert all(n.op_type != "bias_add" for n in graph.nodes)

    def test_concatenated_weight_shape(self, rng):
        graph, _ = qkv_graph(rng, dim=8)
        run_pass(graph)
        (mm,) = [n for n in graph.nodes if n.op_type == "matmul"]
        assert graph.spec(mm.inputs[1]).shape == (8, 24)

    def test_skips_updated_weights(self, rng):
        graph, _ = qkv_graph(rng)
        result = run_pass(graph, updated={"w0"})
        # w0 is training; only w1/w2 may merge.
        assert result.stats["branches"] == 2
        assert "w0" in graph.initializers

    def test_skips_when_all_updated(self, rng):
        graph, _ = qkv_graph(rng)
        result = run_pass(graph, updated={"w0", "w1", "w2"})
        assert not result.changed

    def test_skips_single_branch(self, rng):
        graph, _ = qkv_graph(rng, branches=1)
        assert not run_pass(graph).changed

    def test_skips_shared_weight(self, rng):
        # A weight consumed twice (e.g. tied embeddings) must not merge.
        b = GraphBuilder("g")
        x = b.input("x", (2, 8))
        w = b.initializer("w", rng.standard_normal((8, 8))
                          .astype(np.float32))
        y1, y2 = b.matmul(x, w), b.matmul(x, w)
        b.mark_output(b.add(y1, y2))
        assert not run_pass(b.graph).changed

    def test_skips_mismatched_input_dims(self, rng):
        b = GraphBuilder("g")
        x1 = b.input("x1", (2, 8))
        x2 = b.input("x2", (2, 8))
        w1 = b.initializer("w1", rng.standard_normal((8, 4))
                           .astype(np.float32))
        w2 = b.initializer("w2", rng.standard_normal((8, 4))
                           .astype(np.float32))
        b.mark_output(b.add(b.matmul(x1, w1), b.matmul(x2, w2)))
        assert not run_pass(b.graph).changed  # different activations

    def test_original_weights_dce_removed(self, rng):
        graph, _ = qkv_graph(rng)
        run_pass(graph)
        for i in range(3):
            assert f"w{i}" not in graph.initializers


class TestNumerics:
    def test_equivalence_with_bias(self, rng):
        graph, outs = qkv_graph(rng)
        x = rng.standard_normal((2, 4, 8)).astype(np.float32)
        want = interpret(graph, {"x": x})[graph.outputs[0]]
        run_pass(graph)
        got = interpret(graph, {"x": x})[graph.outputs[0]]
        np.testing.assert_allclose(want, got, rtol=1e-5)

    def test_equivalence_without_bias(self, rng):
        graph, _ = qkv_graph(rng, bias=False, branches=4)
        x = rng.standard_normal((2, 4, 8)).astype(np.float32)
        want = interpret(graph, {"x": x})[graph.outputs[0]]
        run_pass(graph)
        got = interpret(graph, {"x": x})[graph.outputs[0]]
        np.testing.assert_allclose(want, got, rtol=1e-5)

    def test_branch_outputs_as_graph_outputs(self, rng):
        # Merged branch values can themselves be graph outputs.
        graph, outs = qkv_graph(rng, bias=False)
        for out in outs:
            graph.outputs.append(out)
        x = rng.standard_normal((2, 4, 8)).astype(np.float32)
        want = interpret(graph, {"x": x})
        run_pass(graph)
        validate_graph(graph)
        got = interpret(graph, {"x": x})
        for a, b in zip(want.values(), got.values()):
            np.testing.assert_allclose(a, b, rtol=1e-5)


class TestOnRealModels:
    def test_bert_sparse_training_graph_merges_frozen_prefix(self):
        from repro.models import build_model, paper_scheme
        from repro.runtime.compiler import compile_training
        from repro.train import SGD

        forward = build_model("bert_micro", batch=2, seq_len=8,
                              num_classes=2)
        program = compile_training(forward, optimizer=SGD(0.01),
                                   scheme=paper_scheme(forward))
        stats = program.meta["report"].pass_stats["parallel_fusion"]
        assert stats["groups"] >= 1
        validate_graph(program.graph)

    def test_full_update_training_graph_has_no_merges(self):
        from repro.models import build_model
        from repro.runtime.compiler import compile_training
        from repro.sparse import full_update
        from repro.train import SGD

        forward = build_model("bert_micro", batch=2, seq_len=8,
                              num_classes=2)
        program = compile_training(forward, optimizer=SGD(0.01),
                                   scheme=full_update(forward))
        stats = program.meta["report"].pass_stats.get("parallel_fusion", {})
        assert stats.get("groups", 0) == 0

    def test_inference_graph_merges_all_attention(self):
        from repro.models import build_model
        from repro.runtime.compiler import CompileOptions, compile_inference

        forward = build_model("bert_micro", batch=2, seq_len=8,
                              num_classes=2)
        on = compile_inference(forward)
        off = compile_inference(
            forward, options=CompileOptions(parallel_fusion=False))
        mm = lambda p: sum(1 for n in p.graph.nodes  # noqa: E731
                           if n.op_type == "matmul")
        assert mm(on) < mm(off)

    def test_training_step_numerics_unchanged(self, rng):
        from repro.models import build_model, paper_scheme
        from repro.runtime import Executor
        from repro.runtime.compiler import CompileOptions, compile_training
        from repro.train import SGD

        forward = build_model("bert_micro", batch=2, seq_len=8,
                              num_classes=2)
        scheme = paper_scheme(forward)
        feeds = {forward.inputs[0]: rng.integers(
            0, 50, forward.spec(forward.inputs[0]).shape).astype(np.int64)}
        labels = rng.integers(0, 2, 2).astype(np.int64)
        losses = {}
        for enabled in (True, False):
            program = compile_training(
                forward, optimizer=SGD(0.01), scheme=scheme,
                options=CompileOptions(parallel_fusion=enabled))
            out = Executor(program).run(
                {**feeds, program.meta["labels"]: labels})
            losses[enabled] = float(out[program.meta["loss"]])
        assert losses[True] == pytest.approx(losses[False], rel=1e-5)
