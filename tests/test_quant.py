"""Quantization: params, observers, calibration, QAT, int8 conversion, QAS."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import CompileError
from repro.ir import DType, GraphBuilder, validate_graph
from repro.kernels import run_op
from repro.quant import (MinMaxObserver, MovingAverageObserver,
                         PercentileObserver, QuantConfig, QuantParams,
                         apply_qas, collect_ranges, insert_fake_quant,
                         int8_grid_training_graph, params_from_range,
                         qas_scales, quantize_inference_graph,
                         watched_values, weight_params)
from repro.runtime import Executor, interpret
from repro.runtime.compiler import compile_training
from repro.train import SGD

from conftest import make_mlp_graph


def small_convnet(rng, batch=2, with_bias=True):
    """conv-bias-relu x2 -> gap -> matmul classifier."""
    b = GraphBuilder("net")
    x = b.input("x", (batch, 3, 8, 8))
    w1 = b.initializer(
        "w1", (rng.standard_normal((8, 3, 3, 3)) * 0.2).astype(np.float32),
        trainable=True)
    h = b.conv2d(x, w1, stride=1, padding=1)
    if with_bias:
        b1 = b.initializer("b1", np.zeros(8, np.float32), trainable=True)
        h = b.bias_add(h, b1, axis=1)
    h = b.emit("relu", [h])
    w2 = b.initializer(
        "w2", (rng.standard_normal((8, 8, 3, 3)) * 0.2).astype(np.float32),
        trainable=True)
    h = b.conv2d(h, w2, stride=2, padding=1)
    if with_bias:
        b2 = b.initializer("b2", np.zeros(8, np.float32), trainable=True)
        h = b.bias_add(h, b2, axis=1)
    h = b.emit("relu", [h])
    h = b.emit("global_avg_pool", [h])
    h = b.reshape(h, (batch, 8))
    wf = b.initializer(
        "wf", (rng.standard_normal((8, 4)) * 0.3).astype(np.float32),
        trainable=True)
    b.mark_output(b.matmul(h, wf))
    return b.graph


class TestQuantParams:
    def test_round_trip_error_bounded_by_scale(self, rng):
        x = rng.standard_normal(1000).astype(np.float32) * 3
        p = params_from_range(float(x.min()), float(x.max()))
        err = np.abs(p.fake(x) - x)
        assert float(err.max()) <= float(np.max(p.scale)) / 2 + 1e-6

    def test_symmetric_has_zero_zero_point(self):
        p = params_from_range(-1.5, 0.7, symmetric=True)
        assert p.zero_point == 0
        assert p.scale == pytest.approx(1.5 / 127)

    def test_range_always_contains_zero(self):
        # All-positive data must still represent 0 exactly.
        p = params_from_range(2.0, 5.0)
        assert p.dequantize(np.array([p.zero_point], np.int8))[0] == 0.0

    def test_per_channel_weight_params(self, rng):
        w = rng.standard_normal((4, 3, 3, 3)).astype(np.float32)
        w[2] *= 10  # one loud channel must not hurt the others
        p = weight_params(w, per_channel=True, axis=0)
        assert p.axis == 0 and len(p.scale) == 4
        err = np.abs(p.fake(w) - w)
        for c in range(4):
            assert err[c].max() <= p.scale[c] / 2 + 1e-6

    def test_per_tensor_weight_params_suffer_loud_channel(self, rng):
        w = rng.standard_normal((4, 3, 3, 3)).astype(np.float32)
        w[2] *= 10
        per_tensor = weight_params(w, per_channel=False)
        per_channel = weight_params(w, per_channel=True, axis=0)
        quiet = [0, 1, 3]
        err_t = np.abs(per_tensor.fake(w) - w)[quiet].max()
        err_c = np.abs(per_channel.fake(w) - w)[quiet].max()
        assert err_c < err_t

    def test_rejects_nonpositive_scale(self):
        with pytest.raises(CompileError):
            QuantParams(scale=0.0)

    def test_rejects_per_channel_without_axis(self):
        with pytest.raises(CompileError):
            QuantParams(scale=(0.1, 0.2))

    @given(lo=st.floats(-100, 0), width=st.floats(1e-3, 200))
    @settings(max_examples=50, deadline=None)
    def test_quantize_stays_in_int8_range(self, lo, width):
        p = params_from_range(lo, lo + width)
        x = np.linspace(lo - width, lo + 2 * width, 64, dtype=np.float32)
        q = p.quantize(x)
        assert q.dtype == np.int8
        assert q.min() >= -128 and q.max() <= 127


class TestObservers:
    def test_minmax_tracks_extremes(self, rng):
        obs = MinMaxObserver()
        obs.observe(np.array([1.0, 2.0]))
        obs.observe(np.array([-3.0, 0.5]))
        assert obs.range() == (-3.0, 2.0)

    def test_unobserved_raises(self):
        with pytest.raises(CompileError):
            MinMaxObserver().range()
        assert not MinMaxObserver().ready

    def test_moving_average_damps_outlier(self):
        obs = MovingAverageObserver(momentum=0.9)
        for _ in range(20):
            obs.observe(np.array([-1.0, 1.0]))
        obs.observe(np.array([-100.0, 100.0]))
        lo, hi = obs.range()
        assert hi < 15  # a single outlier cannot blow up the range

    def test_percentile_clips_tails(self, rng):
        x = rng.standard_normal(100_000).astype(np.float32)
        x[0] = 1e6
        obs = PercentileObserver(percentile=99.0)
        obs.observe(x)
        lo, hi = obs.range()
        assert hi < 10

    def test_percentile_validates_argument(self):
        with pytest.raises(CompileError):
            PercentileObserver(percentile=10.0)

    def test_moving_average_validates_momentum(self):
        with pytest.raises(CompileError):
            MovingAverageObserver(momentum=1.5)


class TestKernels:
    def test_fake_quant_idempotent(self, rng):
        x = rng.standard_normal((4, 5)).astype(np.float32)
        attrs = {"scale": 0.05, "zero_point": 3, "bits": 8, "axis": None}
        (once,) = run_op("fake_quant", [x], attrs)
        (twice,) = run_op("fake_quant", [once], attrs)
        np.testing.assert_array_equal(once, twice)

    def test_quantize_dequantize_inverse_on_grid(self, rng):
        p = QuantParams(scale=0.1, zero_point=-5)
        grid = (np.arange(-20, 20) * 0.1).astype(np.float32)
        (q,) = run_op("quantize_linear", [grid], p.attrs())
        (back,) = run_op("dequantize_linear", [q], p.attrs())
        np.testing.assert_allclose(back, grid, atol=1e-6)

    def test_matmul_i8_matches_float_reference(self, rng):
        a = rng.standard_normal((6, 10)).astype(np.float32)
        w = (rng.standard_normal((10, 4)) * 0.4).astype(np.float32)
        ap = params_from_range(float(a.min()), float(a.max()))
        wp = weight_params(w, axis=1)
        ref = a @ w
        op = params_from_range(float(ref.min()), float(ref.max()))
        (y,) = run_op("matmul_i8", [ap.quantize(a), wp.quantize(w)], {
            "x_scale": ap.scale, "x_zero_point": ap.zero_point,
            "w_scale": wp.scale, "out_scale": op.scale,
            "out_zero_point": op.zero_point, "activation": None,
        })
        got = op.dequantize(y)
        assert np.abs(got - ref).max() < 12 * float(np.max(op.scale))

    def test_conv2d_i8_with_bias_and_relu(self, rng):
        x = rng.standard_normal((2, 3, 6, 6)).astype(np.float32)
        w = (rng.standard_normal((4, 3, 3, 3)) * 0.3).astype(np.float32)
        bias = rng.standard_normal(4).astype(np.float32)
        from repro.kernels.conv2d import conv2d_forward
        ref = np.maximum(
            conv2d_forward(x, w, 1, 1) + bias.reshape(1, -1, 1, 1), 0)
        xp = params_from_range(float(x.min()), float(x.max()))
        wp = weight_params(w, axis=0)
        op = params_from_range(0.0, float(ref.max()))
        mult = np.float64(xp.scale) * np.asarray(wp.scale)
        bias_i32 = np.round(bias / mult).astype(np.int32)
        (y,) = run_op("conv2d_i8",
                      [xp.quantize(x), wp.quantize(w), bias_i32], {
                          "stride": 1, "padding": 1, "groups": 1,
                          "x_scale": xp.scale, "x_zero_point": xp.zero_point,
                          "w_scale": wp.scale, "out_scale": op.scale,
                          "out_zero_point": op.zero_point,
                          "activation": "relu",
                      })
        got = op.dequantize(y)
        assert got.min() >= -1e-6  # relu folded into requantization
        assert np.abs(got - ref).max() < 20 * float(np.max(op.scale))

    def test_add_i8_matches_float_add(self, rng):
        a = rng.standard_normal((3, 5)).astype(np.float32)
        c = rng.standard_normal((3, 5)).astype(np.float32) * 2
        ap = params_from_range(float(a.min()), float(a.max()))
        cp = params_from_range(float(c.min()), float(c.max()))
        ref = a + c
        op = params_from_range(float(ref.min()), float(ref.max()))
        (y,) = run_op("add_i8", [ap.quantize(a), cp.quantize(c)], {
            "a_scale": ap.scale, "a_zero_point": ap.zero_point,
            "b_scale": cp.scale, "b_zero_point": cp.zero_point,
            "out_scale": op.scale, "out_zero_point": op.zero_point,
            "activation": None,
        })
        got = op.dequantize(y)
        assert np.abs(got - ref).max() < 4 * float(np.max(op.scale))

    def test_global_avg_pool_i8_matches_float(self, rng):
        x = rng.standard_normal((2, 4, 6, 6)).astype(np.float32)
        p = params_from_range(float(x.min()), float(x.max()))
        (y,) = run_op("global_avg_pool_i8", [p.quantize(x)], {})
        got = p.dequantize(y)
        ref = x.mean(axis=(2, 3))
        assert y.shape == (2, 4)
        assert np.abs(got - ref).max() < 2 * float(np.max(p.scale))

    def test_quantized_ops_shape_inference(self):
        b = GraphBuilder("g")
        x = b.input("x", (2, 3), DType.INT8)
        w = b.initializer("w", np.zeros((3, 4), np.int8))
        y = b.emit("matmul_i8", [x, w],
                   {"x_scale": 0.1, "x_zero_point": 0, "w_scale": 0.1,
                    "out_scale": 0.1, "out_zero_point": 0,
                    "activation": None})
        assert b.spec(y).shape == (2, 4)
        assert b.spec(y).dtype == DType.INT8

    def test_matmul_i8_rejects_float_operands(self):
        b = GraphBuilder("g")
        x = b.input("x", (2, 3))
        w = b.initializer("w", np.zeros((3, 4), np.int8))
        with pytest.raises(Exception):
            b.emit("matmul_i8", [x, w], {"x_scale": 0.1, "w_scale": 0.1,
                                         "out_scale": 0.1})


class TestCalibration:
    def test_watched_values_cover_chain_tails(self, rng):
        g = small_convnet(rng)
        watched = watched_values(g)
        # Every conv/matmul output plus the post-bias/relu values.
        relu_outs = [n.outputs[0] for n in g.nodes if n.op_type == "relu"]
        for out in relu_outs:
            assert out in watched

    def test_collect_ranges_sees_every_watched_value(self, rng):
        g = small_convnet(rng)
        batches = [{"x": rng.standard_normal((2, 3, 8, 8))
                    .astype(np.float32)} for _ in range(3)]
        observers = collect_ranges(g, batches)
        assert set(observers) == set(watched_values(g))
        assert all(o.ready for o in observers.values())

    def test_collect_ranges_requires_batches(self, rng):
        g = small_convnet(rng)
        with pytest.raises(ValueError):
            collect_ranges(g, [])


class TestQATConversion:
    def test_fake_quant_inserted_on_weights_and_acts(self, rng):
        g = small_convnet(rng)
        batches = [{"x": rng.standard_normal((2, 3, 8, 8))
                    .astype(np.float32)}]
        qat = insert_fake_quant(g, collect_ranges(g, batches))
        validate_graph(qat)
        fq = [n for n in qat.nodes if n.op_type == "fake_quant"]
        # 3 weights + 3 input activations (x, relu1 out, flattened features)
        assert len(fq) == 6

    def test_qat_output_close_to_float(self, rng):
        g = small_convnet(rng)
        batches = [{"x": rng.standard_normal((2, 3, 8, 8))
                    .astype(np.float32)} for _ in range(3)]
        qat = insert_fake_quant(g, collect_ranges(g, batches))
        ref = interpret(g, batches[0])[g.outputs[0]]
        got = interpret(qat, batches[0])[qat.outputs[0]]
        assert np.abs(ref - got).max() < 0.05

    def test_qat_graph_trains(self, rng):
        g = small_convnet(rng)
        batches = [{"x": rng.standard_normal((2, 3, 8, 8))
                    .astype(np.float32)}]
        qat = insert_fake_quant(g, collect_ranges(g, batches))
        program = compile_training(qat, optimizer=SGD(0.1))
        executor = Executor(program)
        labels = np.array([0, 1], np.int64)
        losses = []
        for _ in range(60):
            out = executor.run(
                {"x": batches[0]["x"], program.meta["labels"]: labels})
            losses.append(float(out[program.meta["loss"]]))
        assert losses[-1] < losses[0] * 0.6

    def test_shared_weight_wrapped_once(self, rng):
        b = GraphBuilder("g")
        x = b.input("x", (2, 4))
        w = b.initializer("w", rng.standard_normal((4, 4))
                          .astype(np.float32), trainable=True)
        h = b.emit("relu", [b.matmul(x, w)])
        b.mark_output(b.matmul(h, w))  # same weight used twice
        batches = [{"x": rng.standard_normal((2, 4)).astype(np.float32)}]
        qat = insert_fake_quant(b.graph, collect_ranges(b.graph, batches))
        fq_on_w = [n for n in qat.nodes
                   if n.op_type == "fake_quant" and n.inputs[0] == w]
        assert len(fq_on_w) == 1


class TestInt8Deployment:
    def test_all_linear_ops_converted(self, rng):
        g = small_convnet(rng)
        batches = [{"x": rng.standard_normal((2, 3, 8, 8))
                    .astype(np.float32)} for _ in range(3)]
        i8 = quantize_inference_graph(g, collect_ranges(g, batches))
        validate_graph(i8)
        ops = {n.op_type for n in i8.nodes}
        assert "conv2d" not in ops and "matmul" not in ops
        assert "conv2d_i8" in ops and "matmul_i8" in ops
        # bias and relu folded away entirely
        assert "bias_add" not in ops and "relu" not in ops

    def test_int8_output_close_to_float(self, rng):
        g = small_convnet(rng)
        batches = [{"x": rng.standard_normal((2, 3, 8, 8))
                    .astype(np.float32)} for _ in range(4)]
        i8 = quantize_inference_graph(g, collect_ranges(g, batches))
        ref = interpret(g, batches[0])[g.outputs[0]]
        got = interpret(i8, batches[0])[i8.outputs[0]]
        assert np.abs(ref - got).max() < 0.05

    def test_int8_argmax_agrees_with_float(self, rng):
        g = small_convnet(rng, batch=8)
        batches = [{"x": rng.standard_normal((8, 3, 8, 8))
                    .astype(np.float32)} for _ in range(4)]
        i8 = quantize_inference_graph(g, collect_ranges(g, batches))
        ref = interpret(g, batches[0])[g.outputs[0]]
        got = interpret(i8, batches[0])[i8.outputs[0]]
        agree = (ref.argmax(1) == got.argmax(1)).mean()
        assert agree >= 0.75

    def test_int8_graph_is_smaller_in_memory(self, rng):
        from repro.memory import profile_memory
        g = small_convnet(rng)
        batches = [{"x": rng.standard_normal((2, 3, 8, 8))
                    .astype(np.float32)} for _ in range(2)]
        i8 = quantize_inference_graph(g, collect_ranges(g, batches))
        p32, p8 = profile_memory(g), profile_memory(i8)
        assert p8.peak_total_bytes < p32.peak_total_bytes / 2

    def test_int8_tensors_are_int8(self, rng):
        g = small_convnet(rng)
        batches = [{"x": rng.standard_normal((2, 3, 8, 8))
                    .astype(np.float32)}]
        i8 = quantize_inference_graph(g, collect_ranges(g, batches))
        for node in i8.nodes:
            if node.op_type in ("conv2d_i8", "matmul_i8"):
                assert i8.spec(node.outputs[0]).dtype == DType.INT8

    def test_residual_add_stays_on_int8_grid(self, rng):
        # MCUNet/ResNet residual adds must convert to add_i8 — falling
        # back to float costs two extra kernels per block on real DSPs.
        b = GraphBuilder("res")
        x = b.input("x", (2, 4, 6, 6))
        w1 = b.initializer(
            "w1", (rng.standard_normal((4, 4, 3, 3)) * 0.2)
            .astype(np.float32), trainable=True)
        h = b.emit("relu", [b.conv2d(x, w1, padding=1)])
        skip = b.add(h, x)
        gap = b.emit("global_avg_pool", [skip])
        wf = b.initializer(
            "wf", (rng.standard_normal((4, 3)) * 0.4).astype(np.float32),
            trainable=True)
        b.mark_output(b.matmul(gap, wf))
        g = b.graph
        batches = [{"x": rng.standard_normal((2, 4, 6, 6))
                    .astype(np.float32)} for _ in range(3)]
        i8 = quantize_inference_graph(g, collect_ranges(g, batches))
        validate_graph(i8)
        ops = {n.op_type for n in i8.nodes}
        assert "add_i8" in ops and "global_avg_pool_i8" in ops
        assert "add" not in ops and "global_avg_pool" not in ops
        ref = interpret(g, batches[0])[g.outputs[0]]
        got = interpret(i8, batches[0])[i8.outputs[0]]
        assert np.abs(ref - got).max() < 0.1

    def test_full_mcunet_micro_converts_numerically(self, rng):
        from repro.models import build_model
        g = build_model("mcunet_micro", batch=2, num_classes=3)
        feeds = {g.inputs[0]: rng.standard_normal(
            g.spec(g.inputs[0]).shape).astype(np.float32)}
        i8 = quantize_inference_graph(g, collect_ranges(g, [feeds]))
        validate_graph(i8)
        ops = {n.op_type for n in i8.nodes}
        assert "conv2d" not in ops, "all convs should be int8"
        ref = interpret(g, feeds)[g.outputs[0]]
        got = interpret(i8, feeds)[i8.outputs[0]]
        assert (ref.argmax(1) == got.argmax(1)).mean() >= 0.5

    def test_per_channel_beats_per_tensor_on_imbalanced_conv(self, rng):
        # Conv weights with wildly different per-channel magnitudes:
        # per-channel scales (the SNPE default) must quantize the quiet
        # channels' outputs more accurately than one shared scale.
        b = GraphBuilder("g")
        x = b.input("x", (4, 3, 8, 8))
        w = (rng.standard_normal((8, 3, 3, 3)) * 0.2).astype(np.float32)
        w[0] *= 10.0  # one loud output channel
        wn = b.initializer("w", w, trainable=True)
        b.mark_output(b.conv2d(x, wn, padding=1))
        g = b.graph
        batches = [{"x": rng.standard_normal((4, 3, 8, 8))
                    .astype(np.float32)} for _ in range(3)]
        ranges = collect_ranges(g, batches)
        quiet = slice(1, None)  # all channels except the loud one
        errs = {}
        for per_channel in (True, False):
            i8 = quantize_inference_graph(
                g, ranges, QuantConfig(per_channel=per_channel))
            ref = interpret(g, batches[0])[g.outputs[0]]
            got = interpret(i8, batches[0])[i8.outputs[0]]
            errs[per_channel] = float(
                np.abs(ref - got)[:, quiet].max())
        assert errs[True] < errs[False]

    def test_rejects_non_8bit_config(self, rng):
        g = small_convnet(rng)
        batches = [{"x": rng.standard_normal((2, 3, 8, 8))
                    .astype(np.float32)}]
        with pytest.raises(CompileError):
            quantize_inference_graph(g, collect_ranges(g, batches),
                                     QuantConfig(weight_bits=4))

    def test_missing_ranges_fall_back_to_float(self, rng):
        # With only the input range calibrated, no linear op can prove its
        # output range, so conversion degrades gracefully to the original
        # float ops and the graph stays numerically identical.
        g = small_convnet(rng)
        converted = quantize_inference_graph(g, {g.inputs[0]: (-3.0, 3.0)})
        validate_graph(converted)
        ops = {n.op_type for n in converted.nodes}
        assert "conv2d_i8" not in ops and "matmul_i8" not in ops
        x = {"x": rng.standard_normal((2, 3, 8, 8)).astype(np.float32)}
        np.testing.assert_allclose(
            interpret(g, x)[g.outputs[0]],
            interpret(converted, x)[converted.outputs[0]], atol=1e-6)

    def test_missing_range_lookup_raises_with_value_name(self):
        from repro.quant.convert import _ActRanges
        acts = _ActRanges({}, QuantConfig())
        with pytest.raises(CompileError, match="calibrated range"):
            acts.params("hidden.3")


class TestQAS:
    def _setup(self, rng):
        # Bias-free on purpose: fp32 biases train without QAS and would
        # mask the stall this class asserts on.
        b = GraphBuilder("mlp")
        x = b.input("x", (4, 5))
        w1 = b.initializer("w1", (rng.standard_normal((5, 12)) * 0.4)
                           .astype(np.float32), trainable=True)
        h = b.emit("relu", [b.matmul(x, w1)])
        w2 = b.initializer("w2", (rng.standard_normal((12, 3)) * 0.4)
                           .astype(np.float32), trainable=True)
        b.mark_output(b.matmul(h, w2))
        g = b.graph
        batches = [{"x": rng.standard_normal((4, 5)).astype(np.float32)}
                   for _ in range(3)]
        qat = insert_fake_quant(g, collect_ranges(g, batches))
        return g, qat, batches

    def test_grid_graph_preserves_forward(self, rng):
        _, qat, batches = self._setup(rng)
        grid = int8_grid_training_graph(qat)
        validate_graph(grid)
        ref = interpret(qat, batches[0])[qat.outputs[0]]
        got = interpret(grid, batches[0])[grid.outputs[0]]
        np.testing.assert_allclose(ref, got, atol=1e-4)

    def test_grid_weights_have_int8_magnitudes(self, rng):
        _, qat, _ = self._setup(rng)
        grid = int8_grid_training_graph(qat)
        for param in grid.metadata["int8_grid_params"]:
            mags = np.abs(grid.initializers[param])
            assert mags.max() > 10, "weight should live on the int8 grid"

    def test_qas_factors_are_inverse_square_scales(self, rng):
        _, qat, _ = self._setup(rng)
        grid = int8_grid_training_graph(qat)
        for param, factor in qas_scales(grid).items():
            s = grid.metadata["int8_grid_params"][param]
            assert factor == pytest.approx(1.0 / (s * s))

    def test_grid_training_stalls_without_qas_learns_with(self, rng):
        _, qat, _ = self._setup(rng)
        grid = int8_grid_training_graph(qat)
        X = rng.standard_normal((4, 5)).astype(np.float32)
        Y = rng.integers(0, 3, size=4).astype(np.int64)

        def run(graph, use_qas):
            program = compile_training(graph, optimizer=SGD(0.1))
            if use_qas:
                assert apply_qas(program.graph) > 0
            executor = Executor(program)
            losses = [float(executor.run(
                {"x": X, program.meta["labels"]: Y})[program.meta["loss"]])
                for _ in range(25)]
            return losses

        stalled = run(grid, use_qas=False)
        assert stalled[-1] > stalled[0] * 0.95
        learned = run(grid, use_qas=True)
        assert learned[-1] < learned[0] * 0.7
        # QAS uses the per-tensor mean of per-channel scales, so dynamics
        # track the float run closely but not bit-exactly.
        float_ref = run(qat, use_qas=False)
        assert learned[-1] == pytest.approx(float_ref[-1], rel=0.25)

    def test_apply_qas_noop_without_grid_params(self, rng):
        _, qat, _ = self._setup(rng)
        program = compile_training(qat, optimizer=SGD(0.1))
        assert apply_qas(program.graph) == 0

    @given(scale=st.floats(1e-4, 0.5))
    @settings(max_examples=25, deadline=None)
    def test_qas_factor_roundtrip(self, scale):
        g = GraphBuilder("g").graph
        g.metadata["int8_grid_params"] = {"w": scale}
        assert qas_scales(g)["w"] == pytest.approx(1.0 / scale ** 2)
