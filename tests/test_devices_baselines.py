"""Device cost model and baseline framework simulations."""

import dataclasses

import numpy as np
import pytest

from repro.baselines import (FRAMEWORKS, TABLE1_COLUMNS, feature_row,
                             get_framework, simulate_inference_projection,
                             simulate_training)
from repro.devices import (DEVICES, estimate_latency, get_device, op_class)
from repro.errors import DeviceError
from repro.models import build_model, paper_scheme
from repro.runtime.compiler import CompileOptions, compile_training
from repro.sparse import full_update
from repro.train import SGD

from conftest import make_mlp_graph


@pytest.fixture(scope="module")
def mcunet_graph():
    return build_model("mcunet_micro", batch=2)


def _program(graph, **opts):
    return compile_training(graph, optimizer=SGD(0.01),
                            options=CompileOptions(materialize_state=False,
                                                   **opts))


class TestDeviceCatalog:
    def test_all_paper_platforms_present(self):
        for key in ("raspberry_pi_4", "jetson_nano", "jetson_orin",
                    "apple_m1", "snapdragon_cpu", "snapdragon_dsp",
                    "stm32f746"):
            assert key in DEVICES

    def test_unknown_device_raises(self):
        with pytest.raises(DeviceError):
            get_device("cray")

    def test_fp16_peak(self):
        orin = get_device("jetson_orin")
        assert orin.peak_for(2) > orin.peak_for(4)
        pi = get_device("raspberry_pi_4")
        assert pi.peak_for(2) == pi.peak_for(4)  # no fp16 units modelled

    def test_mcu_ram_tiny(self):
        assert get_device("stm32f746").ram_mb < 1

    def test_op_class_depthwise(self):
        assert op_class("conv2d", {"groups": 8}) == "depthwise"
        assert op_class("conv2d", {"groups": 1}) == "gemm"
        assert op_class("softmax", {}) == "normalize"


class TestLatencyModel:
    def test_interpreted_adds_dispatch(self, mcunet_graph):
        program = _program(mcunet_graph)
        device = get_device("raspberry_pi_4")
        compiled = estimate_latency(program.graph, program.schedule, device)
        eager = estimate_latency(program.graph, program.schedule, device,
                                 interpreted=True, runtime_autodiff=True)
        assert eager.total_us > compiled.total_us
        assert eager.dispatch_us > 0 and eager.autodiff_us > 0

    def test_kernel_quality_scales_compute(self, mcunet_graph):
        program = _program(mcunet_graph)
        device = get_device("raspberry_pi_4")
        fast = estimate_latency(program.graph, program.schedule, device)
        slow = estimate_latency(program.graph, program.schedule, device,
                                kernel_quality=0.25)
        assert slow.compute_us > fast.compute_us

    def test_winograd_reduces_latency(self):
        """Frozen 3x3 convs bound to Winograd run measurably faster."""
        g = build_model("resnet_micro", batch=2)
        scheme = paper_scheme(g)
        device = get_device("raspberry_pi_4")
        with_wino = compile_training(
            g, optimizer=SGD(0.01), scheme=scheme,
            options=CompileOptions(materialize_state=False))
        without = compile_training(
            g, optimizer=SGD(0.01), scheme=scheme,
            options=CompileOptions(materialize_state=False, winograd=False))
        t_with = estimate_latency(with_wino.graph, with_wino.schedule,
                                  device).total_us
        t_without = estimate_latency(without.graph, without.schedule,
                                     device).total_us
        assert t_with < t_without

    def test_fusion_reduces_kernel_count(self, mcunet_graph):
        device = get_device("raspberry_pi_4")
        fused = _program(mcunet_graph)
        unfused = _program(mcunet_graph, fusion=False)
        r_fused = estimate_latency(fused.graph, fused.schedule, device)
        r_unfused = estimate_latency(unfused.graph, unfused.schedule, device)
        assert r_fused.num_kernels < r_unfused.num_kernels

    def test_fp16_graph_faster_on_orin(self):
        g = build_model("llama_micro", batch=1, seq_len=8)
        program = _program(g)
        orin = get_device("jetson_orin")
        base = estimate_latency(program.graph, program.schedule, orin)
        assert base.total_us > 0


class TestFrameworkProfiles:
    def test_table1_feature_matrix(self):
        rows = {key: feature_row(p) for key, p in FRAMEWORKS.items()}
        pe = rows["pockengine"]
        assert all(pe[c].startswith("yes") for c in TABLE1_COLUMNS)
        assert rows["pytorch"]["Support Sparse-BP"] == "no"
        assert rows["pytorch"]["Compile-Time AutoDiff"] == "no"
        assert rows["tflite_micro"]["Support Training"] == "no"
        assert rows["mnn"]["Run without Host Language"] == "yes"

    def test_unknown_framework(self):
        with pytest.raises(DeviceError):
            get_framework("caffe")

    def test_transformer_penalty_applies_to_gemm(self):
        pt = FRAMEWORKS["pytorch"]
        cnn_q = pt.quality_on("gpu", "cnn")
        tfm_q = pt.quality_on("gpu", "transformer")
        assert tfm_q["gemm"] < cnn_q["gemm"]
        assert tfm_q["default"] == cnn_q["default"]


class TestSimulation:
    def test_unavailable_framework_returns_none(self, mcunet_graph):
        assert simulate_training(mcunet_graph, FRAMEWORKS["pytorch"],
                                 get_device("snapdragon_dsp")) is None
        assert simulate_training(mcunet_graph, FRAMEWORKS["mnn"],
                                 get_device("raspberry_pi_4"),
                                 model_family="transformer") is None

    def test_pockengine_beats_interpreted_baselines(self, mcunet_graph):
        device = get_device("raspberry_pi_4")
        scheme = full_update(mcunet_graph)
        pe = simulate_training(mcunet_graph, FRAMEWORKS["pockengine"],
                               device, scheme=scheme)
        for fw in ("pytorch", "tensorflow", "jax", "mnn"):
            base = simulate_training(mcunet_graph, FRAMEWORKS[fw], device,
                                     scheme=scheme)
            assert pe.throughput_per_s > 2 * base.throughput_per_s, fw

    def test_sparse_faster_and_smaller_than_full(self, mcunet_graph):
        device = get_device("raspberry_pi_4")
        pe = FRAMEWORKS["pockengine"]
        full = simulate_training(mcunet_graph, pe, device,
                                 scheme=full_update(mcunet_graph))
        sparse = simulate_training(mcunet_graph, pe, device,
                                   scheme=paper_scheme(mcunet_graph))
        assert sparse.throughput_per_s > full.throughput_per_s
        assert sparse.memory_mb < full.memory_mb

    def test_masked_sparse_gains_nothing_for_baselines(self, mcunet_graph):
        """Paper claim: existing frameworks cannot convert sparse-BP into
        measured speedup — masked sparse runs the full backward."""
        device = get_device("raspberry_pi_4")
        pt = FRAMEWORKS["pytorch"]
        full = simulate_training(mcunet_graph, pt, device,
                                 scheme=full_update(mcunet_graph))
        sparse = simulate_training(mcunet_graph, pt, device,
                                   scheme=paper_scheme(mcunet_graph))
        # Masked sparse still runs the full backward: the only savings are
        # the skipped apply ops — nothing like PockEngine's pruned speedup.
        assert sparse.latency_ms > 0.85 * full.latency_ms
        pe = FRAMEWORKS["pockengine"]
        pe_full = simulate_training(mcunet_graph, pe, device,
                                    scheme=full_update(mcunet_graph))
        pe_sparse = simulate_training(mcunet_graph, pe, device,
                                      scheme=paper_scheme(mcunet_graph))
        masked_speedup = full.latency_ms / sparse.latency_ms
        pruned_speedup = pe_full.latency_ms / pe_sparse.latency_ms
        assert pruned_speedup > masked_speedup + 0.15

    def test_oom_detection_on_mcu(self):
        g = build_model("mcunet_micro", batch=8)
        result = simulate_training(g, FRAMEWORKS["pockengine"],
                                   get_device("stm32f746"),
                                   scheme=full_update(g))
        assert result.memory_mb > 0

    def test_inference_projection_for_tflite_micro(self, mcunet_graph):
        result = simulate_inference_projection(
            mcunet_graph, FRAMEWORKS["tflite_micro"],
            get_device("stm32f746"))
        assert result is not None and result.latency_ms > 0

    def test_items_per_batch_override(self, mcunet_graph):
        device = get_device("raspberry_pi_4")
        r1 = simulate_training(mcunet_graph, FRAMEWORKS["pockengine"],
                               device, items_per_batch=2)
        r2 = simulate_training(mcunet_graph, FRAMEWORKS["pockengine"],
                               device, items_per_batch=4)
        assert r2.throughput_per_s == pytest.approx(
            2 * r1.throughput_per_s, rel=1e-6)


class TestViewOps:
    def test_views_free_when_compiled(self):
        from repro.devices import estimate_latency, get_device
        from repro.ir import GraphBuilder

        b = GraphBuilder("g")
        x = b.input("x", (4, 8))
        y = b.reshape(x, (8, 4))
        z = b.slice(y, 0, 0, 4)
        b.mark_output(b.emit("tanh", [z]))
        device = get_device("raspberry_pi_4")
        schedule = b.graph.topological_order()
        report = estimate_latency(b.graph, schedule, device)
        # Only tanh counts as a kernel; reshape/slice are pointer ops.
        assert report.num_kernels == 1

    def test_views_still_pay_host_dispatch_when_interpreted(self):
        from repro.devices import estimate_latency, get_device
        from repro.ir import GraphBuilder

        b = GraphBuilder("g")
        x = b.input("x", (4, 8))
        y = b.reshape(x, (8, 4))
        b.mark_output(b.emit("tanh", [y]))
        device = get_device("raspberry_pi_4")
        schedule = b.graph.topological_order()
        compiled = estimate_latency(b.graph, schedule, device)
        eager = estimate_latency(b.graph, schedule, device,
                                 interpreted=True)
        # Eager pays dispatch for BOTH nodes (PyTorch dispatches views).
        assert eager.dispatch_us \
            == pytest.approx(2 * device.host_dispatch_us)
        assert eager.total_us > compiled.total_us

    def test_int8_peak_used_for_int8_tensors(self):
        from repro.devices import get_device

        dsp = get_device("snapdragon_dsp")
        assert dsp.peak_for(1) > dsp.peak_for(4)
        nano = get_device("jetson_nano")  # no int8 unit: falls to fp16
        assert nano.peak_for(1) == nano.peak_for(2)
