"""Cross-process program cache, session eviction, process-pool backend."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ServeError
from repro.runtime.compiler import compile_training
from repro.serve import FineTuneService, ProgramCache, SessionManager
from repro.train import SGD

from conftest import make_mlp_graph


def _program(seed=0):
    builder, _ = make_mlp_graph(seed=seed)
    return compile_training(builder.graph, optimizer=SGD(0.05))


def _fail_build():
    raise AssertionError("builder must not run")


class TestPersistentProgramCache:
    def test_build_persists_artifact(self, tmp_path):
        cache = ProgramCache(capacity=4, cache_dir=tmp_path)
        entry = cache.get_or_build("k1", _program)
        assert cache.stats.compiles == 1
        assert cache.stats.disk_writes == 1
        assert cache.artifact_path("k1") is not None
        assert entry.program.meta.get("__plan__") is not None

    def test_second_cache_loads_without_compiling(self, tmp_path, rng):
        ProgramCache(capacity=4, cache_dir=tmp_path).get_or_build(
            "k1", _program)
        fresh = ProgramCache(capacity=4, cache_dir=tmp_path)
        entry = fresh.get_or_build("k1", _fail_build)
        assert entry.from_disk
        assert fresh.stats.disk_hits == 1
        assert fresh.stats.compiles == 0
        # The persisted program is executable and carries a bound plan.
        assert entry.program.meta.get("__plan__") is not None
        program = entry.program
        x = rng.standard_normal((4, 5)).astype(np.float32)
        y = rng.integers(0, 3, 4).astype(np.int64)
        from repro.runtime import Executor
        out = Executor(program).run({"x": x, program.meta["labels"]: y})
        assert np.isfinite(out[program.meta["loss"]])

    def test_unreadable_artifact_recompiles_and_repairs(self, tmp_path):
        cache = ProgramCache(capacity=4, cache_dir=tmp_path)
        cache.get_or_build("k1", _program)
        (tmp_path / "k1" / "manifest.json").write_text("{broken")
        fresh = ProgramCache(capacity=4, cache_dir=tmp_path)
        entry = fresh.get_or_build("k1", _program)
        assert not entry.from_disk
        assert fresh.stats.compiles == 1
        # The rebuild overwrote the broken artifact: the next process
        # loads from disk again instead of hitting it forever.
        repaired = ProgramCache(capacity=4, cache_dir=tmp_path)
        assert repaired.get_or_build("k1", _fail_build).from_disk

    def test_missing_graph_file_recompiles_and_repairs(self, tmp_path):
        cache = ProgramCache(capacity=4, cache_dir=tmp_path)
        cache.get_or_build("k1", _program)
        (tmp_path / "k1" / "graph.json").unlink()
        fresh = ProgramCache(capacity=4, cache_dir=tmp_path)
        entry = fresh.get_or_build("k1", _program)
        assert not entry.from_disk
        assert fresh.stats.compiles == 1
        repaired = ProgramCache(capacity=4, cache_dir=tmp_path)
        assert repaired.get_or_build("k1", _fail_build).from_disk

    def test_plan_version_skew_recompiles_and_counts(self, tmp_path):
        """A persisted artifact whose embedded plan speaks a newer (or
        older-than-supported) spec version is a counted miss, never a
        hard failure: the serve load path recompiles and overwrites."""
        import json

        cache = ProgramCache(capacity=4, cache_dir=tmp_path)
        cache.get_or_build("k1", _program)
        manifest_path = tmp_path / "k1" / "manifest.json"
        manifest = json.loads(manifest_path.read_text())
        manifest["plan"]["plan_version"] = 999
        manifest_path.write_text(json.dumps(manifest))
        fresh = ProgramCache(capacity=4, cache_dir=tmp_path)
        entry = fresh.get_or_build("k1", _program)
        assert not entry.from_disk
        assert fresh.stats.compiles == 1
        assert fresh.stats.plan_version_miss == 1
        assert entry.program.meta.get("__plan__") is not None
        # The skewed artifact was overwritten with a current-version one.
        current = json.loads(manifest_path.read_text())
        from repro.runtime.plan import PLAN_SPEC_VERSION
        assert current["plan"]["plan_version"] == PLAN_SPEC_VERSION
        repaired = ProgramCache(capacity=4, cache_dir=tmp_path)
        assert repaired.get_or_build("k1", _fail_build).from_disk
        assert repaired.stats.plan_version_miss == 0

    def test_memoryless_cache_unchanged(self):
        cache = ProgramCache(capacity=4)
        entry = cache.get_or_build("k1", _program)
        assert not entry.from_disk
        assert cache.artifact_path("k1") is None
        assert cache.stats.disk_writes == 0

    def test_eviction_counts_dropped_plans(self):
        """Satellite: evicting a prebuilt plan is a metric, not silence."""
        cache = ProgramCache(capacity=1)
        cache.get_or_build("k1", _program)
        cache.get_or_build("k2", lambda: _program(seed=1))  # evicts k1
        assert cache.stats.evictions == 1
        assert cache.stats.prebuilt_plans_dropped == 1
        # Re-admission re-prebuilds eagerly: no tenant pays lowering.
        entry = cache.get_or_build("k1", _program)
        assert entry.program.meta.get("__plan__") is not None

    def test_explicit_evict_and_clear_count_plans(self):
        cache = ProgramCache(capacity=4)
        cache.get_or_build("k1", _program)
        cache.get_or_build("k2", lambda: _program(seed=1))
        assert cache.evict("k1")
        cache.clear()
        assert cache.stats.prebuilt_plans_dropped == 2


class _FakeFamily:
    def __init__(self):
        self._template = {"w": np.zeros(4, np.float32)}

    def template_state(self):
        return self._template


class TestSessionEviction:
    def _manager(self, **kwargs):
        clock = {"now": 0.0}
        evicted = []
        manager = SessionManager(clock=lambda: clock["now"],
                                 on_evict=evicted.append, **kwargs)
        return manager, clock, evicted

    def test_ttl_sweep_evicts_idle(self):
        manager, clock, evicted = self._manager(ttl=10.0)
        a = manager.create(_FakeFamily())
        b = manager.create(_FakeFamily())
        clock["now"] = 5.0
        manager.get(b.id)  # touch b
        clock["now"] = 12.0
        gone = manager.sweep(force=True)
        assert [s.id for s in gone] == [a.id]
        assert manager.evicted == 1
        assert evicted == [a]
        assert manager.get(b.id) is b
        with pytest.raises(ServeError, match="unknown session"):
            manager.get(a.id)

    def test_sweep_throttles_on_request_path(self):
        manager, clock, _ = self._manager(ttl=1.0)
        manager.create(_FakeFamily())
        clock["now"] = 2.0
        manager.sweep(force=True)
        clock["now"] = 2.5
        manager.create(_FakeFamily())
        assert manager.sweep() == []  # < 1s since last sweep

    def test_max_sessions_evicts_idle_lru(self):
        manager, clock, evicted = self._manager(max_sessions=2)
        a = manager.create(_FakeFamily())
        clock["now"] = 1.0
        b = manager.create(_FakeFamily())
        clock["now"] = 2.0
        manager.get(a.id)  # a is now more recently used than b
        clock["now"] = 3.0
        c = manager.create(_FakeFamily())  # evicts b (LRU)
        assert evicted == [b]
        assert len(manager) == 2
        assert manager.get(a.id) is a
        assert manager.get(c.id) is c

    def test_busy_sessions_never_evicted(self):
        clock = {"now": 0.0}
        busy_ids = set()
        manager = SessionManager(max_sessions=1, ttl=10.0,
                                 busy=lambda sid: sid in busy_ids,
                                 clock=lambda: clock["now"])
        a = manager.create(_FakeFamily())
        busy_ids.add(a.id)
        clock["now"] = 100.0
        assert manager.sweep(force=True) == []
        with pytest.raises(ServeError, match="session limit"):
            manager.create(_FakeFamily())
        busy_ids.clear()
        b = manager.create(_FakeFamily())  # a idle now -> evicted
        assert manager.evicted == 1
        assert manager.get(b.id) is b

    def test_service_publishes_eviction_metric(self):
        with FineTuneService(workers=1, max_batch=2,
                             session_ttl=1e-9) as service:
            session = service.create_session(
                lambda batch: make_mlp_graph(batch=batch)[0].graph,
                scheme="full", model_id="mlp")
            service.sessions.sweep(force=True)
            stats = service.stats()
            assert stats["serve.sessions_evicted"] == 1
            assert stats["serve.sessions_live"] == 0
            with pytest.raises(ServeError, match="unknown session"):
                service.snapshot(session.id)


class TestProcessBackend:
    @pytest.fixture(scope="class")
    def proc_service(self, tmp_path_factory):
        cache_dir = tmp_path_factory.mktemp("plans")
        with FineTuneService(workers=2, max_batch=4, backend="process",
                             cache_dir=cache_dir) as service:
            yield service

    def test_steps_train_and_workers_stay_compiler_free(self, proc_service,
                                                        rng):
        service = proc_service
        sessions = [service.create_session("mcunet_micro", scheme="paper",
                                           tenant=f"t{i}") for i in range(2)]
        family = sessions[0].family
        futures = []
        for _ in range(3):
            for session in sessions:
                x = rng.standard_normal(family.example_shape) \
                    .astype(np.float32)
                y = np.int64(rng.integers(0, family.num_classes))
                futures.append(service.submit(session.id, x, y))
        results = [f.result() for f in futures]
        assert all(np.isfinite(r.loss) for r in results)
        assert sessions[0].steps >= 1
        # Training state actually advanced and is isolated per tenant.
        snap0 = service.snapshot(sessions[0].id)
        assert any(array.any() for array in snap0.values())
        probe = service.engine.probe()
        assert probe["programs_bound"]
        assert not probe["compiler_imported"]
        assert not probe["autodiff_imported"]
        # Every variant the workers ran came from a persisted artifact.
        assert service.cache.stats.disk_writes >= 1

    def test_unknown_backend_rejected(self):
        with pytest.raises(ServeError, match="unknown serve backend"):
            FineTuneService(backend="carrier-pigeon")


class TestWorkerCrashRecovery:
    """Satellite: a crashed worker fails one batch, not the service.

    Without recovery, ``BrokenProcessPool`` poisons the executor and every
    later step on every session fails forever.
    """

    def test_killed_worker_fails_batch_rebuilds_pool(self, tmp_path, rng):
        import os
        import signal

        def example(family):
            x = rng.standard_normal(family.example_shape) \
                .astype(np.float32)
            y = np.int64(rng.integers(0, family.num_classes))
            return x, y

        with FineTuneService(workers=1, max_batch=2, backend="process",
                             cache_dir=tmp_path) as service:
            session = service.create_session(
                lambda batch: make_mlp_graph(batch=batch)[0].graph,
                scheme="full", model_id="mlp")
            family = session.family
            first = service.step(session.id, *example(family))
            assert np.isfinite(first.loss)

            # SIGKILL the live worker mid-run: the next batch lands on a
            # dead pool.
            pids = service.engine.worker_pids()
            assert pids, "worker pool never spawned"
            for pid in pids:
                os.kill(pid, signal.SIGKILL)
            with pytest.raises(ServeError, match="worker process died"):
                service.step(session.id, *example(family))

            # The pool was rebuilt exactly once; fresh workers rebind the
            # persisted artifact and serving resumes for every session.
            recovered = service.step(session.id, *example(family))
            assert np.isfinite(recovered.loss)
            assert recovered.step == first.step + 1  # failed batch: no step
            assert service.engine.restarts == 1
            assert service.stats()["serve.worker_restarts"] == 1
            probe = service.engine.probe()
            assert not probe["compiler_imported"]
