"""Liveness analysis, memory profiler, arena planner — including the
cross-check that the analytical profiler matches the executor's measured
peak exactly."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import MemoryPlanError
from repro.ir import GraphBuilder
from repro.memory import (plan_arena, profile_memory, value_lifetimes)
from repro.runtime import Executor, Program
from repro.runtime.compiler import CompileOptions, compile_training
from repro.sparse import UpdateScheme, bias_only, full_update
from repro.train import SGD

from conftest import make_mlp_graph


class TestLiveness:
    def test_basic_intervals(self):
        b, names = make_mlp_graph()
        schedule = b.graph.topological_order()
        lives = value_lifetimes(b.graph, schedule)
        assert lives[names["x"]].start == -1
        out = names["logits"]
        assert lives[out].end == len(schedule)  # graph output lives on

    def test_intermediate_dies_at_last_use(self):
        b = GraphBuilder("g")
        x = b.input("x", (2, 2))
        h = b.emit("relu", [x])
        y = b.emit("tanh", [h])
        b.mark_output(y)
        lives = value_lifetimes(b.graph, b.graph.topological_order())
        assert lives[h].start == 0 and lives[h].end == 1

    def test_use_before_production_rejected(self):
        b, _ = make_mlp_graph()
        schedule = list(reversed(b.graph.topological_order()))
        with pytest.raises(MemoryPlanError):
            value_lifetimes(b.graph, schedule)

    def test_inplace_outputs_pinned(self):
        b, _ = make_mlp_graph()
        program = compile_training(b.graph, optimizer=SGD(0.1))
        lives = value_lifetimes(program.graph, program.schedule)
        for node in program.inplace_nodes():
            assert lives[node.inputs[0]].end == len(program.schedule)


class TestProfilerMatchesExecutor:
    @pytest.mark.parametrize("scheme_kind", ["full", "bias", "channel"])
    def test_peak_transient_exact(self, scheme_kind):
        b, _ = make_mlp_graph(batch=8, din=12, dhidden=16, dout=4)
        if scheme_kind == "full":
            scheme = full_update(b.graph)
        elif scheme_kind == "bias":
            scheme = UpdateScheme("b", {"b1": 1.0, "b2": 1.0})
        else:
            scheme = UpdateScheme("c", {"w1": 0.5, "w2": 1.0})
        program = compile_training(b.graph, optimizer=SGD(0.1),
                                   scheme=scheme)
        profile = profile_memory(program.graph, program.schedule)
        executor = Executor(program)
        executor.run({"x": np.ones((8, 12), np.float32),
                      "labels": np.zeros(8, np.int64)})
        assert executor.peak_transient_bytes == profile.peak_transient_bytes

    def test_resident_counts_params_and_state(self):
        b, _ = make_mlp_graph()
        program = compile_training(b.graph, optimizer=SGD(0.1, momentum=0.9))
        profile = profile_memory(program.graph, program.schedule)
        assert profile.resident_bytes == program.state_bytes()

    def test_timeline_when_requested(self):
        b, _ = make_mlp_graph()
        profile = profile_memory(b.graph, keep_timeline=True)
        assert len(profile.timeline) == len(b.graph.nodes)
        assert max(profile.timeline) == profile.peak_transient_bytes


class TestSparseMemorySavings:
    def test_bias_only_below_full(self):
        b, _ = make_mlp_graph(batch=16, din=32, dhidden=64, dout=8)
        full_prog = compile_training(b.graph, optimizer=SGD(0.1),
                                     scheme=full_update(b.graph))
        bias_prog = compile_training(
            b.graph, optimizer=SGD(0.1),
            scheme=UpdateScheme("b", {"b1": 1.0, "b2": 1.0}))
        full_peak = profile_memory(full_prog.graph,
                                   full_prog.schedule).peak_total_bytes
        bias_peak = profile_memory(bias_prog.graph,
                                   bias_prog.schedule).peak_total_bytes
        assert bias_peak < full_peak

    def test_reorder_reduces_gradient_buffer_peak(self):
        """Paper §3.2: applying updates immediately vs holding all grads."""
        b, _ = make_mlp_graph(batch=4, din=64, dhidden=128, dout=32)
        held = compile_training(
            b.graph, optimizer=SGD(0.1),
            options=CompileOptions(reorder=False, applies_last=True))
        reordered = compile_training(b.graph, optimizer=SGD(0.1))
        peak_held = profile_memory(held.graph, held.schedule)
        peak_reord = profile_memory(reordered.graph, reordered.schedule)
        assert peak_reord.peak_transient_bytes \
            < peak_held.peak_transient_bytes


class TestArenaPlanner:
    def test_plan_validates(self):
        b, _ = make_mlp_graph()
        program = compile_training(b.graph, optimizer=SGD(0.1))
        plan = plan_arena(program.graph, program.schedule)
        plan.validate(program.graph)
        assert plan.arena_bytes > 0

    def test_arena_at_least_peak_and_bounded(self):
        b, _ = make_mlp_graph(batch=8, din=16, dhidden=24, dout=4)
        program = compile_training(b.graph, optimizer=SGD(0.1))
        plan = plan_arena(program.graph, program.schedule, alignment=1)
        profile = profile_memory(program.graph, program.schedule)
        assert plan.arena_bytes >= profile.peak_transient_bytes
        # Greedy best-fit should stay within 2x of the lower bound here.
        assert plan.arena_bytes <= 2 * profile.peak_transient_bytes

    def test_overlap_detection_fires(self):
        b, _ = make_mlp_graph()
        program = compile_training(b.graph, optimizer=SGD(0.1))
        plan = plan_arena(program.graph, program.schedule)
        if len(plan.offsets) >= 2:
            # Force two live-overlapping tensors to the same offset.
            names = sorted(plan.offsets,
                           key=lambda n: -program.graph.spec(n).nbytes)
            a = names[0]
            overlapping = [
                n for n in names[1:]
                if plan.lifetimes[n].overlaps(plan.lifetimes[a])
            ]
            if overlapping:
                plan.offsets[overlapping[0]] = plan.offsets[a]
                with pytest.raises(MemoryPlanError):
                    plan.validate(program.graph)

    @given(st.integers(0, 10_000))
    @settings(max_examples=20, deadline=None)
    def test_random_graph_plans_never_overlap(self, seed):
        """Property: arena placement never overlaps live tensors."""
        rng = np.random.default_rng(seed)
        b = GraphBuilder("g")
        values = [b.input("x", (int(rng.integers(1, 8)), 4))]
        for i in range(int(rng.integers(2, 10))):
            src = values[int(rng.integers(0, len(values)))]
            if rng.random() < 0.5:
                values.append(b.emit("relu", [src]))
            else:
                other = values[int(rng.integers(0, len(values)))]
                if b.shape(src) == b.shape(other):
                    values.append(b.add(src, other))
                else:
                    values.append(b.emit("tanh", [src]))
        b.mark_output(values[-1])
        plan = plan_arena(b.graph)
        plan.validate(b.graph)
