"""Optimizer apply kernels: math vs reference, in-place and sliced updates."""

import numpy as np
import pytest

from repro.kernels import run_op


class TestSGD:
    def test_plain(self):
        p = np.array([1.0, 2.0], np.float32)
        g = np.array([0.5, -1.0], np.float32)
        run_op("apply_sgd", [p, g], {"lr": 0.1})
        np.testing.assert_allclose(p, [0.95, 2.1], atol=1e-6)

    def test_momentum(self):
        p = np.zeros(2, np.float32)
        m = np.zeros(2, np.float32)
        g = np.ones(2, np.float32)
        run_op("apply_sgd", [p, g, m], {"lr": 0.1, "momentum": 0.9})
        run_op("apply_sgd", [p, g, m], {"lr": 0.1, "momentum": 0.9})
        # v1 = 1, v2 = 1.9 -> p = -(0.1 + 0.19)
        np.testing.assert_allclose(p, [-0.29, -0.29], atol=1e-6)

    def test_weight_decay(self):
        p = np.array([10.0], np.float32)
        g = np.zeros(1, np.float32)
        run_op("apply_sgd", [p, g], {"lr": 0.1, "weight_decay": 0.1})
        np.testing.assert_allclose(p, [10.0 - 0.1 * 1.0], atol=1e-6)

    def test_inplace(self):
        p = np.zeros(3, np.float32)
        [out] = run_op("apply_sgd", [p, np.ones(3, np.float32)], {"lr": 1.0})
        assert out is p

    def test_slice_update_touches_only_prefix(self):
        p = np.zeros((4, 2), np.float32)
        g = np.ones((2, 2), np.float32)
        run_op("apply_sgd", [p, g], {"lr": 1.0, "slice_k": 2,
                                     "slice_axis": 0})
        assert (p[:2] == -1).all()
        assert (p[2:] == 0).all()

    def test_slice_axis1_for_conv(self):
        p = np.zeros((3, 4, 1, 1), np.float32)
        g = np.ones((3, 2, 1, 1), np.float32)
        run_op("apply_sgd", [p, g], {"lr": 1.0, "slice_k": 2,
                                     "slice_axis": 1})
        assert (p[:, :2] == -1).all() and (p[:, 2:] == 0).all()


class TestAdam:
    def test_first_step_equals_lr_sign(self):
        p = np.zeros(2, np.float32)
        g = np.array([3.0, -7.0], np.float32)
        m = np.zeros(2, np.float32)
        v = np.zeros(2, np.float32)
        t = np.zeros(1, np.float32)
        run_op("apply_adam", [p, g, m, v, t],
               {"lr": 0.01, "beta1": 0.9, "beta2": 0.999, "eps": 1e-8})
        # With bias correction, first Adam step is ~ -lr * sign(g).
        np.testing.assert_allclose(p, [-0.01, 0.01], atol=1e-4)
        assert t[0] == 1.0

    def test_matches_reference_over_steps(self, rng):
        p = rng.standard_normal(5).astype(np.float32)
        ref_p = p.copy().astype(np.float64)
        m = np.zeros(5, np.float32)
        v = np.zeros(5, np.float32)
        t = np.zeros(1, np.float32)
        ref_m = np.zeros(5)
        ref_v = np.zeros(5)
        for step in range(1, 6):
            g = rng.standard_normal(5).astype(np.float32)
            run_op("apply_adam", [p, g, m, v, t],
                   {"lr": 0.1, "beta1": 0.9, "beta2": 0.999, "eps": 1e-8})
            ref_m = 0.9 * ref_m + 0.1 * g
            ref_v = 0.999 * ref_v + 0.001 * g * g
            mh = ref_m / (1 - 0.9 ** step)
            vh = ref_v / (1 - 0.999 ** step)
            ref_p -= 0.1 * mh / (np.sqrt(vh) + 1e-8)
        np.testing.assert_allclose(p, ref_p, atol=1e-4)


class TestLion:
    def test_sign_update(self):
        p = np.zeros(3, np.float32)
        g = np.array([5.0, -0.1, 0.0], np.float32)
        m = np.zeros(3, np.float32)
        run_op("apply_lion", [p, g, m], {"lr": 0.1, "beta1": 0.9,
                                         "beta2": 0.99})
        np.testing.assert_allclose(p, [-0.1, 0.1, 0.0], atol=1e-6)

    def test_momentum_update(self):
        p = np.zeros(1, np.float32)
        g = np.ones(1, np.float32)
        m = np.zeros(1, np.float32)
        run_op("apply_lion", [p, g, m], {"lr": 0.1, "beta1": 0.9,
                                         "beta2": 0.99})
        np.testing.assert_allclose(m, [0.01], atol=1e-7)

    def test_single_state_buffer_vs_adam_two(self):
        from repro.train import Adam, Lion

        assert Lion().state_slots == 1
        assert Adam().state_slots == 2
