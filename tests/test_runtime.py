"""Runtime: programs, executor semantics, compiler pipeline end to end."""

import numpy as np
import pytest

from repro.errors import ExecutionError
from repro.ir import GraphBuilder, validate_graph
from repro.runtime import Executor, Program, interpret
from repro.runtime.compiler import (CompileOptions, compile_inference,
                                    compile_training)
from repro.sparse import UpdateScheme, full_update
from repro.train import SGD, Adam, Lion

from conftest import make_mlp_graph


class TestExecutor:
    def test_missing_feed_raises(self):
        b, _ = make_mlp_graph()
        with pytest.raises(ExecutionError):
            interpret(b.graph, {})

    def test_wrong_feed_shape_raises(self):
        b, _ = make_mlp_graph()
        with pytest.raises(ExecutionError):
            interpret(b.graph, {"x": np.ones((1, 1), np.float32)})

    def test_feed_dtype_coerced(self):
        b, names = make_mlp_graph()
        out = interpret(b.graph, {"x": np.ones((4, 5), np.float64)})
        assert out[names["logits"]].dtype == np.float32

    def test_outputs_complete(self):
        b, names = make_mlp_graph()
        out = interpret(b.graph, {"x": np.zeros((4, 5), np.float32)})
        assert set(out) == {names["logits"]}

    def test_eager_free_peak_below_total(self):
        """A deep chain must not hold all intermediates simultaneously."""
        b = GraphBuilder("g")
        x = b.input("x", (64, 64))
        h = x
        for _ in range(10):
            h = b.emit("relu", [h])
        b.mark_output(h)
        program = Program.from_graph(b.graph)
        ex = Executor(program)
        ex.run({"x": np.ones((64, 64), np.float32)})
        one = 64 * 64 * 4
        assert ex.peak_transient_bytes <= 2 * one

    def test_state_persists_across_runs(self):
        b, _ = make_mlp_graph()
        program = compile_training(b.graph, optimizer=SGD(0.5))
        ex = Executor(program)
        w_before = program.state["w1"].copy()
        feeds = {"x": np.ones((4, 5), np.float32),
                 "labels": np.zeros(4, np.int64)}
        ex.run(feeds)
        assert not np.allclose(program.state["w1"], w_before)

    def test_program_state_copy_isolated(self):
        b, _ = make_mlp_graph()
        p1 = compile_training(b.graph, optimizer=SGD(0.5))
        p2 = compile_training(b.graph, optimizer=SGD(0.5))
        Executor(p1).run({"x": np.ones((4, 5), np.float32),
                          "labels": np.zeros(4, np.int64)})
        np.testing.assert_array_equal(p2.state["w1"],
                                      b.graph.initializers["w1"])

    def test_validate_schedule(self):
        b, _ = make_mlp_graph()
        program = Program.from_graph(b.graph)
        program.validate_schedule()
        program.schedule.reverse()
        with pytest.raises(ExecutionError):
            program.validate_schedule()


class TestCompiler:
    def test_training_program_validates(self):
        b, _ = make_mlp_graph()
        program = compile_training(b.graph, optimizer=Adam(1e-3))
        validate_graph(program.graph)
        program.validate_schedule()

    def test_loss_decreases_with_each_optimizer(self, rng):
        for opt in (SGD(0.2, momentum=0.9), Adam(0.05), Lion(0.02)):
            b, _ = make_mlp_graph(seed=1)
            program = compile_training(b.graph, optimizer=opt)
            ex = Executor(program)
            x = rng.standard_normal((4, 5)).astype(np.float32)
            y = np.array([0, 1, 2, 0], np.int64)
            loss_name = program.meta["loss"]
            losses = [float(ex.run({"x": x, "labels": y})[loss_name])
                      for _ in range(25)]
            assert losses[-1] < losses[0], f"{opt} failed to reduce loss"

    def test_mse_loss_path(self, rng):
        b, names = make_mlp_graph()
        program = compile_training(b.graph, loss="mse", optimizer=SGD(0.05))
        ex = Executor(program)
        x = rng.standard_normal((4, 5)).astype(np.float32)
        target = np.zeros((4, 3), np.float32)
        l0 = float(ex.run({"x": x, "labels": target})[program.meta["loss"]])
        for _ in range(20):
            l1 = float(ex.run({"x": x, "labels": target})[
                program.meta["loss"]])
        assert l1 < l0

    def test_masked_sparse_computes_full_backward(self):
        b, _ = make_mlp_graph()
        scheme = UpdateScheme("s", {"w2": 1.0})
        pruned = compile_training(b.graph, optimizer=SGD(0.1), scheme=scheme)
        masked = compile_training(
            b.graph, optimizer=SGD(0.1), scheme=scheme,
            options=CompileOptions(masked_sparse=True, fusion=False,
                                   cse=False, constant_folding=False))
        assert len(masked.graph.nodes) > len(pruned.graph.nodes)
        # Both move the updated weight identically.
        x = np.ones((4, 5), np.float32)
        y = np.zeros(4, np.int64)
        Executor(pruned).run({"x": x, "labels": y})
        Executor(masked).run({"x": x, "labels": y})
        np.testing.assert_allclose(pruned.state["w2"], masked.state["w2"],
                                   atol=1e-5)
        np.testing.assert_array_equal(masked.state["w1"],
                                      b.graph.initializers["w1"])

    def test_sparse_program_smaller_and_equal_result(self):
        """Pruned-sparse and full programs agree on the tensors both update."""
        b, _ = make_mlp_graph(seed=2)
        scheme = UpdateScheme("s", {"w2": 1.0, "b2": 1.0})
        sparse = compile_training(b.graph, optimizer=SGD(0.1), scheme=scheme)
        full = compile_training(b.graph, optimizer=SGD(0.1))
        assert len(sparse.graph.nodes) < len(full.graph.nodes)
        x = np.ones((4, 5), np.float32) * 0.3
        y = np.array([0, 1, 2, 0], np.int64)
        Executor(sparse).run({"x": x, "labels": y})
        Executor(full).run({"x": x, "labels": y})
        np.testing.assert_allclose(sparse.state["w2"], full.state["w2"],
                                   atol=1e-5)

    def test_compile_report_populated(self):
        b, _ = make_mlp_graph()
        program = compile_training(b.graph, optimizer=SGD(0.1))
        report = program.meta["report"]
        assert report.num_nodes == len(program.graph.nodes)
        assert "fuse_bias_act" in report.pass_stats
        assert report.peak_transient_bytes > 0

    def test_channel_sparse_trains(self, rng):
        b, _ = make_mlp_graph(din=8, seed=3)
        scheme = UpdateScheme("c", {"w1": 0.5, "w2": 1.0, "b2": 1.0})
        program = compile_training(b.graph, optimizer=SGD(0.2), scheme=scheme)
        ex = Executor(program)
        x = rng.standard_normal((4, 8)).astype(np.float32)
        y = np.array([0, 1, 2, 0], np.int64)
        w1_before = program.state["w1"].copy()
        losses = [float(ex.run({"x": x, "labels": y})[program.meta["loss"]])
                  for _ in range(20)]
        assert losses[-1] < losses[0]
        # Only the first 4 input-feature rows of w1 moved.
        assert not np.allclose(program.state["w1"][:4], w1_before[:4])
        np.testing.assert_array_equal(program.state["w1"][4:], w1_before[4:])

    def test_compile_inference(self):
        b, names = make_mlp_graph()
        program = compile_inference(b.graph)
        out = Executor(program).run({"x": np.zeros((4, 5), np.float32)})
        assert names["logits"] in out

    def test_no_outputs_rejected(self):
        b = GraphBuilder("g")
        b.input("x", (1,))
        with pytest.raises(Exception):
            compile_training(b.graph)

    def test_empty_scheme_rejected(self):
        b, _ = make_mlp_graph()
        with pytest.raises(Exception):
            compile_training(b.graph, scheme=UpdateScheme("empty", {}))
