"""Gradient accumulation (paper Table 5: batch 1, accumulate 16)."""

import numpy as np
import pytest

from repro.errors import CompileError
from repro.runtime import Executor
from repro.runtime.compiler import compile_training
from repro.train import SGD, Adam, Lion
from repro.train.optim import optimizer_state_bytes

from conftest import make_mlp_graph


def run_steps(program, xs, ys):
    executor = Executor(program)
    for x, y in zip(xs, ys):
        executor.run({"x": x, program.meta["labels"]: y})
    return program


class TestEquivalence:
    def test_microbatches_equal_full_batch_sgd(self, rng):
        X = rng.standard_normal((4, 5)).astype(np.float32)
        Y = rng.integers(0, 3, 4).astype(np.int64)

        full_builder, _ = make_mlp_graph(batch=4, seed=3)
        full = compile_training(full_builder.graph, optimizer=SGD(0.1))
        run_steps(full, [X], [Y])

        micro_builder, _ = make_mlp_graph(batch=1, seed=3)
        micro = compile_training(micro_builder.graph,
                                 optimizer=SGD(0.1, accum_steps=4))
        run_steps(micro, [X[i:i + 1] for i in range(4)],
                  [Y[i:i + 1] for i in range(4)])

        for name in ("w1", "b1", "w2", "b2"):
            np.testing.assert_allclose(full.state[name],
                                       micro.state[name], atol=1e-6)

    def test_momentum_accumulation_matches(self, rng):
        X = rng.standard_normal((2, 5)).astype(np.float32)
        Y = rng.integers(0, 3, 2).astype(np.int64)
        full_builder, _ = make_mlp_graph(batch=2, seed=5)
        full = compile_training(full_builder.graph,
                                optimizer=SGD(0.1, momentum=0.9))
        run_steps(full, [X, X], [Y, Y])  # two optimizer steps

        micro_builder, _ = make_mlp_graph(batch=1, seed=5)
        micro = compile_training(
            micro_builder.graph,
            optimizer=SGD(0.1, momentum=0.9, accum_steps=2))
        xs = [X[0:1], X[1:2], X[0:1], X[1:2]]
        ys = [Y[0:1], Y[1:2], Y[0:1], Y[1:2]]
        run_steps(micro, xs, ys)
        np.testing.assert_allclose(full.state["w1"], micro.state["w1"],
                                   atol=1e-5)


class TestGating:
    @pytest.mark.parametrize("optimizer", [
        SGD(0.05, accum_steps=3),
        Adam(0.01, accum_steps=3),
        Lion(0.01, accum_steps=3),
    ])
    def test_no_update_until_nth_microstep(self, optimizer, rng):
        builder, _ = make_mlp_graph(batch=1, seed=1)
        program = compile_training(builder.graph, optimizer=optimizer)
        executor = Executor(program)
        before = program.state["w1"].copy()
        x = rng.standard_normal((1, 5)).astype(np.float32)
        y = rng.integers(0, 3, 1).astype(np.int64)
        for step in range(3):
            executor.run({"x": x, program.meta["labels"]: y})
            if step < 2:
                np.testing.assert_array_equal(program.state["w1"], before)
        assert not np.array_equal(program.state["w1"], before)

    def test_second_cycle_also_updates(self, rng):
        builder, _ = make_mlp_graph(batch=1, seed=1)
        program = compile_training(builder.graph,
                                   optimizer=SGD(0.1, accum_steps=2))
        executor = Executor(program)
        x = rng.standard_normal((1, 5)).astype(np.float32)
        y = rng.integers(0, 3, 1).astype(np.int64)
        snapshots = []
        for _ in range(4):
            executor.run({"x": x, program.meta["labels"]: y})
            snapshots.append(program.state["w1"].copy())
        np.testing.assert_array_equal(snapshots[0], snapshots[1] * 0
                                      + snapshots[0])  # shape sanity
        assert not np.array_equal(snapshots[1], snapshots[3])

    def test_accumulator_reset_between_cycles(self, rng):
        builder, _ = make_mlp_graph(batch=1, seed=1)
        program = compile_training(builder.graph,
                                   optimizer=SGD(0.1, accum_steps=2))
        executor = Executor(program)
        x = rng.standard_normal((1, 5)).astype(np.float32)
        y = rng.integers(0, 3, 1).astype(np.int64)
        executor.run({"x": x, program.meta["labels"]: y})
        executor.run({"x": x, program.meta["labels"]: y})
        accum = program.state["w1.accum"]
        np.testing.assert_allclose(accum, 0.0, atol=1e-12)


class TestAccounting:
    def test_accumulator_counted_as_optimizer_state(self):
        builder, _ = make_mlp_graph(batch=1)
        program = compile_training(builder.graph,
                                   optimizer=SGD(0.05, accum_steps=4))
        plain = compile_training(make_mlp_graph(batch=1)[0].graph,
                                 optimizer=SGD(0.05))
        assert optimizer_state_bytes(program.graph) \
            > optimizer_state_bytes(plain.graph)

    def test_rejects_nonpositive_accum(self):
        builder, _ = make_mlp_graph(batch=1)
        with pytest.raises(CompileError, match="accum_steps"):
            compile_training(builder.graph,
                             optimizer=SGD(0.05, accum_steps=0))
