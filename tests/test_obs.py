"""Observability layer: tracing, spans, Prometheus, JSON logs, kernel timing.

Covers the `repro.obs` package itself (trace contexts, span ring,
Server-Timing codec, Prometheus renderer, JSON formatter), the metric
primitives it renders (locked reads, cumulative buckets), and the
end-to-end contract through the serving stack: request IDs minted at the
gateway and echoed on every response, the six-stage span breakdown in
``Server-Timing`` and ``/v1/trace``, trace carriers surviving the pickle
boundary into spawn-based workers, and a SIGKILL'd worker leaving the
span ring intact.
"""

from __future__ import annotations

import json
import logging
import pickle
import re
import threading
import urllib.error
import urllib.request

import numpy as np
import pytest

from repro.obs import (STAGES, JsonFormatter, SpanRing, TraceCarrier,
                       Tracer, configure_json_logging, mint_request_id,
                       parse_server_timing, render_prometheus,
                       server_timing_header, split_labels, trace_document)
from repro.serve import FineTuneService, GatewayServer, ServeClient
from repro.serve.metrics import Counter, Gauge, Histogram, MetricsRegistry

from conftest import make_mlp_graph


def build_mlp(batch: int):
    return make_mlp_graph(batch=batch, din=5, dhidden=6, dout=3,
                          seed=0)[0].graph


def mlp_example(rng):
    return (rng.standard_normal(5).astype(np.float32),
            int(rng.integers(0, 3)))


# ---------------------------------------------------------------------------
# metric primitives: locked reads, cumulative buckets
# ---------------------------------------------------------------------------


class TestMetricsConcurrency:
    def test_counter_and_gauge_concurrent_updates_and_reads(self):
        counter = Counter("c")
        gauge = Gauge("g")
        hist = Histogram("h")
        iterations = 2000

        def writer():
            for i in range(iterations):
                counter.inc()
                gauge.set(float(i))
                gauge.max(float(i))
                hist.observe(float(i % 50))

        def reader():
            for _ in range(iterations):
                assert counter.value >= 0
                assert gauge.value >= 0
                hist.summary()
                hist.bucket_counts()

        threads = [threading.Thread(target=writer) for _ in range(4)] \
            + [threading.Thread(target=reader) for _ in range(2)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert counter.value == 4 * iterations
        _, cumulative, _, count = hist.bucket_counts()
        assert count == 4 * iterations
        assert cumulative[-1] == count

    def test_histogram_buckets_are_le_inclusive_and_cumulative(self):
        hist = Histogram("h", buckets=(1.0, 5.0, 10.0))
        for value in (0.5, 1.0, 5.0, 7.0, 100.0):
            hist.observe(value)
        bounds, cumulative, total, count = hist.bucket_counts()
        assert tuple(bounds) == (1.0, 5.0, 10.0)
        # le-inclusive: 1.0 counts in the le="1.0" bucket, 5.0 in le="5.0"
        assert cumulative == [2, 3, 4, 5]
        assert count == 5
        assert total == pytest.approx(113.5)

    def test_cumulative_counts_never_decrease(self):
        hist = Histogram("h")
        rng = np.random.default_rng(3)
        for value in rng.exponential(50.0, size=500):
            hist.observe(float(value))
        _, cumulative, _, count = hist.bucket_counts()
        assert cumulative == sorted(cumulative)
        assert cumulative[-1] == count == 500


# ---------------------------------------------------------------------------
# obs primitives
# ---------------------------------------------------------------------------


class TestTraceContext:
    def test_spans_publish_once_through_the_tracer(self):
        metrics = MetricsRegistry()
        tracer = Tracer(metrics)
        trace = tracer.trace(session_id="s1", tenant="t1")
        trace.add("admission", 1.0, 1.002)
        trace.add("execute", 1.002, 1.010)
        assert tracer.spans_recorded == 2
        assert len(tracer.ring) == 2
        assert trace.timings_ms() == pytest.approx(
            {"admission": 2.0, "execute": 8.0})
        assert trace.total_ms() == pytest.approx(10.0)
        hist = metrics.histogram("serve.stage_ms[stage=execute]")
        assert hist.count == 1

    def test_request_id_survives_pickle_without_the_tracer(self):
        tracer = Tracer(MetricsRegistry())
        trace = tracer.trace("abc123", session_id="s", tenant="t")
        trace.add("queue_wait", 0.0, 0.001)
        clone = pickle.loads(pickle.dumps(trace))
        assert clone.request_id == "abc123"
        assert clone.session_id == "s"
        assert [s.name for s in clone.spans] == ["queue_wait"]
        # The unpickled copy has no tracer: adds still work, unpublished.
        clone.add("execute", 0.0, 0.002)
        assert tracer.spans_recorded == 1

    def test_carrier_is_slim_and_picklable(self):
        carrier = TraceCarrier(request_ids=("a", "b"), sample=True)
        clone = pickle.loads(pickle.dumps(carrier))
        assert clone.request_ids == ("a", "b")
        assert clone.sample is True

    def test_mint_request_id_is_unique_and_header_safe(self):
        ids = {mint_request_id() for _ in range(64)}
        assert len(ids) == 64
        assert all(re.fullmatch(r"[0-9a-f]{16}", rid) for rid in ids)


class TestSpanRing:
    def test_bounded_and_ordered(self):
        ring = SpanRing(capacity=4)
        for i in range(10):
            ring.push({"i": i})
        assert len(ring) == 4
        assert [e["i"] for e in ring.snapshot()] == [6, 7, 8, 9]
        assert ring.pushed == 10

    def test_export_is_a_chrome_trace_document(self):
        tracer = Tracer(MetricsRegistry(), ring_capacity=8)
        trace = tracer.trace("rid")
        trace.add("execute", tracer.epoch, tracer.epoch + 0.005)
        doc = tracer.export()
        assert doc["displayTimeUnit"] == "ms"
        (event,) = doc["traceEvents"]
        assert event["ph"] == "X"
        assert event["ts"] == pytest.approx(0.0, abs=1.0)
        assert event["dur"] == pytest.approx(5000.0, rel=0.01)
        assert event["args"]["request_id"] == "rid"
        json.dumps(doc)  # must serialize cleanly


class TestSampling:
    def test_one_in_n(self):
        tracer = Tracer(sample_every=4)
        decisions = [tracer.should_sample() for _ in range(16)]
        assert sum(decisions) == 4
        assert Tracer(sample_every=0).should_sample() is False

    def test_worker_payload_ingestion(self):
        metrics = MetricsRegistry()
        tracer = Tracer(metrics)
        tracer.record_worker_step({
            "pid": 4242,
            "request_ids": ["r1", "r2"],
            "execute": (tracer.epoch, tracer.epoch + 0.004),
            "kernels": [("conv2d", "base", tracer.epoch,
                         tracer.epoch + 0.001)],
        }, session_id="s1")
        events = tracer.ring.snapshot()
        worker = [e for e in events if e["name"] == "worker_execute"]
        assert worker[0]["pid"] == 4242
        assert worker[0]["args"]["request_id"] == ["r1", "r2"]
        kernel = [e for e in events if e["cat"] == "kernel"]
        assert kernel[0]["args"]["variant"] == "base"
        assert metrics.histogram(
            "serve.kernel_ms[op=conv2d,variant=base]").count == 1


class TestServerTiming:
    def test_roundtrip(self):
        timings = {"admission": 0.123, "execute": 45.678}
        header = server_timing_header(timings, total_ms=46.0)
        parsed = parse_server_timing(header)
        assert parsed["admission"] == pytest.approx(0.123)
        assert parsed["execute"] == pytest.approx(45.678)
        assert parsed["total"] == pytest.approx(46.0)

    def test_parse_tolerates_foreign_entries(self):
        parsed = parse_server_timing(
            'cache;desc="hit", db;dur=12.5;desc="q", empty,')
        assert parsed == {"db": 12.5}


# ---------------------------------------------------------------------------
# Prometheus exposition
# ---------------------------------------------------------------------------

#: one sample line: name{labels} value  (value may be +Inf/-Inf/NaN)
_SAMPLE_RE = re.compile(
    r"^[a-zA-Z_:][a-zA-Z0-9_:]*"
    r"(\{[a-zA-Z_][a-zA-Z0-9_]*=\"[^\"]*\""
    r"(,[a-zA-Z_][a-zA-Z0-9_]*=\"[^\"]*\")*\})? "
    r"(-?\d+(\.\d+)?([eE][+-]?\d+)?|\+Inf|-Inf|NaN)$")


def check_prometheus_text(text: str) -> dict[str, list[str]]:
    """Minimal line-format checker; returns sample lines per metric."""
    samples: dict[str, list[str]] = {}
    for line in text.splitlines():
        if not line:
            continue
        if line.startswith("# HELP ") or line.startswith("# TYPE "):
            continue
        assert _SAMPLE_RE.match(line), f"bad exposition line: {line!r}"
        name = re.split(r"[{ ]", line, maxsplit=1)[0]
        samples.setdefault(name, []).append(line)
    return samples


class TestPrometheus:
    def test_split_labels(self):
        assert split_labels("serve.stage_ms[stage=execute]") == \
            ("serve.stage_ms", {"stage": "execute"})
        assert split_labels("serve.kernel_ms[op=conv2d,variant=fused]") == \
            ("serve.kernel_ms", {"op": "conv2d", "variant": "fused"})
        assert split_labels("serve.peak[ab12]") == \
            ("serve.peak", {"id": "ab12"})
        assert split_labels("plain.name") == ("plain.name", {})

    def test_render_is_parseable_and_buckets_are_consistent(self):
        metrics = MetricsRegistry()
        metrics.counter("serve.steps_total", "updates").inc(3)
        metrics.gauge("serve.queue_depth").set(2)
        hist = metrics.histogram("serve.stage_ms[stage=execute]", "latency")
        for value in (0.2, 3.0, 7.0, 40.0, 9000.0):
            hist.observe(value)
        text = render_prometheus(metrics)
        samples = check_prometheus_text(text)
        assert 'serve_steps_total 3.0' in samples["serve_steps_total"]

        buckets = samples["serve_stage_ms_bucket"]
        counts = [float(line.rsplit(" ", 1)[1]) for line in buckets]
        assert counts == sorted(counts), "bucket counts must be cumulative"
        assert buckets[-1].startswith('serve_stage_ms_bucket{le="+Inf"')
        inf_count = counts[-1]
        (count_line,) = samples["serve_stage_ms_count"]
        assert float(count_line.rsplit(" ", 1)[1]) == inf_count == 5
        (sum_line,) = samples["serve_stage_ms_sum"]
        assert float(sum_line.rsplit(" ", 1)[1]) == pytest.approx(9050.2)

    def test_full_service_registry_renders_clean(self):
        with FineTuneService(max_batch=2, workers=1) as service:
            session = service.create_session(build_mlp, model_id="mlp",
                                             scheme="full")
            rng = np.random.default_rng(0)
            service.step(session.id, *mlp_example(rng))
            text = service.prometheus_metrics()
        samples = check_prometheus_text(text)
        assert "serve_steps_total" in samples
        assert "serve_stage_ms_bucket" in samples
        assert "serve_step_peak_transient_bytes" in samples
        # per-program gauges carry the program label
        peak = "\n".join(samples["serve_peak_transient_bytes"])
        assert 'program="' in peak


# ---------------------------------------------------------------------------
# structured JSON logging + slow-request sampling
# ---------------------------------------------------------------------------


class _Capture(logging.Handler):
    def __init__(self):
        super().__init__()
        self.lines: list[str] = []

    def emit(self, record):
        self.lines.append(self.format(record))


class TestJsonLogging:
    def test_extra_fields_become_top_level_json(self):
        handler = _Capture()
        handler.setFormatter(JsonFormatter())
        logger = logging.getLogger("repro.test.json")
        logger.addHandler(handler)
        logger.setLevel(logging.INFO)
        try:
            logger.info("hello %s", "world",
                        extra={"request_id": "r1", "total_ms": 12.5,
                               "spans": {"execute": 12.0}})
        finally:
            logger.removeHandler(handler)
        doc = json.loads(handler.lines[0])
        assert doc["msg"] == "hello world"
        assert doc["level"] == "INFO"
        assert doc["request_id"] == "r1"
        assert doc["spans"] == {"execute": 12.0}
        assert doc["time"].endswith("Z")

    def test_configure_is_idempotent(self):
        first = configure_json_logging(logger_name="repro.test.idem")
        second = configure_json_logging(logger_name="repro.test.idem")
        logger = logging.getLogger("repro.test.idem")
        try:
            json_handlers = [h for h in logger.handlers
                             if isinstance(h.formatter, JsonFormatter)]
            assert json_handlers == [second]
            assert logger.propagate is False
        finally:
            logger.removeHandler(second)
            assert first is not second

    def test_slow_request_log_carries_the_span_breakdown(self):
        handler = _Capture()
        handler.setFormatter(JsonFormatter())
        logger = logging.getLogger("repro.test.slow")
        logger.addHandler(handler)
        logger.setLevel(logging.WARNING)
        tracer = Tracer(MetricsRegistry(), slow_ms=0.0, logger=logger)
        trace = tracer.trace("slowrid", session_id="s1", tenant="t1")
        trace.add("execute", 0.0, 0.050)
        try:
            assert tracer.maybe_log_slow(trace, loss=1.5, batch_size=2)
        finally:
            logger.removeHandler(handler)
        doc = json.loads(handler.lines[0])
        assert doc["request_id"] == "slowrid"
        assert doc["spans"]["execute"] == pytest.approx(50.0, rel=0.01)
        assert doc["loss"] == 1.5
        assert tracer.slow_requests == 1

    def test_fast_requests_are_not_logged(self):
        tracer = Tracer(slow_ms=1e9)
        trace = tracer.trace()
        trace.add("execute", 0.0, 0.001)
        assert not tracer.maybe_log_slow(trace)
        assert tracer.slow_requests == 0


# ---------------------------------------------------------------------------
# executor-level kernel timing
# ---------------------------------------------------------------------------


class TestInstrObserver:
    def test_observer_sees_every_instruction_with_variants(self):
        from repro.runtime.compiler import compile_training
        from repro.runtime.executor import Executor

        graph = build_mlp(2)
        program = compile_training(graph, loss="softmax_ce")
        executor = Executor(program)
        events: list[tuple[str, str, float, float]] = []
        executor.instr_observer = lambda instr, began, ended: \
            events.append((instr.node.op_type, instr.variant, began, ended))
        rng = np.random.default_rng(0)
        executor.run({"x": rng.standard_normal((2, 5)).astype(np.float32),
                      program.meta["labels"]:
                          rng.integers(0, 3, size=2)})
        assert events, "observer never fired"
        assert all(ended >= began for _, _, began, ended in events)
        variants = {variant for _, variant, _, _ in events}
        assert "base" in variants
        # fusion is on by default: fused groups must be labeled as such
        assert any(v == "fused" for v in variants) \
            or len(program.plan().instructions) == len(events)
        # uninstalled observer costs nothing and breaks nothing
        executor.instr_observer = None
        executor.run({"x": rng.standard_normal((2, 5)).astype(np.float32),
                      program.meta["labels"]: rng.integers(0, 3, size=2)})
        assert len(events) == len(program.plan().instructions)


# ---------------------------------------------------------------------------
# end-to-end over the gateway (thread backend)
# ---------------------------------------------------------------------------


@pytest.fixture(scope="module")
def obs_gateway():
    service = FineTuneService(max_batch=2, workers=1, trace_sample=1)
    gateway = GatewayServer(service)
    gateway.start()
    session = service.create_session(build_mlp, model_id="mlp",
                                     scheme="full", tenant="tenant-obs")
    client = ServeClient(gateway.url)
    try:
        yield gateway, client, session
    finally:
        client.close()
        gateway.close(drain_timeout=10.0)


class TestGatewayTracing:
    def test_request_id_minted_and_echoed(self, obs_gateway):
        gateway, client, session = obs_gateway
        request = urllib.request.Request(f"{gateway.url}/v1/healthz")
        with urllib.request.urlopen(request) as response:
            minted = response.headers["X-Request-Id"]
        assert re.fullmatch(r"[0-9a-f]{16}", minted)

        request = urllib.request.Request(
            f"{gateway.url}/v1/healthz",
            headers={"X-Request-Id": "my-id-42"})
        with urllib.request.urlopen(request) as response:
            assert response.headers["X-Request-Id"] == "my-id-42"

    def test_hostile_request_ids_are_replaced(self, obs_gateway):
        gateway, _, _ = obs_gateway
        request = urllib.request.Request(
            f"{gateway.url}/v1/healthz",
            headers={"X-Request-Id": "x" * 65})
        with urllib.request.urlopen(request) as response:
            echoed = response.headers["X-Request-Id"]
        assert echoed != "x" * 65
        assert re.fullmatch(r"[0-9a-f]{16}", echoed)

    def test_step_carries_all_six_stages(self, obs_gateway):
        _, client, session = obs_gateway
        rng = np.random.default_rng(1)
        result = client.step(session.id, *mlp_example(rng))
        assert set(STAGES) <= set(result["timings"])
        assert result["timings"]["total"] > 0
        span_sum = sum(ms for stage, ms in result["timings"].items()
                       if stage != "total")
        assert span_sum <= result["timings"]["total"] * 1.05
        assert re.fullmatch(r"[0-9a-f]{16}", result["request_id"])

    def test_trace_export_correlates_by_request_id(self, obs_gateway):
        _, client, session = obs_gateway
        rng = np.random.default_rng(2)
        rid = client.step(session.id, *mlp_example(rng))["request_id"]
        doc = client.trace()
        assert doc["displayTimeUnit"] == "ms"
        mine = [e for e in doc["traceEvents"]
                if e.get("args", {}).get("request_id") == rid]
        assert {e["name"] for e in mine} >= set(STAGES)
        assert all(e["ph"] == "X" for e in mine)
        # kernel sampling at 1/1 put kernel rows in the ring too
        assert any(e["cat"] == "kernel" for e in doc["traceEvents"])

    def test_prometheus_endpoint(self, obs_gateway):
        gateway, client, session = obs_gateway
        rng = np.random.default_rng(3)
        client.step(session.id, *mlp_example(rng))
        text = client.prometheus_metrics()
        samples = check_prometheus_text(text)
        assert "serve_stage_ms_bucket" in samples
        assert "serve_kernel_ms_bucket" in samples

    def test_unknown_metrics_format_is_rejected(self, obs_gateway):
        gateway, _, _ = obs_gateway
        with pytest.raises(urllib.error.HTTPError) as err:
            urllib.request.urlopen(
                f"{gateway.url}/v1/metrics?format=bogus")
        assert err.value.code == 400


# ---------------------------------------------------------------------------
# cross-process propagation + crash resilience
# ---------------------------------------------------------------------------


class TestProcessBackendTracing:
    def test_request_ids_cross_the_pickle_boundary(self, tmp_path, rng):
        with FineTuneService(workers=1, max_batch=2, backend="process",
                             cache_dir=tmp_path, trace_sample=1) as service:
            session = service.create_session(build_mlp, model_id="mlp",
                                             scheme="full")
            trace = service.tracer.trace("cross1234",
                                         session_id=session.id)
            x, y = mlp_example(rng)
            result = service.submit(session.id, x, np.int64(y),
                                    trace=trace).result()
            assert np.isfinite(result.loss)
            assert result.timings is not None
            events = service.tracer.ring.snapshot()
            workers = [e for e in events if e["name"] == "worker_execute"]
            assert workers, "worker step produced no trace row"
            assert any("cross1234" in e["args"]["request_id"]
                       for e in workers)
            parent_pid = {e["pid"] for e in events
                          if e["cat"] == "stage"
                          and e["name"] != "worker_execute"}
            worker_pid = {e["pid"] for e in workers}
            assert worker_pid.isdisjoint(parent_pid)
            # sampled kernels came home from the worker process
            kernels = [e for e in events if e["cat"] == "kernel"]
            assert kernels and {e["pid"] for e in kernels} == worker_pid
            # the probe surfaces worker-local kernel aggregates
            stats = service.engine.probe()["kernel_stats"]
            assert stats and all(v["count"] >= 1 for v in stats.values())

    def test_sigkilled_worker_leaves_the_ring_valid(self, tmp_path, rng):
        import os
        import signal

        from repro.errors import ServeError

        with FineTuneService(workers=1, max_batch=2, backend="process",
                             cache_dir=tmp_path, trace_sample=1) as service:
            session = service.create_session(build_mlp, model_id="mlp",
                                             scheme="full")
            x, y = mlp_example(rng)
            service.step(session.id, x, np.int64(y))
            before = len(service.tracer.ring)
            assert before > 0

            for pid in service.engine.worker_pids():
                os.kill(pid, signal.SIGKILL)
            with pytest.raises(ServeError, match="worker process died"):
                service.step(session.id, x, np.int64(y))

            # Every ring event is still a complete, serializable record —
            # the dead worker contributed nothing torn.
            doc = trace_document(service.tracer.ring.snapshot())
            json.dumps(doc)
            for event in doc["traceEvents"]:
                assert {"name", "ph", "ts", "dur", "pid"} <= set(event)

            # Recovery: the rebuilt pool keeps tracing.
            service.step(session.id, x, np.int64(y))
            after = service.tracer.ring.snapshot()
            assert [e for e in after if e["name"] == "worker_execute"]
