"""Plan-vs-interpreter equivalence suite.

The compiled execution plan must be observationally identical to the legacy
interpreter: byte-identical outputs, byte-identical mutable state after any
number of steps, and the exact same ``peak_transient_bytes`` (which the
memory tests in turn cross-check against the analytical profiler). Every
test here runs both backends side by side over independent state copies.
"""

import numpy as np
import pytest

from repro.errors import ExecutionError
from repro.ir import GraphBuilder
from repro.runtime import Executor, Program, build_plan
from repro.runtime.compiler import CompileOptions, compile_training
from repro.sparse import (LoRAConfig, UpdateScheme, full_update, inject_lora,
                          lora_scheme)
from repro.train import SGD, Adam, Lion

from conftest import make_mlp_graph


def fork(program):
    """An independent replica of ``program``: shared plan, private state."""
    return program.with_state(
        {name: array.copy() for name, array in program.state.items()})


def assert_equivalent(program, feeds_fn, steps=4):
    """Run plan and interpreter side by side; everything must match.

    Outputs, mutable state, and the final transient bytes must be
    byte-identical on every step. The peak contract is two-sided: the
    ``passes="none"`` lowering replicates the interpreter's measured peak
    exactly (the oracle invariant), while the optimized default plan's
    recomputed peak may only be lower — fused chains eliminate
    intermediates the interpreter still materialises.
    """
    from repro.runtime import build_plan_spec

    plan_prog = fork(program)
    int_prog = fork(program)
    ex_plan = Executor(plan_prog)  # the default backend
    ex_int = Executor(int_prog, backend="interpreter")
    baseline = build_plan_spec(program, passes="none")
    for step in range(steps):
        feeds = feeds_fn(step)
        out_plan = ex_plan.run(feeds)
        out_int = ex_int.run(feeds)
        assert set(out_plan) == set(out_int)
        for name in out_int:
            assert out_plan[name].dtype == out_int[name].dtype, name
            np.testing.assert_array_equal(out_plan[name], out_int[name],
                                          err_msg=f"output {name} step {step}")
        assert baseline.peak_transient_bytes == ex_int.peak_transient_bytes
        assert ex_plan.peak_transient_bytes <= ex_int.peak_transient_bytes
        assert ex_plan.last_transient_bytes == ex_int.last_transient_bytes
        for name in int_prog.state:
            np.testing.assert_array_equal(
                plan_prog.state[name], int_prog.state[name],
                err_msg=f"state {name} diverged at step {step}")
    return ex_plan


class TestMLPTraining:
    @pytest.mark.parametrize("opt", [SGD(0.2), SGD(0.1, momentum=0.9),
                                     SGD(0.1, weight_decay=0.01),
                                     Adam(0.01), Lion(0.01)])
    def test_full_update(self, opt, rng):
        b, _ = make_mlp_graph(seed=1)
        program = compile_training(b.graph, optimizer=opt)
        x = rng.standard_normal((4, 5)).astype(np.float32)
        y = np.array([0, 1, 2, 0], np.int64)
        assert_equivalent(program, lambda step: {"x": x, "labels": y},
                          steps=5)

    @pytest.mark.parametrize("scheme", [
        UpdateScheme("bias", {"b1": 1.0, "b2": 1.0}),
        UpdateScheme("channel", {"w1": 0.5, "w2": 1.0, "b2": 1.0}),
    ])
    def test_sparse_schemes(self, scheme, rng):
        b, _ = make_mlp_graph(din=8, seed=2)
        program = compile_training(b.graph, optimizer=SGD(0.2),
                                   scheme=scheme)
        xs = [rng.standard_normal((4, 8)).astype(np.float32)
              for _ in range(4)]
        y = np.array([0, 1, 2, 0], np.int64)
        assert_equivalent(program, lambda step: {"x": xs[step], "labels": y})

    def test_accumulation_and_momentum(self, rng):
        b, _ = make_mlp_graph(seed=3)
        program = compile_training(
            b.graph, optimizer=SGD(0.1, momentum=0.9, accum_steps=2))
        x = rng.standard_normal((4, 5)).astype(np.float32)
        y = np.array([1, 0, 2, 1], np.int64)
        assert_equivalent(program, lambda step: {"x": x, "labels": y},
                          steps=6)


class TestConvAndSparseBP:
    def test_cnn_sparse_training(self, rng):
        from repro.frontend.keras_like import (Conv2D, Dense,
                                               GlobalAveragePooling2D,
                                               build_sequential)

        forward = build_sequential([
            Conv2D(8, 3, padding="same", activation="relu"),
            Conv2D(8, 3, strides=2, padding="same", activation="relu"),
            GlobalAveragePooling2D(),
            Dense(4),
        ], input_shape=(2, 3, 8, 8), seed=5)
        params = sorted(forward.trainable)
        scheme = UpdateScheme("tail", {params[-1]: 1.0, params[-2]: 1.0})
        program = compile_training(forward, optimizer=SGD(0.1),
                                   scheme=scheme)
        x = rng.standard_normal((2, 3, 8, 8)).astype(np.float32)
        y = np.array([0, 3], np.int64)
        labels = program.meta["labels"]
        assert_equivalent(program,
                          lambda step: {forward.inputs[0]: x, labels: y})

    def test_mcunet_paper_scheme(self, rng):
        from repro.models import build_model, paper_scheme

        forward = build_model("mcunet_micro", batch=2)
        program = compile_training(forward, optimizer=SGD(0.05),
                                   scheme=paper_scheme(forward))
        x = rng.standard_normal(
            forward.spec(forward.inputs[0]).shape).astype(np.float32)
        y = rng.integers(0, 10, 2).astype(np.int64)
        labels = program.meta["labels"]
        assert_equivalent(program,
                          lambda step: {forward.inputs[0]: x, labels: y},
                          steps=3)


class TestInt8AndLoRA:
    def test_int8_inference(self, rng):
        from repro.frontend.keras_like import (Conv2D, Dense,
                                               GlobalAveragePooling2D,
                                               build_sequential)
        from repro.quant import collect_ranges, quantize_inference_graph

        forward = build_sequential([
            Conv2D(6, 3, padding="same", activation="relu"),
            GlobalAveragePooling2D(),
            Dense(4),
        ], input_shape=(2, 3, 8, 8), seed=7)
        calib = [{forward.inputs[0]:
                  rng.standard_normal((2, 3, 8, 8)).astype(np.float32)}
                 for _ in range(2)]
        int8 = quantize_inference_graph(forward,
                                        collect_ranges(forward, calib))
        program = Program.from_graph(int8)
        assert_equivalent(program, lambda step: calib[0], steps=2)

    def test_lora_training(self, rng):
        from repro.models import build_model

        base = build_model("bert_micro", batch=2, seq_len=8, num_classes=2)
        lora = inject_lora(base, LoRAConfig(rank=2))
        program = compile_training(lora, optimizer=SGD(0.1),
                                   scheme=lora_scheme(lora))
        ids = rng.integers(0, 50, base.spec(base.inputs[0]).shape)
        feeds = {base.inputs[0]: ids.astype(np.int64),
                 program.meta["labels"]: rng.integers(0, 2, 2).astype(
                     np.int64)}
        assert_equivalent(program, lambda step: feeds, steps=3)


class TestEdgeSemantics:
    def test_state_aliasing_views_materialised(self, rng):
        """transpose(param) must not observe the in-place update the apply
        node performs later in the same (reordered) step."""
        b = GraphBuilder("alias")
        x = b.input("x", (4, 6))
        w = b.initializer("w", rng.standard_normal((3, 6))
                          .astype(np.float32), trainable=True)
        wt = b.emit("transpose", [w], {"perm": (1, 0)})
        logits = b.matmul(x, wt)
        b.mark_output(logits)
        program = compile_training(b.graph, optimizer=SGD(0.5),
                                   scheme=full_update(b.graph))
        xv = rng.standard_normal((4, 6)).astype(np.float32)
        y = np.array([0, 1, 2, 0], np.int64)
        labels = program.meta["labels"]
        ex = assert_equivalent(program, lambda step: {"x": xv, labels: y},
                               steps=4)
        # and the plan hoisted the check: only the transpose needs scanning
        plan = ex.plan
        checked = [i.node.op_type for i in plan.instructions
                   if i.check_state_slots]
        assert set(checked) <= {"transpose", "reshape", "slice"}

    def test_dead_outputs_freed_identically(self):
        b = GraphBuilder("dead")
        x = b.input("x", (16, 16))
        b.emit("relu", [x])        # dead: nobody consumes, not an output
        y = b.emit("tanh", [x])
        b.mark_output(y)
        program = Program.from_graph(b.graph)
        assert_equivalent(program,
                          lambda step: {"x": np.ones((16, 16), np.float32)},
                          steps=3)

    def test_unknown_feed_rejected_on_both_backends(self):
        b, _ = make_mlp_graph()
        program = Program.from_graph(b.graph)
        feeds = {"x": np.ones((4, 5), np.float32),
                 "bogus": np.ones(3, np.float32)}
        for backend in ("plan", "interpreter"):
            with pytest.raises(ExecutionError, match="unknown feed"):
                Executor(program, backend=backend).run(feeds)

    def test_outputs_survive_later_steps(self, rng):
        """Arrays returned from step k must never be clobbered by the
        arena recycling of step k+1 (outputs are never recycled)."""
        b, names = make_mlp_graph(seed=4)
        program = Program.from_graph(b.graph)
        ex = Executor(program)
        x1 = rng.standard_normal((4, 5)).astype(np.float32)
        x2 = rng.standard_normal((4, 5)).astype(np.float32)
        out1 = ex.run({"x": x1})[names["logits"]]
        snapshot = out1.copy()
        ex.run({"x": x2})
        ex.run({"x": x2})
        np.testing.assert_array_equal(out1, snapshot)


class TestPlanStructure:
    def test_plan_shared_across_state_overlays(self):
        b, _ = make_mlp_graph()
        program = compile_training(b.graph, optimizer=SGD(0.1))
        overlay = program.with_state(
            {name: arr.copy() for name, arr in program.state.items()})
        assert program.plan() is overlay.plan()

    def test_compiler_prebuilds_plan(self):
        b, _ = make_mlp_graph()
        program = compile_training(b.graph, optimizer=SGD(0.1))
        assert "__plan__" in program.meta

    def test_plan_static_accounting_matches_profiler(self):
        from repro.memory import profile_memory
        from repro.runtime import build_plan_spec

        b, _ = make_mlp_graph(batch=8, din=12, dhidden=16, dout=4)
        program = compile_training(b.graph, optimizer=SGD(0.1))
        profile = profile_memory(program.graph, program.schedule)
        # The unoptimized lowering replicates the analytic profiler
        # exactly; the optimized default can only shave the peak.
        assert build_plan_spec(program, passes="none").peak_transient_bytes \
            == profile.peak_transient_bytes
        assert program.plan().peak_transient_bytes \
            <= profile.peak_transient_bytes

    def test_bad_schedule_rejected_at_build(self):
        b, _ = make_mlp_graph()
        program = Program.from_graph(b.graph)
        program.schedule.reverse()
        program.meta.pop("__plan__", None)
        with pytest.raises(ExecutionError):
            build_plan(program)

    def test_unknown_backend_rejected(self):
        b, _ = make_mlp_graph()
        with pytest.raises(ValueError):
            Executor(Program.from_graph(b.graph), backend="jit")

    def test_steady_state_allocations_reach_floor(self, rng):
        """After warmup every out=-capable instruction draws from the
        arena (or a donated input): the only fresh output buffers left are
        from kernels with no out= variant."""
        b, _ = make_mlp_graph(seed=6)
        program = compile_training(b.graph, optimizer=SGD(0.1))
        ex = Executor(program)
        feeds = {"x": rng.standard_normal((4, 5)).astype(np.float32),
                 "labels": np.array([0, 1, 2, 0], np.int64)}
        ex.run(feeds)
        first = ex.last_step_fresh_allocs
        for _ in range(3):
            ex.run(feeds)
        floor = sum(i.fresh_outputs for i in ex.plan.instructions
                    if i.out_kernel is None)
        assert ex.last_step_fresh_allocs == floor
        assert first > floor  # warmup really did allocate more
        ex_int = Executor(program, backend="interpreter")
        ex_int.run(feeds)
        assert ex_int.last_step_fresh_allocs > ex.last_step_fresh_allocs
