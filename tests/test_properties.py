"""Cross-cutting property-based tests on compiler invariants.

These pin down the invariants everything else relies on:

* any valid schedule of the same graph computes the same outputs,
* the memory-aware schedule never exceeds the naive schedule's peak,
* full serialization round-trips random graphs exactly,
* reordering the optimizer applies does not change the trained weights,
* pruned-sparse and masked-sparse training move shared parameters
  identically (the paper's correctness premise for graph pruning).
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ir import GraphBuilder, graph_from_dict, graph_to_dict, \
    validate_graph
from repro.memory import profile_memory
from repro.passes import default_schedule, memory_aware_schedule
from repro.runtime import Executor, Program
from repro.runtime.compiler import CompileOptions, compile_training
from repro.sparse import UpdateScheme
from repro.train import SGD

from conftest import make_mlp_graph


def random_dag(seed: int) -> tuple:
    """A random elementwise/matmul DAG over a (4, 6) input."""
    rng = np.random.default_rng(seed)
    b = GraphBuilder("g")
    x = b.input("x", (4, 6))
    pool = [x]
    for i in range(int(rng.integers(3, 10))):
        pick = pool[int(rng.integers(len(pool)))]
        kind = rng.integers(0, 4)
        if kind == 0:
            pool.append(b.emit("tanh", [pick]))
        elif kind == 1:
            other = pool[int(rng.integers(len(pool)))]
            pool.append(b.add(pick, other))
        elif kind == 2:
            w = b.initializer(f"w{i}", rng.standard_normal(
                (6, 6)).astype(np.float32) * 0.3, trainable=True)
            pool.append(b.matmul(pick, w))
        else:
            pool.append(b.emit("sigmoid", [pick]))
    b.mark_output(pool[-1])
    feed = rng.standard_normal((4, 6)).astype(np.float32)
    return b.graph, feed


@given(st.integers(0, 2000))
@settings(max_examples=30, deadline=None)
def test_any_valid_schedule_computes_same_outputs(seed):
    graph, feed = random_dag(seed)
    out_name = graph.outputs[0]
    baseline = Executor(Program.from_graph(graph)).run({"x": feed})[out_name]
    smart = memory_aware_schedule(graph)
    program = Program.from_graph(graph, smart)
    program.validate_schedule()
    result = Executor(program).run({"x": feed})[out_name]
    np.testing.assert_allclose(result, baseline, atol=1e-6)


@given(st.integers(0, 2000))
@settings(max_examples=30, deadline=None)
def test_memory_aware_schedule_never_worse(seed):
    graph, _ = random_dag(seed)
    naive = profile_memory(graph, default_schedule(graph))
    smart = profile_memory(graph, memory_aware_schedule(graph))
    assert smart.peak_transient_bytes <= naive.peak_transient_bytes


@given(st.integers(0, 2000))
@settings(max_examples=30, deadline=None)
def test_serialization_roundtrip_random_graphs(seed):
    graph, feed = random_dag(seed)
    back = graph_from_dict(graph_to_dict(graph))
    validate_graph(back)
    out = graph.outputs[0]
    a = Executor(Program.from_graph(graph)).run({"x": feed})[out]
    c = Executor(Program.from_graph(back)).run({"x": feed})[out]
    np.testing.assert_allclose(a, c, atol=1e-6)


@pytest.mark.parametrize("seed", [0, 1, 2])
def test_reordering_does_not_change_training_result(seed):
    """Applying each gradient immediately vs holding all gradients until a
    final optimizer phase must produce identical weights: the gradients are
    all computed from the same (pre-update) forward pass either way."""
    feeds = {
        "x": np.random.default_rng(seed).standard_normal(
            (4, 5)).astype(np.float32),
        "labels": np.array([0, 1, 2, 0], np.int64),
    }
    states = {}
    for reorder in (True, False):
        b, _ = make_mlp_graph(seed=seed)
        program = compile_training(
            b.graph, optimizer=SGD(0.1, momentum=0.9),
            options=CompileOptions(reorder=reorder,
                                   applies_last=not reorder))
        ex = Executor(program)
        for _ in range(5):
            ex.run(feeds)
        states[reorder] = program.state
    for key in states[True]:
        np.testing.assert_allclose(states[True][key], states[False][key],
                                   atol=1e-5, err_msg=key)


@pytest.mark.parametrize("scheme_updates", [
    {"w2": 1.0, "b2": 1.0},
    {"b1": 1.0, "b2": 1.0},
    {"w1": 1.0, "b1": 1.0, "w2": 1.0, "b2": 1.0},
])
def test_pruned_equals_masked_on_shared_params(scheme_updates):
    """Graph pruning is purely an efficiency transform: the parameters a
    scheme updates receive exactly the gradients masked (full-compute)
    training would give them."""
    feeds = {
        "x": np.random.default_rng(7).standard_normal(
            (4, 5)).astype(np.float32),
        "labels": np.array([1, 0, 2, 1], np.int64),
    }
    scheme = UpdateScheme("s", scheme_updates)
    results = {}
    for masked in (False, True):
        b, _ = make_mlp_graph(seed=3)
        program = compile_training(
            b.graph, optimizer=SGD(0.2), scheme=scheme,
            options=CompileOptions(masked_sparse=masked))
        ex = Executor(program)
        for _ in range(3):
            ex.run(feeds)
        results[masked] = program.state
    for param in scheme_updates:
        np.testing.assert_allclose(results[False][param],
                                   results[True][param], atol=1e-5,
                                   err_msg=param)


@given(st.integers(0, 1000))
@settings(max_examples=15, deadline=None)
def test_executor_peak_matches_profiler_on_random_graphs(seed):
    """The interpreter (and the unoptimized plan) replicate the analytic
    profiler byte-exactly; the optimized plan's recomputed peak can only
    be lower — fused chains drop intermediates the profiler still sees."""
    from repro.runtime import build_plan_spec

    graph, feed = random_dag(seed)
    schedule = memory_aware_schedule(graph)
    program = Program.from_graph(graph, schedule)
    ex_int = Executor(program, backend="interpreter")
    ex_int.run({"x": feed})
    profile = profile_memory(graph, schedule)
    assert ex_int.peak_transient_bytes == profile.peak_transient_bytes
    assert build_plan_spec(program, passes="none").peak_transient_bytes \
        == profile.peak_transient_bytes
    ex_plan = Executor(program)
    ex_plan.run({"x": feed})
    assert ex_plan.peak_transient_bytes <= profile.peak_transient_bytes


@given(st.integers(0, 1000))
@settings(max_examples=10, deadline=None)
def test_artifact_roundtrip_random_graphs(seed):
    """save_artifact/load_artifact preserves outputs for arbitrary DAGs."""
    import tempfile

    from repro.deploy import load_artifact, save_artifact

    graph, feed = random_dag(seed)
    program = Program.from_graph(graph)
    with tempfile.TemporaryDirectory() as root:
        save_artifact(program, root)
        deployed = load_artifact(root)
        want = Executor(program).run({"x": feed})
        got = deployed.run({"x": feed})
        for name in program.outputs:
            np.testing.assert_allclose(want[name], got[name], rtol=1e-6)


@given(st.integers(0, 1000), st.floats(0.4, 0.95))
@settings(max_examples=10, deadline=None)
def test_remat_equivalence_on_random_graphs(seed, fraction):
    """Rematerialization preserves outputs on arbitrary DAGs too, not
    just on training graphs."""
    from repro.memory import rematerialize

    graph, feed = random_dag(seed)
    schedule = graph.topological_order()
    base = profile_memory(graph, schedule)
    result = rematerialize(graph, schedule,
                           int(base.peak_total_bytes * fraction))
    validate_graph(result.graph)
    want = Executor(Program.from_graph(graph, schedule)).run({"x": feed})
    got = Executor(Program.from_graph(result.graph, result.schedule)) \
        .run({"x": feed})
    for name in graph.outputs:
        np.testing.assert_allclose(want[name], got[name], rtol=1e-5)


@given(st.integers(0, 1000))
@settings(max_examples=15, deadline=None)
def test_arena_plan_never_overlaps_random_graphs(seed):
    from repro.memory import plan_arena

    graph, _ = random_dag(seed)
    schedule = memory_aware_schedule(graph)
    plan = plan_arena(graph, schedule)
    plan.validate(graph)  # raises on any overlap
    peak = profile_memory(graph, schedule).peak_transient_bytes
    # The arena can pad for alignment but must cover the peak's tensors.
    assert plan.arena_bytes >= 0
    assert plan.arena_bytes <= max(4 * peak, 1024)


@given(st.integers(1, 40), st.integers(1, 40), st.integers(1, 6))
@settings(max_examples=25, deadline=None)
def test_keras_dense_stack_shapes_match_trace(units1, units2, batch):
    """Layer-spec shape inference always agrees with traced-graph shapes."""
    from repro.frontend.keras_like import Dense, build_sequential

    graph = build_sequential([Dense(units1, activation="relu"),
                              Dense(units2)], (batch, 7))
    assert graph.spec(graph.outputs[0]).shape == (batch, units2)
    validate_graph(graph)


@given(st.integers(0, 500))
@settings(max_examples=10, deadline=None)
def test_rewrite_pass_preserves_random_dag_outputs(seed):
    from repro.passes import AlgebraicRewritePass, PassContext

    graph, feed = random_dag(seed)
    want = Executor(Program.from_graph(graph)).run({"x": feed})
    AlgebraicRewritePass().run(graph, PassContext())
    validate_graph(graph)
    got = Executor(Program.from_graph(graph)).run({"x": feed})
    for name in graph.outputs:
        np.testing.assert_allclose(want[name], got[name], rtol=1e-5)
