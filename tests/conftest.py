"""Shared fixtures and helpers for the test suite."""

from __future__ import annotations

import os

# Every plan the suite compiles is also a plan-verifier subject: the
# whole tier-1 run doubles as the verifier's zero-false-positive gate.
# Explicitly exported values (e.g. REPRO_VERIFY_PLANS=0) still win.
os.environ.setdefault("REPRO_VERIFY_PLANS", "1")

import numpy as np
import pytest

from repro.autodiff import build_backward
from repro.ir import DType, GraphBuilder
from repro.runtime import interpret


@pytest.fixture
def rng():
    return np.random.default_rng(0)


def make_mlp_graph(batch=4, din=5, dhidden=6, dout=3, seed=0,
                   activation="relu"):
    """A two-layer MLP forward graph used across many tests."""
    rng = np.random.default_rng(seed)
    b = GraphBuilder("mlp")
    x = b.input("x", (batch, din))
    w1 = b.initializer("w1", rng.standard_normal((din, dhidden))
                       .astype(np.float32) * 0.5, trainable=True)
    b1 = b.initializer("b1", np.zeros(dhidden, np.float32), trainable=True)
    w2 = b.initializer("w2", rng.standard_normal((dhidden, dout))
                       .astype(np.float32) * 0.5, trainable=True)
    b2 = b.initializer("b2", np.zeros(dout, np.float32), trainable=True)
    h = b.bias_add(b.matmul(x, w1), b1, axis=1)
    h = b.emit(activation, [h])
    logits = b.bias_add(b.matmul(h, w2), b2, axis=1)
    b.mark_output(logits)
    return b, {"x": x, "w1": w1, "b1": b1, "w2": w2, "b2": b2,
               "logits": logits}


def numeric_grad(f, x, eps=1e-3):
    """Central finite differences of scalar-valued f at array x."""
    x = np.asarray(x, dtype=np.float64)
    grad = np.zeros_like(x)
    it = np.nditer(x, flags=["multi_index"])
    for _ in it:
        i = it.multi_index
        hi, lo = x.copy(), x.copy()
        hi[i] += eps
        lo[i] -= eps
        grad[i] = (f(hi.astype(np.float32)) - f(lo.astype(np.float32))) \
            / (2 * eps)
    return grad


def gradcheck_single_op(op_type, in_shapes, attrs=None, seed=0, tol=2e-2,
                        make_inputs=None, loss="sumsq"):
    """Check the registered gradient rule for one op against finite diffs.

    Builds loss = mean(y*y) over the op's output, differentiates w.r.t.
    every float input, and compares with numeric gradients.
    """
    rng = np.random.default_rng(seed)
    attrs = attrs or {}
    if make_inputs is not None:
        arrays = make_inputs(rng)
    else:
        arrays = [rng.standard_normal(s).astype(np.float32) * 0.8
                  for s in in_shapes]

    def build(values):
        b = GraphBuilder("g")
        names = []
        for i, arr in enumerate(values):
            if np.issubdtype(arr.dtype, np.integer):
                names.append(b.initializer(f"i{i}", arr))
            else:
                names.append(b.initializer(f"i{i}", arr, trainable=True))
        y = b.emit(op_type, names, attrs)
        sq = b.mul(y, y)
        loss_v = b.reduce_mean(sq)
        b.mark_output(loss_v)
        return b, names, loss_v

    b, names, loss_v = build(arrays)
    float_inputs = [n for n, a in zip(names, arrays)
                    if not np.issubdtype(a.dtype, np.integer)]
    result = build_backward(b.graph, loss_v, float_inputs)
    out = interpret(b.graph)
    for idx, (name, arr) in enumerate(zip(names, arrays)):
        if name not in float_inputs:
            continue

        def f(candidate, idx=idx):
            trial = [a.copy() for a in arrays]
            trial[idx] = candidate
            b2, _, loss2 = build(trial)
            return float(interpret(b2.graph)[loss2])

        got = out[result.grads[name]]
        want = numeric_grad(f, arr)
        err = np.abs(got - want).max()
        scale = max(np.abs(want).max(), 1.0)
        assert err / scale < tol, (
            f"{op_type} grad for input {idx}: err {err:.2e} scale {scale:.2e}"
        )
