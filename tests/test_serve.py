"""Tests for the `repro.serve` subsystem.

Covers the satellite checklist: program-key stability and sensitivity,
cache LRU/eviction/single-flight, concurrent tenant isolation (weights
never cross sessions), and scheduler batching correctness against plain
sequential execution.
"""

from __future__ import annotations

import threading
import time

import numpy as np
import pytest

from repro.errors import ServeError
from repro.frontend import InputSpec, Linear, Sequential, trace
from repro.ir import Graph, graph_fingerprint
from repro.runtime import Executor
from repro.runtime.compiler import CompileOptions, compile_training
from repro.serve import (FineTuneService, MetricsRegistry, ProgramCache,
                         bucket_sizes, program_key)
from repro.sparse import UpdateScheme, full_update
from repro.train import SGD

from conftest import make_mlp_graph


def build_mlp(batch: int, seed: int = 0) -> Graph:
    """A deterministic little MLP rebuildable at any batch size."""
    builder, _ = make_mlp_graph(batch=batch, din=5, dhidden=6, dout=3,
                                seed=seed)
    return builder.graph


def mlp_example(rng):
    return (rng.standard_normal(5).astype(np.float32),
            np.int64(rng.integers(0, 3)))


# ---------------------------------------------------------------------------
# program keys / fingerprints
# ---------------------------------------------------------------------------

class TestProgramKey:

    def test_same_graph_same_key(self):
        a, b = build_mlp(4), build_mlp(4)
        assert graph_fingerprint(a) == graph_fingerprint(b)
        key_a = program_key(a, scheme=full_update(a), optimizer=SGD(0.01))
        key_b = program_key(b, scheme=full_update(b), optimizer=SGD(0.01))
        assert key_a == key_b

    def test_fingerprint_roundtrips_serialization(self, tmp_path):
        from repro.ir import load_graph, save_graph

        graph = build_mlp(4)
        save_graph(graph, tmp_path / "mlp")
        loaded = load_graph(tmp_path / "mlp")
        assert graph_fingerprint(graph, include_weights=True) == \
            graph_fingerprint(loaded, include_weights=True)

    def test_changed_scheme_changes_key(self):
        graph = build_mlp(4)
        base = program_key(graph, scheme=full_update(graph),
                           optimizer=SGD(0.01))
        biased = program_key(graph,
                             scheme=UpdateScheme("bias", {"b1": 1.0,
                                                          "b2": 1.0}),
                             optimizer=SGD(0.01))
        sliced = program_key(
            graph,
            scheme=UpdateScheme("slice", {"w1": 0.5, "b1": 1.0}),
            optimizer=SGD(0.01))
        assert len({base, biased, sliced}) == 3

    def test_scheme_name_is_cosmetic(self):
        graph = build_mlp(4)
        a = UpdateScheme("alpha", {"b1": 1.0})
        b = UpdateScheme("beta", {"b1": 1.0})
        key = lambda s: program_key(graph, scheme=s, optimizer=SGD(0.01))  # noqa: E731
        assert key(a) == key(b)

    def test_options_optimizer_shapes_weights_change_key(self):
        graph = build_mlp(4)
        base = program_key(graph, scheme=full_update(graph),
                           optimizer=SGD(0.01))
        assert base != program_key(graph, scheme=full_update(graph),
                                   optimizer=SGD(0.02))
        assert base != program_key(
            graph, scheme=full_update(graph), optimizer=SGD(0.01),
            options=CompileOptions(reorder=False))
        other_batch = build_mlp(8)
        assert base != program_key(other_batch,
                                   scheme=full_update(other_batch),
                                   optimizer=SGD(0.01))
        other_weights = build_mlp(4, seed=7)
        assert base != program_key(other_weights,
                                   scheme=full_update(other_weights),
                                   optimizer=SGD(0.01))
        # ... unless weights are excluded from the key on purpose
        assert program_key(graph, scheme=full_update(graph),
                           optimizer=SGD(0.01), include_weights=False) == \
            program_key(other_weights, scheme=full_update(other_weights),
                        optimizer=SGD(0.01), include_weights=False)

    def test_program_fingerprint_stable(self):
        graph = build_mlp(4)
        p1 = compile_training(graph, optimizer=SGD(0.01),
                              scheme=full_update(graph))
        p2 = compile_training(build_mlp(4), optimizer=SGD(0.01),
                              scheme=full_update(build_mlp(4)))
        assert p1.fingerprint() == p2.fingerprint()

    def test_mutable_state_names(self):
        graph = build_mlp(4)
        program = compile_training(
            graph, optimizer=SGD(0.01, momentum=0.9),
            scheme=UpdateScheme("bias", {"b1": 1.0, "b2": 1.0}))
        mutable = program.mutable_state_names()
        assert "b1" in mutable and "b2" in mutable
        assert "w1" not in mutable  # frozen under bias_only
        # momentum slots ride along with their parameters
        assert any("b1" in name and name != "b1" for name in mutable)

    def test_with_state_rejects_unknown_names(self):
        graph = build_mlp(4)
        program = compile_training(graph, optimizer=SGD(0.01),
                                   scheme=full_update(graph))
        with pytest.raises(Exception):
            program.with_state({"nope": np.zeros(3, np.float32)})


# ---------------------------------------------------------------------------
# cache
# ---------------------------------------------------------------------------

def _dummy_program(tag: str):
    graph = build_mlp(2)
    program = compile_training(graph, optimizer=SGD(0.01),
                               scheme=full_update(graph))
    program.meta["tag"] = tag
    return program


class TestProgramCache:

    def test_hit_after_miss(self):
        cache = ProgramCache(capacity=4)
        builds = []
        make = lambda: builds.append(1) or _dummy_program("a")  # noqa: E731
        first = cache.get_or_build("k", make)
        second = cache.get_or_build("k", make)
        assert first.program is second.program
        assert len(builds) == 1
        assert cache.stats.hits == 1 and cache.stats.misses == 1

    def test_lru_eviction_order(self):
        cache = ProgramCache(capacity=2)
        cache.get_or_build("a", lambda: _dummy_program("a"))
        cache.get_or_build("b", lambda: _dummy_program("b"))
        cache.get_or_build("a", lambda: _dummy_program("a"))  # refresh a
        cache.get_or_build("c", lambda: _dummy_program("c"))  # evicts b
        assert "a" in cache and "c" in cache and "b" not in cache
        assert cache.stats.evictions == 1
        # b recompiles on next demand
        rebuilt = []
        cache.get_or_build("b", lambda: rebuilt.append(1)
                           or _dummy_program("b"))
        assert rebuilt

    def test_single_flight_concurrent_misses(self):
        cache = ProgramCache(capacity=4)
        builds = []
        gate = threading.Event()

        def slow_build():
            builds.append(threading.get_ident())
            gate.wait(timeout=5)
            return _dummy_program("slow")

        entries = [None] * 8

        def worker(i):
            entries[i] = cache.get_or_build("k", slow_build)

        threads = [threading.Thread(target=worker, args=(i,))
                   for i in range(8)]
        for t in threads:
            t.start()
        gate.set()
        for t in threads:
            t.join(timeout=10)
        assert len(builds) == 1, "concurrent misses must compile once"
        assert all(e is entries[0] for e in entries)
        assert cache.stats.misses == 1 and cache.stats.hits == 7

    def test_failed_build_releases_waiters(self):
        cache = ProgramCache(capacity=4)

        def boom():
            raise RuntimeError("compile failed")

        with pytest.raises(RuntimeError):
            cache.get_or_build("k", boom)
        # the key is not poisoned
        entry = cache.get_or_build("k", lambda: _dummy_program("ok"))
        assert entry.program.meta["tag"] == "ok"


# ---------------------------------------------------------------------------
# sessions / isolation
# ---------------------------------------------------------------------------

class TestSessionIsolation:

    def test_two_tenants_never_share_weights(self):
        rng = np.random.default_rng(0)
        with FineTuneService(max_batch=1, workers=2) as service:
            s1 = service.create_session(build_mlp, model_id="mlp",
                                        scheme="full", tenant="alice")
            s2 = service.create_session(build_mlp, model_id="mlp",
                                        scheme="full", tenant="bob")
            # one program family, one cache entry per bucket — shared
            assert s1.family is s2.family
            before = service.snapshot(s2.id)

            for _ in range(6):
                x, y = mlp_example(rng)
                service.step(s1.id, x, y)

            after = service.snapshot(s2.id)
            for name in before:
                np.testing.assert_array_equal(before[name], after[name])
            # and alice actually trained
            trained = service.snapshot(s1.id)
            assert any(not np.array_equal(trained[n], before[n])
                       for n in trained)

    def test_concurrent_tenant_streams_stay_isolated(self):
        """Interleaved concurrent traffic == each tenant trained alone."""
        def run_alone(seed_stream):
            graph = build_mlp(1)
            program = compile_training(graph, optimizer=SGD(0.01),
                                       scheme=full_update(graph))
            executor = Executor(program)
            for x, y in seed_stream:
                executor.run({"x": x[None, ...], "labels": y[None, ...]})
            return {k: program.state[k].copy()
                    for k in program.mutable_state_names()}

        streams = {}
        for tenant in range(4):
            rng = np.random.default_rng(100 + tenant)
            streams[tenant] = [mlp_example(rng) for _ in range(8)]

        expected = {t: run_alone(stream) for t, stream in streams.items()}

        with FineTuneService(max_batch=1, workers=4) as service:
            sessions = {
                t: service.create_session(build_mlp, model_id="mlp",
                                          scheme="full", tenant=f"t{t}")
                for t in streams
            }
            futures = []
            for step in range(8):  # interleave all tenants each round
                for t, stream in streams.items():
                    x, y = stream[step]
                    futures.append(service.submit(sessions[t].id, x, y))
            for future in futures:
                future.result(timeout=30)

            for t, session in sessions.items():
                got = service.snapshot(session.id)
                for name, value in expected[t].items():
                    np.testing.assert_allclose(
                        got[name], value, rtol=1e-6, atol=1e-7,
                        err_msg=f"tenant {t} diverged on {name}")

    def test_load_weights_rejects_frozen_and_bad_shapes(self):
        with FineTuneService(max_batch=1, workers=1) as service:
            session = service.create_session(
                build_mlp, model_id="mlp",
                scheme=UpdateScheme("bias", {"b1": 1.0, "b2": 1.0}))
            with pytest.raises(ServeError):
                service.load_weights(session.id,
                                     {"w1": np.zeros((5, 6), np.float32)})
            with pytest.raises(ServeError):
                service.load_weights(session.id,
                                     {"b1": np.zeros(2, np.float32)})
            service.load_weights(session.id,
                                 {"b1": np.ones(6, np.float32)})
            assert np.all(service.snapshot(session.id)["b1"] == 1.0)

    def test_unknown_session_and_close(self):
        with FineTuneService(max_batch=1, workers=1) as service:
            with pytest.raises(ServeError):
                service.submit("sess-9999", np.zeros(5, np.float32),
                               np.int64(0))
            session = service.create_session(build_mlp, model_id="mlp",
                                             scheme="full")
            snapshot = service.close_session(session.id)
            assert snapshot
            with pytest.raises(ServeError):
                service.snapshot(session.id)

    def test_close_session_refuses_while_requests_outstanding(self):
        """A 'final' snapshot must actually be final: drain first."""
        from repro.serve import BatchScheduler, StepResult

        class StubSession:
            def __init__(self, sid):
                self.id = sid

        release = threading.Event()

        def runner(session, batch):
            assert release.wait(timeout=10)
            return StepResult(session_id=session.id, loss=0.0, step=0,
                              batch_size=len(batch), program_key="k")

        scheduler = BatchScheduler(runner, max_batch=2, workers=1)
        try:
            session = StubSession("s")
            future = scheduler.submit(session, np.int64(0), np.int64(0))
            assert scheduler.pending("s")
            release.set()
            future.result(timeout=30)
            assert scheduler.drain(timeout=10)
            assert not scheduler.pending("s")
        finally:
            scheduler.close()

        rng = np.random.default_rng(9)
        with FineTuneService(max_batch=1, workers=1) as service:
            session = service.create_session(build_mlp, model_id="mlp",
                                             scheme="full")
            futures = [service.submit(session.id, *mlp_example(rng))
                       for _ in range(4)]
            # Either the requests are still pending (close refuses) or the
            # worker already finished them (close succeeds) — both are
            # correct; what must never happen is a snapshot racing live
            # mutation, so refusal is only required while work is pending.
            if service.scheduler.pending(session.id):
                with pytest.raises(ServeError):
                    service.close_session(session.id)
            for future in futures:
                future.result(timeout=30)
            service.drain()
            snapshot = service.close_session(session.id)
            assert snapshot


# ---------------------------------------------------------------------------
# scheduler
# ---------------------------------------------------------------------------

class TestScheduler:

    def test_bucket_sizes(self):
        assert bucket_sizes(1) == [1]
        assert bucket_sizes(8) == [1, 2, 4, 8]
        assert bucket_sizes(6) == [1, 2, 4, 6]
        with pytest.raises(ServeError):
            bucket_sizes(0)

    def test_unbatched_scheduler_matches_sequential(self):
        """max_batch=1: served losses == a plain sequential Trainer's."""
        rng = np.random.default_rng(3)
        stream = [mlp_example(rng) for _ in range(10)]

        graph = build_mlp(1)
        program = compile_training(graph, optimizer=SGD(0.01),
                                   scheme=full_update(graph))
        executor = Executor(program)
        expected_losses = []
        for x, y in stream:
            out = executor.run({"x": x[None, ...], "labels": y[None, ...]})
            expected_losses.append(float(out[program.meta["loss"]]))

        with FineTuneService(max_batch=1, workers=1) as service:
            session = service.create_session(build_mlp, model_id="mlp",
                                             scheme="full")
            got = [service.step(session.id, x, y).loss for x, y in stream]

        np.testing.assert_allclose(got, expected_losses, rtol=1e-6)

    def test_coalesced_batch_matches_manual_batched_step(self):
        """A coalesced micro-batch == one step of a batch-k program.

        Drives the service's batch runner directly (no scheduler timing
        races): four single-example requests coalesced into one batch must
        produce exactly the loss and post-step state of running the stacked
        batch through a batch-4 compiled program.
        """
        from repro.serve import StepRequest

        rng = np.random.default_rng(4)
        examples = [mlp_example(rng) for _ in range(4)]
        xs = np.stack([x for x, _ in examples])
        ys = np.stack([y for _, y in examples])

        graph = build_mlp(4)
        program = compile_training(graph, optimizer=SGD(0.01),
                                   scheme=full_update(graph))
        out = Executor(program).run({"x": xs, "labels": ys})
        expected_loss = float(out[program.meta["loss"]])
        expected_state = {k: program.state[k].copy()
                          for k in program.mutable_state_names()}

        with FineTuneService(max_batch=4, workers=1) as service:
            session = service.create_session(build_mlp, model_id="mlp",
                                             scheme="full")
            batch = [StepRequest(session=session, x=x, y=y)
                     for x, y in examples]
            result = service._run_batch(session, batch)
            got_state = service.snapshot(session.id)

        assert result.batch_size == 4
        np.testing.assert_allclose(result.loss, expected_loss, rtol=1e-6)
        assert sorted(got_state) == sorted(expected_state)
        for name, value in expected_state.items():
            np.testing.assert_allclose(got_state[name], value, rtol=1e-6,
                                       atol=1e-7, err_msg=name)

    def test_scheduler_coalesces_backlog_and_keeps_fifo(self):
        """While the one worker is busy, a session's backlog coalesces."""
        from repro.serve import BatchScheduler, StepResult

        class StubSession:
            def __init__(self, sid):
                self.id = sid

        calls = []
        started = threading.Event()
        release = threading.Event()

        def runner(session, batch):
            if session.id == "blocker":
                started.set()
                assert release.wait(timeout=10)
            calls.append((session.id, [int(r.x) for r in batch]))
            return StepResult(session_id=session.id, loss=0.0, step=0,
                              batch_size=len(batch), program_key="k")

        scheduler = BatchScheduler(runner, max_batch=4, workers=1)
        try:
            blocker, tenant = StubSession("blocker"), StubSession("a")
            scheduler.submit(blocker, np.int64(0), np.int64(0))
            assert started.wait(timeout=10)
            # Worker is stalled: six requests pile up for session "a".
            futures = [scheduler.submit(tenant, np.int64(i), np.int64(0))
                       for i in range(6)]
            release.set()
            for future in futures:
                future.result(timeout=30)
            assert scheduler.drain(timeout=10)
        finally:
            scheduler.close()

        tenant_calls = [payload for sid, payload in calls if sid == "a"]
        # backlog of 6 -> one batch of 4, then the remaining 2
        assert tenant_calls == [[0, 1, 2, 3], [4, 5]]

    def test_cancelled_request_drops_out_without_poisoning_batch(self):
        """Cancelling one queued request must not fail its batch-mates."""
        from concurrent.futures import CancelledError

        from repro.serve import BatchScheduler, StepResult

        class StubSession:
            def __init__(self, sid):
                self.id = sid

        executed = []
        started = threading.Event()
        release = threading.Event()

        def runner(session, batch):
            if session.id == "blocker":
                started.set()
                assert release.wait(timeout=10)
            executed.append((session.id, [int(r.x) for r in batch]))
            return StepResult(session_id=session.id, loss=0.0, step=0,
                              batch_size=len(batch), program_key="k")

        scheduler = BatchScheduler(runner, max_batch=4, workers=1)
        try:
            scheduler.submit(StubSession("blocker"), np.int64(0),
                             np.int64(0))
            assert started.wait(timeout=10)
            tenant = StubSession("a")
            futures = [scheduler.submit(tenant, np.int64(i), np.int64(0))
                       for i in range(3)]
            assert futures[1].cancel()
            release.set()
            results = [futures[0].result(timeout=30),
                       futures[2].result(timeout=30)]
            with pytest.raises(CancelledError):
                futures[1].result(timeout=1)
        finally:
            scheduler.close()
        # the cancelled example never executed; its batch-mates did
        ran = [x for sid, payload in executed if sid == "a" for x in payload]
        assert sorted(ran) == [0, 2]
        assert all(np.isfinite(r.loss) for r in results)

    def test_close_without_wait_cancels_stranded_requests(self):
        """close(wait=False) must not leave queued futures hanging."""
        from concurrent.futures import CancelledError

        from repro.serve import BatchScheduler, StepResult

        class StubSession:
            def __init__(self, sid):
                self.id = sid

        started = threading.Event()
        release = threading.Event()

        def runner(session, batch):
            started.set()
            assert release.wait(timeout=10)
            return StepResult(session_id=session.id, loss=0.0, step=0,
                              batch_size=len(batch), program_key="k")

        scheduler = BatchScheduler(runner, max_batch=1, workers=1)
        session = StubSession("s")
        first = scheduler.submit(session, np.int64(0), np.int64(0))
        assert started.wait(timeout=10)
        second = scheduler.submit(session, np.int64(1), np.int64(0))
        scheduler.close(wait=False)
        release.set()
        assert first.result(timeout=30).batch_size == 1
        with pytest.raises(CancelledError):
            second.result(timeout=5)

    def test_batching_fairness_across_sessions(self):
        rng = np.random.default_rng(6)
        with FineTuneService(max_batch=8, workers=2) as service:
            sessions = [service.create_session(build_mlp, model_id="mlp",
                                               scheme="full",
                                               tenant=f"t{i}")
                        for i in range(3)]
            futures = []
            for _ in range(8):
                for session in sessions:
                    x, y = mlp_example(rng)
                    futures.append(service.submit(session.id, x, y))
            results = [f.result(timeout=30) for f in futures]
            by_session = {}
            for r in results:
                by_session.setdefault(r.session_id, []).append(r)
            assert set(len(v) for v in by_session.values()) == {8}
            for rs in by_session.values():
                steps = [r.step for r in rs]
                assert steps == sorted(steps), "per-session FIFO violated"


class TestSchedulerLifecycle:
    """Failure/shutdown semantics hardened for the HTTP front door."""

    class StubSession:
        def __init__(self, sid):
            self.id = sid

    def _stalled_scheduler(self, max_batch=1, workers=1, metrics=None):
        """A scheduler whose runner blocks until ``release`` is set."""
        from repro.serve import BatchScheduler, StepResult

        release = threading.Event()

        def runner(session, batch):
            assert release.wait(timeout=30)
            return StepResult(session_id=session.id, loss=0.0, step=0,
                              batch_size=len(batch), program_key="k")

        scheduler = BatchScheduler(runner, max_batch=max_batch,
                                   workers=workers, metrics=metrics)
        return scheduler, release

    def test_queue_depth_gauge_is_live(self):
        """Regression: the gauge must sample live queues on every read,
        not the depth at the last metrics render."""
        from repro.serve import MetricsRegistry

        registry = MetricsRegistry()
        scheduler, release = self._stalled_scheduler(metrics=registry)
        try:
            session = self.StubSession("s")
            first = scheduler.submit(session, np.int64(0), np.int64(0))
            # Wait for the worker to cut the first request into a batch,
            # then pile three more behind it.
            deadline = time.monotonic() + 10
            while scheduler.queue_depth() > 0:
                assert time.monotonic() < deadline
                time.sleep(0.005)
            futures = [scheduler.submit(session, np.int64(i), np.int64(0))
                       for i in range(1, 4)]
            # No render/sync in between: the registry read IS live.
            assert registry.as_dict()["serve.queue_depth"] == 3
            release.set()
            for future in [first, *futures]:
                future.result(timeout=30)
            assert registry.as_dict()["serve.queue_depth"] == 0
        finally:
            release.set()
            scheduler.close()

    def test_service_queue_depth_live_without_stats_call(self):
        """The service-level registry sees depth without stats()/render."""
        with FineTuneService(max_batch=1, workers=1) as service:
            assert service.metrics.as_dict()["serve.queue_depth"] == 0

    def test_submit_racing_close_raises_instead_of_silent_cancel(self):
        """Regression: once close begins, submits fail deterministically.

        Previously a submit landing between ``drain()`` returning and the
        closed flag being set was accepted and then silently cancelled —
        with ``wait=True``, a future the caller reasonably expected to
        resolve."""
        scheduler, release = self._stalled_scheduler()
        session = self.StubSession("s")
        inflight = scheduler.submit(session, np.int64(0), np.int64(0))

        closer_done = threading.Event()

        def closer():
            scheduler.close(wait=True)
            closer_done.set()

        thread = threading.Thread(target=closer, daemon=True)
        thread.start()
        deadline = time.monotonic() + 10
        while not scheduler.closing:
            assert time.monotonic() < deadline
            time.sleep(0.002)
        # close() has begun (it is blocked draining the stalled batch):
        # a racing submit must be refused, not accepted-then-cancelled.
        with pytest.raises(ServeError, match="closed"):
            scheduler.submit(session, np.int64(1), np.int64(0))
        release.set()
        assert closer_done.wait(timeout=30)
        thread.join(timeout=10)
        # The pre-close future resolved; nothing was left unsettled.
        assert inflight.result(timeout=10).batch_size == 1

    def test_drain_timeout_expires_then_succeeds(self):
        scheduler, release = self._stalled_scheduler()
        try:
            session = self.StubSession("s")
            future = scheduler.submit(session, np.int64(0), np.int64(0))
            began = time.monotonic()
            assert scheduler.drain(timeout=0.2) is False
            assert time.monotonic() - began < 5
            release.set()
            assert scheduler.drain(timeout=30) is True
            assert future.result(timeout=10).batch_size == 1
        finally:
            release.set()
            scheduler.close()

    def test_client_cancellation_storm_under_concurrent_load(self):
        """Cancel a third of a deep backlog across sessions while the
        worker is stalled: cancelled futures report CancelledError, the
        rest resolve, and the executed examples are exactly the
        survivors."""
        from concurrent.futures import CancelledError

        from repro.serve import BatchScheduler, StepResult

        executed = []
        started = threading.Event()
        release = threading.Event()

        def runner(session, batch):
            if session.id == "blocker":
                started.set()
                assert release.wait(timeout=30)
            executed.extend((session.id, int(r.x)) for r in batch)
            return StepResult(session_id=session.id, loss=0.0, step=0,
                              batch_size=len(batch), program_key="k")

        scheduler = BatchScheduler(runner, max_batch=4, workers=1)
        try:
            scheduler.submit(self.StubSession("blocker"), np.int64(-1),
                             np.int64(0))
            assert started.wait(timeout=10)
            sessions = [self.StubSession("a"), self.StubSession("b")]
            futures = {}
            for i in range(24):
                session = sessions[i % 2]
                futures[(session.id, i)] = scheduler.submit(
                    session, np.int64(i), np.int64(0))
            cancelled = {key for j, key in enumerate(futures)
                         if j % 3 == 0 and futures[key].cancel()}
            assert cancelled  # queued work must be cancellable
            release.set()
            for key, future in futures.items():
                if key in cancelled:
                    with pytest.raises(CancelledError):
                        future.result(timeout=30)
                else:
                    assert future.result(timeout=30).batch_size >= 1
            assert scheduler.drain(timeout=30)
        finally:
            release.set()
            scheduler.close()
        ran = {(sid, i) for sid, i in executed if sid != "blocker"}
        assert ran == {(sid, i) for sid, i in futures if (sid, i)
                       not in cancelled}


# ---------------------------------------------------------------------------
# metrics
# ---------------------------------------------------------------------------

class TestMetrics:

    def test_histogram_quantiles(self):
        registry = MetricsRegistry()
        hist = registry.histogram("lat")
        for v in range(1, 101):
            hist.observe(float(v))
        assert hist.count == 100
        assert abs(hist.quantile(0.5) - 50.5) < 1.5
        assert abs(hist.quantile(0.95) - 95.0) < 1.5
        summary = hist.summary()
        assert summary["count"] == 100

    def test_registry_renders_and_rejects_kind_conflicts(self):
        registry = MetricsRegistry()
        registry.counter("a").inc(3)
        registry.gauge("b").set(7)
        registry.histogram("c").observe(1.0)
        table = registry.render()
        assert "a" in table and "p95" in table
        with pytest.raises(TypeError):
            registry.gauge("a")

    def test_service_metrics_populated(self):
        rng = np.random.default_rng(7)
        with FineTuneService(max_batch=2, workers=1) as service:
            session = service.create_session(build_mlp, model_id="mlp",
                                             scheme="full")
            for _ in range(4):
                x, y = mlp_example(rng)
                service.step(session.id, x, y)
            stats = service.stats()
        assert stats["serve.steps_total"] == 4
        assert stats["serve.examples_total"] == 4
        assert stats["serve.cache.misses"] >= 1
        assert stats["serve.step_latency_ms"]["count"] == 4
        assert any(k.startswith("serve.peak_transient_bytes") for k in stats)


class TestCompiledPlans:
    """Serving executes compiled execution plans, shared per variant."""

    def test_sessions_share_one_plan_per_variant(self):
        with FineTuneService(max_batch=1, workers=1) as service:
            a = service.create_session(build_mlp, model_id="mlp",
                                       scheme="full")
            b = service.create_session(build_mlp, model_id="mlp",
                                       scheme="full")
            entry = a.family.bucket(1)
            assert entry.plan is not None
            # the plan was lowered at compile time, before any step ran
            assert "__plan__" in entry.program.meta
            ex_a = a.executor_for(entry.key, entry.program)
            ex_b = b.executor_for(entry.key, entry.program)
            assert ex_a.plan is ex_b.plan is entry.plan
            # ...but buffers never cross sessions
            assert ex_a.arena is not ex_b.arena

    def test_steady_state_alloc_metric_published(self):
        rng = np.random.default_rng(11)
        with FineTuneService(max_batch=1, workers=1) as service:
            session = service.create_session(build_mlp, model_id="mlp",
                                             scheme="full")
            for _ in range(6):
                x, y = mlp_example(rng)
                service.step(session.id, x, y)
            stats = service.stats()
        hist = stats["serve.step_fresh_allocs"]
        assert hist["count"] == 6
        # arenas warm up: the median step allocates less than the mean
        # (the first, cold step drags the mean up)
        assert hist["p50"] < hist["mean"]
