"""End-to-end integration: trainers on micro models, transfer-learning
ordering (full ~ sparse > bias-only), instruction tuning, scheme search."""

import numpy as np
import pytest

from repro.data import instruction_batches, vision_source, vision_task
from repro.models import build_model, paper_scheme
from repro.runtime.compiler import compile_training
from repro.sparse import UpdateScheme, bias_only, full_update
from repro.train import (SGD, Adam, Trainer, load_checkpoint,
                         perplexity, snapshot_weights)


def _train(forward, scheme, task, steps=60, lr=3e-3, seed=0):
    program = compile_training(forward, optimizer=Adam(lr), scheme=scheme)
    trainer = Trainer(program, forward)
    rng = np.random.default_rng(seed)
    trainer.fit(task.batches(8, rng, steps))
    return trainer


class TestVisionTransfer:
    @pytest.fixture(scope="class")
    def setup(self):
        forward = build_model("mcunet_micro", batch=8, num_classes=10)
        source = vision_source(n_train=192)
        trainer = _train(forward, full_update(forward), source, steps=200)
        return forward, snapshot_weights(trainer.program, forward)

    def _finetune(self, forward, pretrained, scheme, task, steps=320):
        load_checkpoint(forward, pretrained)
        program = compile_training(forward, optimizer=Adam(3.5e-3),
                                   scheme=scheme)
        trainer = Trainer(program, forward)
        rng = np.random.default_rng(1)
        trainer.fit(task.batches(8, rng, steps))
        return trainer.evaluate(task.x_test, task.y_test)

    def test_transfer_ordering_full_sparse_bias(self, setup):
        """The paper's core accuracy claim: sparse ~ full > bias-only.

        Micro-scale models have less redundancy than the paper's, so the
        sparse-vs-full gap is wider than the paper's <1 point; the ordering
        and the bias-only capacity ceiling are the reproduction target.
        """
        forward, pretrained = setup
        task = vision_task("cifar", n_train=256, n_test=128)
        acc_full = self._finetune(forward, pretrained, full_update(forward),
                                  task)
        acc_sparse = self._finetune(forward, pretrained,
                                    paper_scheme(forward), task)
        acc_bias = self._finetune(forward, pretrained, bias_only(forward),
                                  task)
        assert acc_full > 0.6
        assert acc_sparse >= acc_bias - 0.02
        assert acc_sparse >= acc_full - 0.30

    def test_training_reduces_loss_on_every_scheme(self, setup):
        forward, pretrained = setup
        task = vision_task("pets", n_train=96, n_test=48)
        for scheme in (full_update(forward), paper_scheme(forward),
                       bias_only(forward)):
            load_checkpoint(forward, pretrained)
            program = compile_training(forward, optimizer=Adam(2e-3),
                                       scheme=scheme)
            trainer = Trainer(program, forward)
            rng = np.random.default_rng(2)
            losses = [trainer.step(x, y)
                      for x, y in task.batches(8, rng, 30)]
            assert np.mean(losses[-5:]) < np.mean(losses[:5]), scheme.name


class TestTrainerMechanics:
    def test_eval_program_shares_weights(self):
        forward = build_model("mobilenetv2_micro", batch=4, num_classes=4)
        program = compile_training(forward, optimizer=SGD(0.1))
        trainer = Trainer(program, forward)
        x = np.random.default_rng(0).standard_normal((4, 3, 16, 16)) \
            .astype(np.float32)
        before = trainer.predict(x).copy()
        trainer.step(x, np.zeros(4, np.int64))
        after = trainer.predict(x)
        assert not np.allclose(before, after)

    def test_evaluate_handles_ragged_tail(self):
        forward = build_model("mobilenetv2_micro", batch=4, num_classes=4)
        program = compile_training(forward, optimizer=SGD(0.1))
        trainer = Trainer(program, forward)
        x = np.zeros((6, 3, 16, 16), np.float32)  # not a multiple of 4
        y = np.zeros(6, np.int64)
        acc = trainer.evaluate(x, y)
        assert 0.0 <= acc <= 1.0

    def test_mean_loss_does_not_move_weights(self):
        forward = build_model("mobilenetv2_micro", batch=4, num_classes=4)
        program = compile_training(forward, optimizer=SGD(0.5))
        trainer = Trainer(program, forward)
        w = program.state["stem.weight"].copy()
        trainer.mean_loss(np.zeros((4, 3, 16, 16), np.float32),
                          np.zeros(4, np.int64))
        np.testing.assert_array_equal(program.state["stem.weight"], w)

    def test_history_tracks_losses(self):
        forward = build_model("mobilenetv2_micro", batch=4, num_classes=4)
        program = compile_training(forward, optimizer=SGD(0.1))
        trainer = Trainer(program, forward)
        trainer.step(np.zeros((4, 3, 16, 16), np.float32),
                     np.zeros(4, np.int64))
        assert len(trainer.history.losses) == 1


class TestInstructionTuning:
    def test_llama_micro_perplexity_drops(self):
        forward = build_model("llama_micro", batch=4, seq_len=24)
        tok, batches, (x_test, y_test) = instruction_batches(
            seq_len=24, batch_size=4, steps=120, seed=0)
        program = compile_training(forward, optimizer=Adam(2e-3),
                                   scheme=full_update(forward))
        trainer = Trainer(program, forward, input_name="ids")

        def heldout_nll():
            total, count = 0.0, 0
            for i in range(0, len(x_test) - 3, 4):
                total += trainer.mean_loss(x_test[i:i + 4], y_test[i:i + 4])
                count += 1
            return total / count

        before = perplexity(heldout_nll())
        trainer.fit(batches)
        after = perplexity(heldout_nll())
        assert after < before * 0.8

    def test_sparse_llama_close_to_full_from_pretrained(self):
        """From a pre-trained checkpoint, sparse fine-tuning tracks full
        fine-tuning (paper Table 5: losses 0.768 vs 0.779)."""
        forward = build_model("llama_micro", batch=4, seq_len=24)
        # "Pre-train" with full BP on the corpus.
        tok, batches, (x_test, y_test) = instruction_batches(
            seq_len=24, batch_size=4, steps=150, seed=0)
        pre = compile_training(forward, optimizer=Adam(2e-3),
                               scheme=full_update(forward))
        pre_tr = Trainer(pre, forward, input_name="ids")
        pre_tr.fit(batches)
        checkpoint = snapshot_weights(pre, forward)

        results = {}
        for name, scheme in (("full", full_update(forward)),
                             ("sparse", paper_scheme(forward))):
            _, more, _ = instruction_batches(seq_len=24, batch_size=4,
                                             steps=60, seed=1)
            load_checkpoint(forward, checkpoint)
            program = compile_training(forward, optimizer=Adam(1e-3),
                                       scheme=scheme)
            trainer = Trainer(program, forward, input_name="ids")
            trainer.fit(more)
            results[name] = trainer.mean_loss(x_test[:4], y_test[:4])
        assert results["sparse"] < results["full"] * 1.35
