"""Shape inference for every operator family, including failure modes."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ShapeError
from repro.ir import DType, GraphBuilder, broadcast_shapes, get_schema
from repro.ir.tensor import TensorSpec


def infer(op, shapes, attrs=None, dtypes=None):
    dtypes = dtypes or [DType.FLOAT32] * len(shapes)
    specs = [TensorSpec(f"t{i}", s, d)
             for i, (s, d) in enumerate(zip(shapes, dtypes))]
    return get_schema(op).infer(specs, attrs or {})


class TestBroadcasting:
    def test_simple(self):
        assert broadcast_shapes((2, 1), (1, 3)) == (2, 3)

    def test_mismatch_raises(self):
        with pytest.raises(ShapeError):
            broadcast_shapes((2, 3), (4, 5))

    @given(st.lists(st.integers(1, 5), min_size=1, max_size=4))
    @settings(max_examples=30, deadline=None)
    def test_broadcast_with_self_is_identity(self, dims):
        shape = tuple(dims)
        assert broadcast_shapes(shape, shape) == shape

    @given(st.lists(st.integers(1, 4), min_size=1, max_size=3),
           st.lists(st.integers(1, 4), min_size=1, max_size=3))
    @settings(max_examples=50, deadline=None)
    def test_matches_numpy(self, a, b):
        try:
            want = np.broadcast_shapes(tuple(a), tuple(b))
        except ValueError:
            with pytest.raises(ShapeError):
                broadcast_shapes(tuple(a), tuple(b))
            return
        assert broadcast_shapes(tuple(a), tuple(b)) == tuple(want)


class TestElementwise:
    def test_add_broadcast(self):
        [(shape, dtype)] = infer("add", [(4, 1), (3,)])
        assert shape == (4, 3)

    def test_unary_preserves(self):
        [(shape, _)] = infer("relu", [(2, 3)])
        assert shape == (2, 3)

    def test_cast_changes_dtype(self):
        [(_, dtype)] = infer("cast", [(2,)], {"dtype": "float16"})
        assert dtype == DType.FLOAT16


class TestShapeOps:
    def test_reshape_minus_one(self):
        [(shape, _)] = infer("reshape", [(2, 3, 4)], {"shape": (2, -1)})
        assert shape == (2, 12)

    def test_reshape_bad_count(self):
        with pytest.raises(ShapeError):
            infer("reshape", [(2, 3)], {"shape": (4, 2)})

    def test_reshape_two_minus_ones(self):
        with pytest.raises(ShapeError):
            infer("reshape", [(4,)], {"shape": (-1, -1)})

    def test_transpose(self):
        [(shape, _)] = infer("transpose", [(2, 3, 4)], {"perm": (2, 0, 1)})
        assert shape == (4, 2, 3)

    def test_transpose_bad_perm(self):
        with pytest.raises(ShapeError):
            infer("transpose", [(2, 3)], {"perm": (0, 0)})

    def test_slice(self):
        [(shape, _)] = infer("slice", [(4, 6)],
                             {"axis": 1, "start": 1, "end": 4})
        assert shape == (4, 3)

    def test_slice_end_clamped(self):
        [(shape, _)] = infer("slice", [(4,)],
                             {"axis": 0, "start": 0, "end": 100})
        assert shape == (4,)

    def test_concat(self):
        [(shape, _)] = infer("concat", [(2, 3), (2, 5)], {"axis": 1})
        assert shape == (2, 8)

    def test_concat_rank_mismatch(self):
        with pytest.raises(ShapeError):
            infer("concat", [(2, 3), (2, 3, 1)], {"axis": 0})

    def test_pad(self):
        [(shape, _)] = infer("pad", [(2, 3)], {"pads": ((1, 1), (0, 2))})
        assert shape == (4, 5)

    def test_broadcast_to(self):
        [(shape, _)] = infer("broadcast_to", [(1, 3)], {"shape": (5, 3)})
        assert shape == (5, 3)

    def test_broadcast_to_invalid(self):
        with pytest.raises(ShapeError):
            infer("broadcast_to", [(2, 3)], {"shape": (5, 3)})


class TestReductions:
    def test_keepdims(self):
        [(shape, _)] = infer("reduce_sum", [(2, 3, 4)],
                             {"axes": (1,), "keepdims": True})
        assert shape == (2, 1, 4)

    def test_no_keepdims(self):
        [(shape, _)] = infer("reduce_mean", [(2, 3, 4)],
                             {"axes": (0, 2), "keepdims": False})
        assert shape == (3,)

    def test_all_axes_default(self):
        [(shape, _)] = infer("reduce_max", [(2, 3)], {"axes": None})
        assert shape == ()


class TestMatmulConv:
    def test_matmul_batched(self):
        [(shape, _)] = infer("matmul", [(7, 2, 3), (3, 5)])
        assert shape == (7, 2, 5)

    def test_matmul_inner_mismatch(self):
        with pytest.raises(ShapeError):
            infer("matmul", [(2, 3), (4, 5)])

    def test_conv2d(self):
        [(shape, _)] = infer("conv2d", [(2, 3, 8, 8), (6, 3, 3, 3)],
                             {"stride": 2, "padding": 1})
        assert shape == (2, 6, 4, 4)

    def test_conv2d_depthwise(self):
        [(shape, _)] = infer("conv2d", [(2, 8, 6, 6), (8, 1, 3, 3)],
                             {"padding": 1, "groups": 8})
        assert shape == (2, 8, 6, 6)

    def test_conv2d_group_mismatch(self):
        with pytest.raises(ShapeError):
            infer("conv2d", [(2, 8, 6, 6), (8, 2, 3, 3)], {"groups": 8})

    def test_conv2d_dx_uses_input_shape(self):
        [(shape, _)] = infer("conv2d_dx", [(2, 6, 4, 4), (6, 3, 3, 3)],
                             {"stride": 2, "padding": 1,
                              "input_shape": (2, 3, 8, 8)})
        assert shape == (2, 3, 8, 8)

    def test_conv2d_dw(self):
        [(shape, _)] = infer("conv2d_dw", [(2, 3, 8, 8), (2, 6, 8, 8)],
                             {"padding": 1, "kernel_hw": (3, 3)})
        assert shape == (6, 3, 3, 3)

    def test_pool(self):
        [(shape, _)] = infer("maxpool2d", [(2, 4, 8, 8)],
                             {"kernel": 2, "stride": 2})
        assert shape == (2, 4, 4, 4)

    def test_empty_conv_output_rejected(self):
        with pytest.raises(ShapeError):
            infer("conv2d", [(1, 3, 2, 2), (4, 3, 5, 5)], {})


class TestNNOps:
    def test_layernorm_checks_scale(self):
        with pytest.raises(ShapeError):
            infer("layernorm", [(2, 8), (4,), (8,)], {"eps": 1e-5})

    def test_embedding(self):
        [(shape, _)] = infer("embedding", [(100, 16), (2, 5)],
                             dtypes=[DType.FLOAT32, DType.INT64])
        assert shape == (2, 5, 16)

    def test_embedding_float_ids_rejected(self):
        with pytest.raises(ShapeError):
            infer("embedding", [(100, 16), (2, 5)])

    def test_onehot(self):
        [(shape, dtype)] = infer("onehot", [(4,)], {"depth": 7},
                                 dtypes=[DType.INT64])
        assert shape == (4, 7) and dtype == DType.FLOAT32

    def test_unknown_op(self):
        with pytest.raises(ShapeError):
            get_schema("not_an_op")

    def test_arity_check(self):
        with pytest.raises(ShapeError):
            get_schema("add").check_arity(3)


class TestBuilderChecks:
    def test_unknown_attr_rejected(self):
        b = GraphBuilder("g")
        x = b.input("x", (2, 2))
        with pytest.raises(Exception):
            b.emit("relu", [x], {"bogus": 1})

    def test_fresh_names_unique(self):
        b = GraphBuilder("g")
        names = {b.fresh("t") for _ in range(100)}
        assert len(names) == 100
