"""Deployment artifacts and the binary-size model."""

import json

import numpy as np
import pytest

from repro.deploy import (FRAMEWORK_BINARY_BYTES, RUNTIME_CORE_BYTES,
                          estimate_binary_size, load_artifact, save_artifact)
from repro.errors import GraphError
from repro.models import build_model
from repro.quant import collect_ranges, quantize_inference_graph
from repro.runtime import Executor, Program
from repro.runtime.compiler import compile_inference, compile_training
from repro.train import SGD

from conftest import make_mlp_graph


@pytest.fixture
def training_artifact(tmp_path):
    forward = build_model("mcunet_micro", batch=2, num_classes=3)
    program = compile_training(forward, optimizer=SGD(0.05))
    save_artifact(program, tmp_path / "model")
    return forward, program, tmp_path / "model"


class TestArtifactRoundTrip:
    def test_training_step_identical_after_reload(self, training_artifact,
                                                  rng):
        forward, program, path = training_artifact
        deployed = load_artifact(path)
        feeds = {
            forward.inputs[0]: rng.standard_normal(
                forward.spec(forward.inputs[0]).shape).astype(np.float32),
            program.meta["labels"]: rng.integers(0, 3, 2).astype(np.int64),
        }
        want = Executor(program).run(feeds)[program.meta["loss"]]
        got = deployed.run(feeds)[deployed.meta["loss"]]
        np.testing.assert_allclose(want, got, rtol=1e-6)

    def test_schedule_order_preserved(self, training_artifact):
        _, program, path = training_artifact
        deployed = load_artifact(path)
        assert [n.name for n in deployed.program.schedule] \
            == [n.name for n in program.schedule]

    def test_manifest_lists_used_kernels_only(self, training_artifact):
        _, program, path = training_artifact
        manifest = json.loads((path / "manifest.json").read_text())
        assert set(manifest["kernels"]) \
            == {n.op_type for n in program.schedule}

    def test_arena_offsets_serialized(self, training_artifact):
        _, _, path = training_artifact
        manifest = json.loads((path / "manifest.json").read_text())
        assert manifest["arena"]["bytes"] > 0
        assert manifest["arena"]["offsets"]

    def test_inference_artifact(self, tmp_path, rng):
        builder, _ = make_mlp_graph()
        program = compile_inference(builder.graph)
        save_artifact(program, tmp_path / "mlp")
        deployed = load_artifact(tmp_path / "mlp")
        x = rng.standard_normal((4, 5)).astype(np.float32)
        want = Executor(program).run({"x": x})
        got = deployed.run({"x": x})
        for name in program.outputs:
            np.testing.assert_allclose(want[name], got[name], rtol=1e-6)

    def test_int8_artifact_round_trips(self, tmp_path, rng):
        forward = build_model("mcunet_micro", batch=2, num_classes=3)
        feeds = {forward.inputs[0]: rng.standard_normal(
            forward.spec(forward.inputs[0]).shape).astype(np.float32)}
        int8 = quantize_inference_graph(
            forward, collect_ranges(forward, [feeds]))
        program = Program.from_graph(int8)
        save_artifact(program, tmp_path / "int8")
        deployed = load_artifact(tmp_path / "int8")
        want = Executor(program).run(feeds)[program.outputs[0]]
        got = deployed.run(feeds)[deployed.program.outputs[0]]
        np.testing.assert_array_equal(want, got)


class TestArtifactErrors:
    def test_missing_manifest(self, tmp_path):
        with pytest.raises(GraphError, match="manifest"):
            load_artifact(tmp_path)

    def test_garbled_manifest(self, tmp_path):
        (tmp_path / "manifest.json").write_text("{not json")
        with pytest.raises(GraphError, match="garbled"):
            load_artifact(tmp_path)

    def test_wrong_version(self, training_artifact):
        _, _, path = training_artifact
        manifest = json.loads((path / "manifest.json").read_text())
        manifest["format_version"] = 999
        (path / "manifest.json").write_text(json.dumps(manifest))
        with pytest.raises(GraphError, match="version"):
            load_artifact(path)

    def test_unknown_schedule_node(self, training_artifact):
        _, _, path = training_artifact
        manifest = json.loads((path / "manifest.json").read_text())
        manifest["schedule"][0] = "no_such_node"
        (path / "manifest.json").write_text(json.dumps(manifest))
        with pytest.raises(GraphError, match="unknown node"):
            load_artifact(path)

    def test_missing_kernel(self, training_artifact):
        _, _, path = training_artifact
        manifest = json.loads((path / "manifest.json").read_text())
        manifest["kernels"].append("warp_drive")
        (path / "manifest.json").write_text(json.dumps(manifest))
        with pytest.raises(GraphError, match="warp_drive"):
            load_artifact(path)


class TestBinarySize:
    def test_counts_each_kernel_once(self):
        builder, _ = make_mlp_graph()
        report = estimate_binary_size(builder.graph)
        # matmul appears twice in the graph but links once.
        assert report.kernel_bytes.get("matmul", 0) > 0
        assert report.num_kernels == len(
            {n.op_type for n in builder.graph.nodes})

    def test_views_cost_no_code(self):
        builder, _ = make_mlp_graph()
        report = estimate_binary_size(builder.graph)
        assert report.kernel_bytes.get("reshape", 0) == 0

    def test_total_includes_core_and_weights(self):
        builder, _ = make_mlp_graph()
        g = builder.graph
        report = estimate_binary_size(g)
        weights = sum(a.nbytes for a in g.initializers.values())
        assert report.weight_bytes == weights
        assert report.total_bytes \
            == report.code_bytes + report.weight_bytes
        assert report.code_bytes >= RUNTIME_CORE_BYTES

    def test_training_binary_is_slim_vs_frameworks(self):
        forward = build_model("mcunet_micro", batch=2, num_classes=3)
        program = compile_training(forward, optimizer=SGD(0.05))
        report = estimate_binary_size(program.graph, program.schedule)
        # The paper's point: a full *training* binary in tens of KB of
        # code, versus hundreds of MB of framework.
        assert report.code_bytes < 256 * 1024
        assert report.code_bytes * 1000 < FRAMEWORK_BINARY_BYTES["pytorch"]

    def test_int8_weights_shrink_binary(self, rng):
        forward = build_model("mcunet_micro", batch=2, num_classes=3)
        feeds = {forward.inputs[0]: rng.standard_normal(
            forward.spec(forward.inputs[0]).shape).astype(np.float32)}
        int8 = quantize_inference_graph(
            forward, collect_ranges(forward, [feeds]))
        fp = estimate_binary_size(forward)
        q = estimate_binary_size(int8)
        assert q.weight_bytes < fp.weight_bytes / 2
