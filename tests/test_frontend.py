"""Frontend: module system, tracing, alternative graph-def importers."""

import numpy as np
import pytest

from repro.frontend import (Conv2d, Embedding, GlobalAvgPool, InputSpec,
                            LayerNorm, Linear, Module, Parameter, RMSNorm,
                            Sequential, TransformerBlock,
                            export_graph_def, from_layer_config,
                            import_graph_def, trace)
from repro.frontend.init import lazy_init, lazy_dtype
from repro.ir import DType, validate_graph
from repro.runtime import interpret


class TestModule:
    def test_parameter_registration(self):
        layer = Linear(4, 3)
        names = {path for path, _, _ in layer.named_parameters()}
        assert names == {"weight", "bias"}

    def test_nested_paths(self):
        model = Sequential(Linear(4, 4), Linear(4, 2, bias=False))
        names = {path for path, _, _ in model.named_parameters()}
        assert names == {"0.weight", "0.bias", "1.weight"}

    def test_meta_merging_along_chain(self):
        block = Sequential(Linear(2, 2))
        block.meta["block"] = 7
        block[0].meta["role_in_block"] = "first"
        model = Sequential(block)
        metas = {path: meta for path, _, meta in model.named_parameters()}
        assert metas["0.0.weight"]["block"] == 7
        assert metas["0.0.weight"]["role_in_block"] == "first"

    def test_num_parameters(self):
        assert Linear(4, 3).num_parameters() == 4 * 3 + 3

    def test_forward_not_implemented(self):
        with pytest.raises(NotImplementedError):
            Module()(1)

    def test_sequential_indexing(self):
        model = Sequential(Linear(2, 2), Linear(2, 2))
        assert isinstance(model[1], Linear)
        assert len(model) == 2


class TestTrace:
    def test_param_names_are_paths(self):
        model = Sequential(Linear(4, 3))
        g = trace(model, [InputSpec("x", (2, 4))])
        assert "0.weight" in g.initializers
        assert "0.weight" in g.trainable

    def test_param_metadata_recorded(self):
        model = Sequential(Conv2d(3, 4, 3, padding=1), GlobalAvgPool(),
                           Linear(4, 2))
        model[0].meta["block"] = 0
        g = trace(model, [InputSpec("x", (1, 3, 8, 8))])
        meta = g.metadata["params"]
        assert meta["0.weight"]["block"] == 0
        assert meta["0.bias"]["role"] == "bias"

    def test_weight_tying_registers_once(self):
        class Tied(Module):
            def __init__(self):
                super().__init__()
                self.emb = Embedding(11, 4)
                self.head = Linear(4, 11, bias=False)
                self.head.weight = self.emb.weight  # tie (shapes differ ok?)

            def forward(self, ids):
                h = self.emb(ids)
                b = ids.b
                flat = h.reshape((-1, 4))
                out = flat @ type(h)(b, self.emb.weight.value_name) \
                    .transpose((1, 0))
                return out

        g = trace(Tied(), [InputSpec("ids", (2, 3), DType.INT64)])
        assert sum(1 for n in g.initializers if "weight" in n) == 1

    def test_traced_graph_runs(self):
        rng = np.random.default_rng(0)
        model = Sequential(
            Conv2d(3, 4, 3, padding=1, activation="relu", rng=rng),
            GlobalAvgPool(),
            Linear(4, 2, rng=rng),
        )
        g = trace(model, [InputSpec("x", (2, 3, 6, 6))])
        validate_graph(g)
        out = interpret(g, {"x": np.ones((2, 3, 6, 6), np.float32)})
        assert list(out.values())[0].shape == (2, 2)

    def test_transformer_block_traces_and_runs(self):
        rng = np.random.default_rng(0)

        class Tiny(Module):
            def __init__(self):
                super().__init__()
                self.emb = Embedding(17, 8, rng=rng)
                self.block = TransformerBlock(8, 2, 16, rng=rng)

            def forward(self, ids):
                return self.block(self.emb(ids)).mean(axes=(1,))

        g = trace(Tiny(), [InputSpec("ids", (2, 5), DType.INT64)])
        validate_graph(g)
        out = interpret(g, {"ids": np.zeros((2, 5), np.int64)})
        assert list(out.values())[0].shape == (2, 8)

    def test_causal_block_masks_future(self):
        rng = np.random.default_rng(0)

        class CausalProbe(Module):
            def __init__(self):
                super().__init__()
                self.emb = Embedding(7, 8, rng=rng)
                self.block = TransformerBlock(8, 2, 16, causal=True,
                                              pre_norm=True, norm="rmsnorm",
                                              max_len=8, rng=rng)

            def forward(self, ids):
                return self.block(self.emb(ids))

        g = trace(CausalProbe(), [InputSpec("ids", (1, 6), DType.INT64)])
        base = np.array([[1, 2, 3, 4, 5, 6]], np.int64)
        changed = base.copy()
        changed[0, -1] = 0  # only the last token differs
        out1 = list(interpret(g, {"ids": base}).values())[0]
        out2 = list(interpret(g, {"ids": changed}).values())[0]
        # Earlier positions must be unaffected by the future token.
        np.testing.assert_allclose(out1[0, :5], out2[0, :5], atol=1e-5)
        assert not np.allclose(out1[0, 5], out2[0, 5])


class TestLazyInit:
    def test_placeholders_cost_nothing(self):
        with lazy_init():
            layer = Linear(1024, 1024)
        assert layer.weight.array.strides == (0, 0)
        assert lazy_dtype() is None  # context exited

    def test_lazy_dtype_fp16(self):
        with lazy_init(dtype=np.float16):
            layer = Linear(8, 8)
        assert layer.weight.array.dtype == np.float16

    def test_norm_scales_are_ones(self):
        with lazy_init():
            norm = LayerNorm(8)
        assert float(norm.gamma.array[0]) == 1.0


class TestGraphDefFrontends:
    def test_layer_config_builds_and_runs(self):
        model = from_layer_config([
            {"type": "conv2d", "in": 3, "out": 4, "kernel": 3, "padding": 1,
             "activation": "relu"},
            {"type": "maxpool2d", "kernel": 2},
            {"type": "global_avg_pool"},
            {"type": "linear", "in": 4, "out": 2},
        ])
        g = trace(model, [InputSpec("x", (1, 3, 8, 8))])
        out = interpret(g, {"x": np.ones((1, 3, 8, 8), np.float32)})
        assert list(out.values())[0].shape == (1, 2)

    def test_layer_config_unknown_type(self):
        with pytest.raises(Exception):
            from_layer_config([{"type": "warp_drive"}])

    def test_graph_def_roundtrip_preserves_semantics(self):
        rng = np.random.default_rng(1)
        model = Sequential(Linear(4, 3, activation="relu", rng=rng),
                           Linear(3, 2, rng=rng))
        g = trace(model, [InputSpec("x", (2, 4))])
        doc = export_graph_def(g)
        back = import_graph_def(doc)
        x = rng.standard_normal((2, 4)).astype(np.float32)
        out1 = list(interpret(g, {"x": x}).values())[0]
        out2 = list(interpret(back, {"x": x}).values())[0]
        np.testing.assert_allclose(out1, out2, atol=1e-6)
