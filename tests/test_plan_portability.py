"""Portable execution plans: spec round-trips, artifact v2, fresh-process
loads.

The tentpole invariant: a plan serialized into a deployment artifact and
reloaded — in this process or a fresh one — executes byte-identically to
the in-process plan, and the load path never touches the compiler.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
from pathlib import Path

import numpy as np
import pytest

import repro
from repro.deploy import load_artifact, save_artifact
from repro.deploy.artifact import MANIFEST_VERSION
from repro.errors import ExecutionError, GraphError
from repro.models import build_model, paper_scheme
from repro.runtime import Executor, PlanSpec, bind_plan, build_plan_spec
from repro.runtime.compiler import compile_training
from repro.train import SGD

from conftest import make_mlp_graph


def _mlp_program(seed=0):
    builder, _ = make_mlp_graph(seed=seed)
    return compile_training(builder.graph, optimizer=SGD(0.05))


def _mcunet_program(seed=0):
    forward = build_model("mcunet_micro", batch=2, num_classes=3)
    return compile_training(forward, optimizer=SGD(0.05),
                            scheme=paper_scheme(forward))


def _mlp_feeds(program, rng):
    return {"x": rng.standard_normal((4, 5)).astype(np.float32),
            program.meta["labels"]: rng.integers(0, 3, 4).astype(np.int64)}


def _mcunet_feeds(program, rng):
    graph = program.graph
    name = [n for n in graph.inputs if n != program.meta["labels"]][0]
    return {name: rng.standard_normal(graph.spec(name).shape)
            .astype(np.float32),
            program.meta["labels"]: rng.integers(0, 3, 2).astype(np.int64)}


class TestPlanSpecRoundTrip:
    def test_spec_survives_json(self):
        program = _mlp_program()
        spec = build_plan_spec(program)
        doc = json.loads(json.dumps(spec.to_dict()))
        assert PlanSpec.from_dict(doc) == spec

    def test_rebound_spec_executes_byte_identically(self, rng):
        reference = _mlp_program()
        rebound = _mlp_program()
        doc = json.loads(json.dumps(build_plan_spec(rebound).to_dict()))
        rebound.attach_plan_spec(PlanSpec.from_dict(doc))
        ex_ref = Executor(reference)
        ex_re = Executor(rebound)
        for _ in range(3):
            feeds = _mlp_feeds(reference, rng)
            want = ex_ref.run(feeds)
            got = ex_re.run(dict(feeds))
            for name in want:
                assert want[name].tobytes() == got[name].tobytes()
        assert ex_ref.peak_transient_bytes == ex_re.peak_transient_bytes
        for name in reference.state:
            assert reference.state[name].tobytes() \
                == rebound.state[name].tobytes()

    def test_version_mismatch_rejected(self):
        doc = build_plan_spec(_mlp_program()).to_dict()
        doc["plan_version"] = 999
        with pytest.raises(ExecutionError, match="version"):
            PlanSpec.from_dict(doc)

    def test_garbled_instruction_rejected(self):
        doc = build_plan_spec(_mlp_program()).to_dict()
        del doc["instructions"][0]["kernel"]
        with pytest.raises(ExecutionError, match="garbled"):
            PlanSpec.from_dict(doc)

    def test_bind_rejects_unknown_node(self):
        program = _mlp_program()
        spec = build_plan_spec(program)
        with pytest.raises(ExecutionError, match="unknown node"):
            bind_plan(spec, {})

    def test_bind_rejects_kernel_mismatch(self):
        program = _mlp_program()
        doc = build_plan_spec(program).to_dict()
        doc["instructions"][0]["kernel"] = "relu" \
            if doc["instructions"][0]["kernel"] != "relu" else "matmul"
        spec = PlanSpec.from_dict(doc)
        nodes = {node.name: node for node in program.schedule}
        with pytest.raises(ExecutionError, match="binds kernel"):
            bind_plan(spec, nodes)

    def test_required_kernels_lists_variants(self):
        spec = build_plan_spec(_mcunet_program())
        needed = spec.required_kernels()
        assert "conv2d" in needed
        # The sparse training step donates dying gradient buffers to the
        # in-place SGD apply and uses out= elementwise variants somewhere.
        variants = set().union(*needed.values())
        assert "base" in variants


class TestArtifactPlanRoundTrip:
    """Satellite: save/load then execute — byte-identical everything."""

    def test_mcunet_sparse_step_byte_identical(self, tmp_path, rng):
        program = _mcunet_program()
        save_artifact(program, tmp_path / "model")
        deployed = load_artifact(tmp_path / "model")
        # The loader must not re-lower: the plan is already bound.
        assert deployed.program.meta.get("__plan__") is not None
        ex_ref = Executor(program)
        ex_dep = Executor(deployed.program)
        for _ in range(3):
            feeds = _mcunet_feeds(program, rng)
            want = ex_ref.run(feeds)
            got = ex_dep.run(dict(feeds))
            for name in want:
                assert want[name].tobytes() == got[name].tobytes()
            assert ex_ref.peak_transient_bytes == ex_dep.peak_transient_bytes
        for name in program.state:
            assert program.state[name].tobytes() \
                == deployed.program.state[name].tobytes()

    def test_loaded_spec_equals_built_spec(self, tmp_path):
        program = _mcunet_program()
        save_artifact(program, tmp_path / "model")
        deployed = load_artifact(tmp_path / "model")
        assert deployed.program.plan_spec() == program.plan_spec()

    def test_manifest_is_v2_with_plan(self, tmp_path):
        program = _mlp_program()
        save_artifact(program, tmp_path / "mlp")
        manifest = json.loads((tmp_path / "mlp" / "manifest.json").read_text())
        assert manifest["format_version"] == MANIFEST_VERSION == 2
        assert manifest["plan"]["num_slots"] > 0
        assert manifest["plan"]["instructions"]
        assert manifest["kernel_variants"]

    def test_v1_manifest_still_loads(self, tmp_path, rng):
        """Backward compat: pre-plan artifacts lower their plan locally."""
        program = _mlp_program()
        save_artifact(program, tmp_path / "mlp")
        path = tmp_path / "mlp" / "manifest.json"
        manifest = json.loads(path.read_text())
        manifest["format_version"] = 1
        del manifest["plan"]
        del manifest["kernel_variants"]
        path.write_text(json.dumps(manifest))
        deployed = load_artifact(tmp_path / "mlp")
        assert deployed.program.meta.get("__plan__") is None  # lazy
        feeds = _mlp_feeds(program, rng)
        want = Executor(program).run(feeds)
        got = deployed.run(dict(feeds))
        loss = program.meta["loss"]
        assert want[loss].tobytes() == got[loss].tobytes()

    def test_corrupted_plan_rejected(self, tmp_path):
        """A tampered plan is caught by the static verifier before binding.

        PlanVerifyError (not a generic GraphError) so callers can tell
        "decodable but unsafe to execute" apart from bit rot; the program
        cache quarantines both.
        """
        from repro.errors import PlanVerifyError

        program = _mlp_program()
        save_artifact(program, tmp_path / "mlp")
        path = tmp_path / "mlp" / "manifest.json"
        manifest = json.loads(path.read_text())
        manifest["plan"]["instructions"][0]["node"] = "no_such_node"
        path.write_text(json.dumps(manifest))
        with pytest.raises(PlanVerifyError, match="unknown-node"):
            load_artifact(tmp_path / "mlp")

    def test_plan_version_mismatch_distinguishable(self, tmp_path):
        """Version skew must stay distinguishable from corruption so the
        program cache can recompile instead of failing the request."""
        from repro.errors import PlanVersionError

        program = _mlp_program()
        save_artifact(program, tmp_path / "mlp")
        path = tmp_path / "mlp" / "manifest.json"
        manifest = json.loads(path.read_text())
        manifest["plan"]["plan_version"] = 999
        path.write_text(json.dumps(manifest))
        with pytest.raises(PlanVersionError, match="version"):
            load_artifact(tmp_path / "mlp")

    def test_v2_without_plan_rejected(self, tmp_path):
        program = _mlp_program()
        save_artifact(program, tmp_path / "mlp")
        path = tmp_path / "mlp" / "manifest.json"
        manifest = json.loads(path.read_text())
        del manifest["plan"]
        path.write_text(json.dumps(manifest))
        with pytest.raises(GraphError, match="lacks an embedded plan"):
            load_artifact(tmp_path / "mlp")


class TestFreshProcessLoad:
    """Acceptance: a fresh process executes the artifact byte-identically
    with zero imports from the compiler or autodiff."""

    def test_fresh_process_byte_identical_no_compiler(self, tmp_path, rng):
        program = _mcunet_program()
        save_artifact(program, tmp_path / "model")
        feeds = _mcunet_feeds(program, rng)
        executor = Executor(program)
        want = executor.run({k: v.copy() for k, v in feeds.items()})
        loss_name = program.meta["loss"]
        np.save(tmp_path / "x.npy", feeds[[k for k in feeds
                                           if k != program.meta["labels"]][0]])
        np.save(tmp_path / "y.npy", feeds[program.meta["labels"]])
        np.save(tmp_path / "loss.npy", want[loss_name])

        src_root = Path(repro.__file__).resolve().parents[1]
        script = tmp_path / "fresh_load.py"
        script.write_text(
            "import sys\n"
            "import numpy as np\n"
            "from repro.deploy import load_artifact\n"
            "from repro.runtime import Executor\n"
            f"d = {str(tmp_path)!r}\n"
            "dep = load_artifact(d + '/model')\n"
            "x = np.load(d + '/x.npy'); y = np.load(d + '/y.npy')\n"
            "data = [n for n in dep.graph.inputs\n"
            "        if n != dep.meta['labels']][0]\n"
            "ex = Executor(dep.program)\n"
            "out = ex.run({data: x, dep.meta['labels']: y})\n"
            "want = np.load(d + '/loss.npy')\n"
            "assert out[dep.meta['loss']].tobytes() == want.tobytes()\n"
            "bad = [m for m in sys.modules if m == 'repro.runtime.compiler'\n"
            "       or m.startswith(('repro.autodiff', 'repro.passes'))]\n"
            "assert not bad, bad\n"
            f"print('peak', ex.peak_transient_bytes)\n"
        )
        env = dict(os.environ)
        env["PYTHONPATH"] = str(src_root) + os.pathsep \
            + env.get("PYTHONPATH", "")
        result = subprocess.run([sys.executable, str(script)], env=env,
                                capture_output=True, text=True, timeout=120)
        assert result.returncode == 0, result.stderr
        assert f"peak {executor.peak_transient_bytes}" in result.stdout
