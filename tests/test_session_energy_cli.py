"""FineTuningSession, the energy model, the CLI, and report rendering."""

import numpy as np
import pytest

from repro.cli import main as cli_main
from repro.data import vision_source, vision_task
from repro.devices import (estimate_energy, get_device, local_vs_cloud,
                           transmission_energy_mj)
from repro.models import build_model, paper_scheme
from repro.report import ratio, render_series, render_table
from repro.runtime.compiler import CompileOptions, compile_training
from repro.sparse import bias_only, full_update
from repro.train import Adam, FineTuningSession
from repro.train import SGD


class TestFineTuningSession:
    def test_pretrain_then_compare(self):
        forward = build_model("mobilenetv2_micro", batch=8, num_classes=10)
        session = FineTuningSession(forward, optimizer=Adam(3e-3))
        source = vision_source(n_train=128)
        rng = np.random.default_rng(0)
        loss = session.pretrain(source.batches(8, rng, 60))
        assert np.isfinite(loss)
        assert session.checkpoint is not None

        task = vision_task("pets", n_train=96, n_test=48)
        results = session.compare(
            {"full": full_update(forward), "bias": bias_only(forward)},
            batch_factory=lambda: task.batches(
                8, np.random.default_rng(1), 40),
            eval_data=(task.x_test, task.y_test),
        )
        assert results["bias"].num_nodes < results["full"].num_nodes
        assert results["bias"].peak_transient_bytes \
            < results["full"].peak_transient_bytes
        for r in results.values():
            assert 0.0 <= r.accuracy <= 1.0
            assert len(r.losses) == 40

    def test_checkpoint_not_mutated_by_finetune(self):
        forward = build_model("mobilenetv2_micro", batch=4, num_classes=10)
        session = FineTuningSession(forward, optimizer=Adam(5e-3))
        source = vision_source(n_train=64, n_test=16)
        session.pretrain(source.batches(4, np.random.default_rng(0), 20))
        snapshot = {k: v.copy() for k, v in session.checkpoint.items()}
        task = vision_task("vww", n_train=32, n_test=16, resolution=16)
        session.finetune(full_update(forward),
                         task.batches(4, np.random.default_rng(1), 10))
        for key, value in snapshot.items():
            np.testing.assert_array_equal(session.checkpoint[key], value)


class TestEnergyModel:
    @pytest.fixture(scope="class")
    def program(self):
        forward = build_model("mcunet_micro", batch=1)
        return compile_training(
            forward, optimizer=SGD(0.01),
            options=CompileOptions(materialize_state=False))

    def test_energy_positive_and_additive(self, program):
        device = get_device("stm32f746")
        report = estimate_energy(program.graph, program.schedule, device)
        assert report.compute_mj > 0 and report.memory_mj > 0
        assert report.total_mj == pytest.approx(
            report.compute_mj + report.memory_mj)

    def test_sparse_uses_less_energy(self):
        forward = build_model("mcunet_micro", batch=1)
        device = get_device("stm32f746")
        opts = CompileOptions(materialize_state=False)
        full = compile_training(forward, optimizer=SGD(0.01), options=opts)
        sparse = compile_training(forward, optimizer=SGD(0.01),
                                  scheme=paper_scheme(forward), options=opts)
        e_full = estimate_energy(full.graph, full.schedule, device)
        e_sparse = estimate_energy(sparse.graph, sparse.schedule, device)
        assert e_sparse.total_mj < e_full.total_mj

    def test_transmission_energy_linear(self):
        assert transmission_energy_mj(2_000_000) == pytest.approx(
            2 * transmission_energy_mj(1_000_000))

    def test_local_vs_cloud_paper_motivation(self, program):
        """Paper §1: transmission is much more expensive than computation —
        for a tiny model, local training beats uploading raw images."""
        device = get_device("stm32f746")
        image_bytes = 3 * 128 * 128  # one int8 camera frame
        verdict = local_vs_cloud(program.graph, program.schedule, device,
                                 steps=100, bytes_per_step=image_bytes)
        assert verdict["upload_mj"] > 0
        assert verdict["ratio"] > 0.05  # comparable order of magnitude


class TestCLI:
    def test_features(self, capsys):
        assert cli_main(["features"]) == 0
        out = capsys.readouterr().out
        assert "PockEngine" in out and "PyTorch" in out

    def test_devices(self, capsys):
        assert cli_main(["devices"]) == 0
        assert "stm32f746" in capsys.readouterr().out

    def test_simulate(self, capsys):
        assert cli_main([
            "simulate", "--model", "mcunet_micro",
            "--device", "raspberry_pi_4", "--sparse",
            "--frameworks", "pytorch", "pockengine",
        ]) == 0
        out = capsys.readouterr().out
        assert "pockengine" in out

    def test_simulate_unavailable_framework_marked(self, capsys):
        assert cli_main([
            "simulate", "--model", "mcunet_micro",
            "--device", "snapdragon_dsp",
            "--frameworks", "pytorch", "pockengine",
        ]) == 0
        assert "unavailable" in capsys.readouterr().out

    def test_memory(self, capsys):
        assert cli_main(["memory", "--model", "mcunet_micro",
                         "--sparse"]) == 0
        assert "static arena" in capsys.readouterr().out

    def test_scheme(self, capsys):
        assert cli_main(["scheme", "--model", "bert_micro"]) == 0
        out = capsys.readouterr().out
        assert "attention" in out or "bias" in out

    def test_profile(self, capsys, tmp_path):
        trace = tmp_path / "trace.json"
        assert cli_main(["profile", "--model", "mcunet_micro",
                         "--device", "stm32f746", "--sparse",
                         "--trace", str(trace)]) == 0
        out = capsys.readouterr().out
        assert "conv2d" in out and "share" in out
        assert trace.exists()
        import json
        assert json.loads(trace.read_text())["traceEvents"]

    def test_deploy(self, capsys, tmp_path):
        out_dir = tmp_path / "artifact"
        assert cli_main(["deploy", "--model", "mcunet_micro",
                         "--out", str(out_dir), "--sparse"]) == 0
        out = capsys.readouterr().out
        assert "kernels linked" in out
        assert (out_dir / "manifest.json").exists()

    def test_bad_model_rejected(self):
        with pytest.raises(SystemExit):
            cli_main(["simulate", "--model", "nope",
                      "--device", "raspberry_pi_4"])


class TestReportRendering:
    def test_render_table_aligns(self):
        text = render_table(["a", "bb"], [[1, 2.5], ["xx", None]])
        lines = text.splitlines()
        assert len({len(line) for line in lines}) == 1  # equal widths
        assert "-" in lines[-1]  # None renders as dash

    def test_render_series(self):
        text = render_series("losses", [1.0, 0.5, 0.25])
        assert text.count("#") >= 3

    def test_ratio(self):
        assert ratio(10.0, 2.0) == "5.0x"
        assert ratio(None, 2.0) == "-"
        assert ratio(1.0, 0.0) == "-"
