"""End-to-end pipelines across subsystems.

Each test chains several packages the way a user would — the kind of
integration that unit tests on individual passes cannot catch.
"""

import tempfile

import numpy as np
import pytest

from repro.data import vision_task
from repro.deploy import estimate_binary_size, load_artifact, save_artifact
from repro.devices import estimate_latency, get_device
from repro.frontend.keras_like import (Conv2D, Dense,
                                       GlobalAveragePooling2D,
                                       build_sequential)
from repro.ir import validate_graph
from repro.memory import profile_memory, rematerialize
from repro.quant import collect_ranges, quantize_inference_graph
from repro.runtime import Executor, Program, profile_run
from repro.runtime.compiler import compile_training
from repro.sparse import LoRAConfig, inject_lora, lora_scheme
from repro.train import SGD, Trainer


@pytest.fixture(scope="module")
def keras_cnn():
    return build_sequential([
        Conv2D(8, 3, padding="same", activation="relu"),
        Conv2D(8, 3, strides=2, padding="same", activation="relu"),
        GlobalAveragePooling2D(),
        Dense(6),  # matches the 6-class 'pets' task
    ], input_shape=(8, 3, 12, 12), seed=4)


def test_keras_to_trained_int8_artifact(keras_cnn, rng):
    """keras frontend -> sparse training -> calibration -> int8 -> artifact
    -> reload -> same predictions."""
    forward = keras_cnn.clone()
    task = vision_task("pets", resolution=12, n_train=96, n_test=32)
    program = compile_training(forward, optimizer=SGD(0.1))
    trainer = Trainer(program, forward, input_name="x")
    trainer.fit(task.batches(8, rng, steps=30))

    # install trained weights, quantize, freeze
    for name in forward.initializers:
        if name in program.state:
            forward.initializers[name] = program.state[name].copy()
    calib = [{"x": task.x_train[i:i + 8].astype(np.float32)}
             for i in range(0, 24, 8)]
    int8 = quantize_inference_graph(forward, collect_ranges(forward, calib))
    validate_graph(int8)

    with tempfile.TemporaryDirectory() as root:
        save_artifact(Program.from_graph(int8), root)
        deployed = load_artifact(root)
        feeds = calib[0]
        direct = Executor(Program.from_graph(int8)).run(feeds)
        reloaded = deployed.run(feeds)
        np.testing.assert_array_equal(
            direct[int8.outputs[0]], reloaded[deployed.program.outputs[0]])
    report = estimate_binary_size(int8)
    assert report.weight_bytes < sum(
        a.nbytes for a in forward.initializers.values()) / 2


def test_lora_training_composes_with_remat(rng):
    """LoRA graph + rematerialization compose: the transformed adapter
    training step stays numerically sound and still learns.

    Transformer training peaks sit on plateaus of simultaneously-consumed
    tensors, so greedy remat cannot always hit an arbitrary budget there
    (unlike the CNN cases in test_remat) — the composition guarantee is
    never-worse memory plus unchanged training semantics.
    """
    from repro.models import build_model

    base = build_model("bert_micro", batch=2, seq_len=8, num_classes=2)
    lora = inject_lora(base, LoRAConfig(rank=2))
    program = compile_training(lora, optimizer=SGD(0.1),
                               scheme=lora_scheme(lora))
    peak = profile_memory(program.graph, program.schedule).peak_total_bytes
    result = rematerialize(program.graph, program.schedule,
                           int(peak * 0.8), max_evictions=32)
    assert result.peak_after <= result.peak_before
    remat_prog = Program.from_graph(result.graph, result.schedule)
    executor = Executor(remat_prog)
    feeds = {
        base.inputs[0]: rng.integers(
            0, 50, base.spec(base.inputs[0]).shape).astype(np.int64),
        program.meta["labels"]: rng.integers(0, 2, 2).astype(np.int64),
    }
    losses = [float(executor.run(feeds)[program.meta["loss"]])
              for _ in range(12)]
    assert losses[-1] < losses[0]


def test_profiler_agrees_with_cost_model_ranking(keras_cnn):
    """The analytical profiler's heaviest op class on an MCU should be
    convolution — matching the latency report's per-class split."""
    from repro.runtime import analytical_profile

    program = compile_training(keras_cnn.clone(), optimizer=SGD(0.1))
    device = get_device("stm32f746")
    profile = analytical_profile(program.graph, program.schedule, device)
    heaviest = next(iter(profile.by_op_type()))
    assert heaviest.startswith("conv2d")
    report = estimate_latency(program.graph, program.schedule, device)
    assert profile.total_us == pytest.approx(report.total_us)


def test_measured_profile_on_deployed_artifact(keras_cnn, rng):
    """Wall-clock profiling works on reloaded artifacts too."""
    program = compile_training(keras_cnn.clone(), optimizer=SGD(0.1))
    with tempfile.TemporaryDirectory() as root:
        save_artifact(program, root)
        deployed = load_artifact(root)
        feeds = {
            "x": rng.standard_normal((8, 3, 12, 12)).astype(np.float32),
            program.meta["labels"]: rng.integers(0, 4, 8).astype(np.int64),
        }
        profile = profile_run(deployed.program, feeds, warmup=0, repeats=1)
        assert len(profile.timings) \
            == deployed.program.plan().num_instructions


def test_sparse_scheme_survives_artifact_roundtrip(rng):
    """A pruned sparse training step stays pruned after freeze/reload:
    the backward never descends into the frozen prefix."""
    from repro.models import build_model, paper_scheme

    forward = build_model("mobilenetv2_micro", batch=2)
    program = compile_training(forward, optimizer=SGD(0.05),
                               scheme=paper_scheme(forward))
    with tempfile.TemporaryDirectory() as root:
        save_artifact(program, root)
        deployed = load_artifact(root)
    ops = {n.op_type for n in deployed.program.schedule}
    assert "conv2d_dx" in ops  # chain rule inside the updated suffix
    n_dx = sum(1 for n in deployed.program.schedule
               if n.op_type == "conv2d_dx")
    full = compile_training(forward, optimizer=SGD(0.05))
    n_dx_full = sum(1 for n in full.schedule if n.op_type == "conv2d_dx")
    assert n_dx < n_dx_full
