"""Runtime profiler: measured and analytical per-op breakdowns."""

import json

import numpy as np
import pytest

from repro.devices import estimate_latency, get_device
from repro.runtime import (Executor, Program, analytical_profile,
                           profile_run)
from repro.runtime.compiler import compile_training
from repro.train import SGD

from conftest import make_mlp_graph


@pytest.fixture
def program():
    builder, _ = make_mlp_graph()
    return compile_training(builder.graph, optimizer=SGD(0.05))


@pytest.fixture
def feeds(program, rng):
    return {
        "x": rng.standard_normal((4, 5)).astype(np.float32),
        program.meta["labels"]: rng.integers(0, 3, 4).astype(np.int64),
    }


class TestMeasuredProfile:
    def test_one_timing_per_plan_instruction(self, program, feeds):
        """The profiler measures the stream that actually executes: one
        timing per plan instruction (a fused elementwise chain reports as
        its final node), so fused plans emit fewer events than the
        schedule has nodes."""
        profile = profile_run(program, feeds, warmup=0, repeats=1)
        plan = program.plan()
        assert len(profile.timings) == plan.num_instructions
        assert len(profile.timings) <= len(program.schedule)
        assert [t.name for t in profile.timings] \
            == [i.node.name for i in plan.instructions]

    def test_durations_positive_and_monotonic_starts(self, program, feeds):
        profile = profile_run(program, feeds, warmup=0, repeats=2)
        starts = [t.start_us for t in profile.timings]
        assert starts == sorted(starts)
        assert all(t.duration_us >= 0 for t in profile.timings)
        assert profile.total_us > 0

    def test_by_op_type_accounts_everything(self, program, feeds):
        profile = profile_run(program, feeds, warmup=0, repeats=1)
        summary = profile.by_op_type()
        assert sum(c for c, _ in summary.values()) == len(profile.timings)
        assert sum(t for _, t in summary.values()) \
            == pytest.approx(profile.total_us)

    def test_top_returns_slowest(self, program, feeds):
        profile = profile_run(program, feeds, warmup=0, repeats=1)
        top = profile.top(3)
        assert len(top) == 3
        assert top[0].duration_us >= top[1].duration_us \
            >= top[2].duration_us

    def test_rejects_zero_repeats(self, program, feeds):
        with pytest.raises(ValueError):
            profile_run(program, feeds, repeats=0)

    def test_observer_sees_every_instruction(self, program, feeds):
        seen = []
        Executor(program,
                 observer=lambda n, s: seen.append(n.name)).run(feeds)
        assert seen == [i.node.name for i in program.plan().instructions]

    def test_observer_sees_every_node_on_interpreter(self, program, feeds):
        """The interpreter oracle still reports per schedule node."""
        seen = []
        Executor(program, backend="interpreter",
                 observer=lambda n, s: seen.append(n.name)).run(feeds)
        assert seen == [n.name for n in program.schedule]


class TestAnalyticalProfile:
    def test_total_matches_estimate_latency(self, program):
        device = get_device("raspberry_pi_4")
        profile = analytical_profile(program.graph, program.schedule,
                                     device)
        report = estimate_latency(program.graph, program.schedule, device)
        assert profile.total_us == pytest.approx(report.total_us, rel=1e-9)

    def test_interpreted_overhead_shows_per_node(self, program):
        device = get_device("raspberry_pi_4")
        plain = analytical_profile(program.graph, program.schedule, device)
        interp = analytical_profile(program.graph, program.schedule,
                                    device, interpreted=True)
        assert interp.total_us \
            >= plain.total_us + 0.9 * device.host_dispatch_us * len(
                [n for n in program.schedule])

    def test_source_records_device(self, program):
        device = get_device("jetson_nano")
        profile = analytical_profile(program.graph, program.schedule,
                                     device)
        assert profile.source == "jetson_nano"


class TestChromeTrace:
    def test_export_round_trips_json(self, program, feeds, tmp_path):
        profile = profile_run(program, feeds, warmup=0, repeats=1)
        path = profile.save_chrome_trace(tmp_path / "trace.json")
        doc = json.loads(path.read_text())
        events = doc["traceEvents"]
        assert len(events) == len(profile.timings)
        assert all(e["ph"] == "X" for e in events)
        assert all("dur" in e and "ts" in e for e in events)

    def test_trace_categories_are_op_types(self, program, feeds):
        """Every trace category is a schedule op_type. Not every op_type
        appears: a fused chain reports as its final node, so interior
        link categories (e.g. a mask `step` merged into its consumer)
        are subsumed by the chain tail's."""
        profile = profile_run(program, feeds, warmup=0, repeats=1)
        doc = profile.to_chrome_trace()
        cats = {e["cat"] for e in doc["traceEvents"]}
        schedule_ops = {n.op_type for n in program.schedule}
        assert cats <= schedule_ops
        plan = program.plan()
        assert cats == {i.node.op_type for i in plan.instructions}
