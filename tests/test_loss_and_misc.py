"""Losses, printers, serialization corner cases, and error paths."""

import numpy as np
import pytest

from repro.errors import CompileError
from repro.ir import DType, GraphBuilder, format_graph
from repro.runtime import interpret
from repro.train.loss import (add_loss, mean_squared_error,
                              softmax_cross_entropy)
from repro.train.optim import attach_optimizer, SGD, optimizer_state_bytes
from repro.autodiff import build_backward


class TestCrossEntropy:
    def _loss(self, logits, labels):
        b = GraphBuilder("g")
        lg = b.initializer("logits", logits.astype(np.float32))
        lb = b.initializer("labels", labels.astype(np.int64))
        loss = softmax_cross_entropy(b, lg, lb)
        b.mark_output(loss)
        return float(interpret(b.graph)[loss])

    def test_matches_reference(self, rng):
        logits = rng.standard_normal((4, 5))
        labels = rng.integers(0, 5, 4)
        shifted = logits - logits.max(-1, keepdims=True)
        logp = shifted - np.log(np.exp(shifted).sum(-1, keepdims=True))
        want = -logp[np.arange(4), labels].mean()
        assert self._loss(logits, labels) == pytest.approx(want, abs=1e-5)

    def test_perfect_prediction_near_zero(self):
        logits = np.full((2, 3), -20.0)
        logits[0, 1] = 20.0
        logits[1, 2] = 20.0
        assert self._loss(logits, np.array([1, 2])) < 1e-4

    def test_sequence_labels(self, rng):
        """Language-model shape: [N, T, V] logits vs [N, T] labels."""
        b = GraphBuilder("g")
        lg = b.initializer("logits",
                           rng.standard_normal((2, 3, 5)).astype(np.float32))
        lb = b.initializer("labels", rng.integers(0, 5, (2, 3)))
        loss = softmax_cross_entropy(b, lg, lb)
        b.mark_output(loss)
        value = float(interpret(b.graph)[loss])
        assert 0 < value < 10

    def test_shape_mismatch_raises(self):
        b = GraphBuilder("g")
        lg = b.initializer("logits", np.zeros((4, 5), np.float32))
        lb = b.initializer("labels", np.zeros(3, np.int64))
        with pytest.raises(CompileError):
            softmax_cross_entropy(b, lg, lb)

    def test_gradient_is_softmax_minus_onehot(self, rng):
        logits = rng.standard_normal((4, 5)).astype(np.float32)
        labels = rng.integers(0, 5, 4)
        b = GraphBuilder("g")
        lg = b.initializer("logits", logits, trainable=True)
        lb = b.initializer("labels", labels.astype(np.int64))
        loss = softmax_cross_entropy(b, lg, lb)
        b.mark_output(loss)
        res = build_backward(b.graph, loss, ["logits"])
        got = interpret(b.graph)[res.grads["logits"]]
        ex = np.exp(logits - logits.max(-1, keepdims=True))
        soft = ex / ex.sum(-1, keepdims=True)
        onehot = np.eye(5)[labels]
        np.testing.assert_allclose(got, (soft - onehot) / 4, atol=1e-5)


class TestMSE:
    def test_value(self, rng):
        pred = rng.standard_normal((3, 4)).astype(np.float32)
        target = rng.standard_normal((3, 4)).astype(np.float32)
        b = GraphBuilder("g")
        p = b.initializer("p", pred)
        t = b.initializer("t", target)
        loss = mean_squared_error(b, p, t)
        b.mark_output(loss)
        assert float(interpret(b.graph)[loss]) == pytest.approx(
            ((pred - target) ** 2).mean(), abs=1e-6)

    def test_add_loss_unknown_kind(self):
        b = GraphBuilder("g")
        x = b.input("x", (2, 3))
        y = b.emit("relu", [x])
        b.mark_output(y)
        with pytest.raises(CompileError):
            add_loss(b, "hinge", y)


class TestOptimizerAttachment:
    def _grads(self):
        b = GraphBuilder("g")
        w = b.initializer("w", np.zeros((4, 2), np.float32), trainable=True)
        g = b.initializer("w_grad", np.ones((4, 2), np.float32))
        return b, {"w": "w_grad"}

    def test_sgd_momentum_state_created(self):
        b, grads = self._grads()
        attach_optimizer(b, grads, SGD(0.1, momentum=0.9))
        assert "w.momentum" in b.graph.initializers
        assert optimizer_state_bytes(b.graph) == 4 * 2 * 4

    def test_plain_sgd_no_state(self):
        b, grads = self._grads()
        attach_optimizer(b, grads, SGD(0.1))
        assert optimizer_state_bytes(b.graph) == 0

    def test_sliced_state_matches_grad_shape(self):
        b = GraphBuilder("g")
        w = b.initializer("w", np.zeros((8, 2), np.float32), trainable=True)
        g = b.initializer("w_grad", np.ones((4, 2), np.float32))
        attach_optimizer(b, {"w": "w_grad"}, SGD(0.1, momentum=0.9),
                         slice_k={"w": 4}, slice_axis={"w": 0})
        assert b.graph.initializers["w.momentum"].shape == (4, 2)

    def test_unknown_param_rejected(self):
        b = GraphBuilder("g")
        g = b.initializer("grad", np.ones(2, np.float32))
        with pytest.raises(CompileError):
            attach_optimizer(b, {"ghost": "grad"}, SGD(0.1))


class TestPrinter:
    def test_format_graph_truncation(self):
        b = GraphBuilder("g")
        x = b.input("x", (2,))
        h = x
        for _ in range(10):
            h = b.emit("relu", [h])
        b.mark_output(h)
        text = format_graph(b.graph, max_nodes=3)
        assert "more nodes" in text
        full = format_graph(b.graph)
        assert full.count("relu") >= 10

    def test_dtype_in_listing(self):
        b = GraphBuilder("g")
        b.input("ids", (2, 3), DType.INT64)
        assert "int64" in format_graph(b.graph)
