"""Tests for the binary step wire format and the shared-memory slab ring.

Correctness oracle throughout: the binary/shm fast paths must be
*byte-identical* to the JSON/pickle paths they replace — same losses,
same final state bytes — because they feed the same kernels; any drift
means the transport changed alignment or dtype somewhere.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ServeError
from repro.serve import FineTuneService, shm, wire
from repro.serve.shm import SlabRing
from repro.serve.wire import WireError

from conftest import make_mlp_graph


def build_mlp(batch: int):
    return make_mlp_graph(batch=batch, din=5, dhidden=6, dout=3,
                          seed=0)[0].graph


# ---------------------------------------------------------------------------
# frame round trips
# ---------------------------------------------------------------------------


class TestFrameRoundTrip:
    DTYPES = ["float32", "float64", "float16", "int64", "int32", "int8",
              "uint8", "bool"]
    SHAPES = [(), (1,), (7,), (3, 4), (2, 3, 5), (0,), (4, 0, 2)]

    def test_every_dtype_and_shape_round_trips(self):
        rng = np.random.default_rng(0)
        tensors = {}
        for i, dtype in enumerate(self.DTYPES):
            for j, shape in enumerate(self.SHAPES):
                arr = (rng.standard_normal(shape) * 10).astype(dtype)
                tensors[f"t{i}_{j}"] = arr
        meta = {"kind": "test", "nested": {"a": [1, 2.5, None, "s"]}}
        frame = wire.encode_frame(meta, tensors)
        got_meta, got = wire.decode_frame(frame)
        assert got_meta == meta
        assert set(got) == set(tensors)
        for name, arr in tensors.items():
            assert got[name].dtype == arr.dtype, name
            assert got[name].shape == arr.shape, name
            assert got[name].tobytes() == arr.tobytes(), name

    def test_big_endian_round_trips(self):
        arr = np.arange(6, dtype=">f4").reshape(2, 3)
        _, got = wire.decode_frame(wire.encode_frame(None, {"x": arr}))
        assert got["x"].dtype == arr.dtype
        assert got["x"].tobytes() == arr.tobytes()
        assert np.array_equal(got["x"].astype("<f4"), arr.astype("<f4"))

    def test_meta_only_frame(self):
        frame = wire.encode_frame({"loss": 0.5, "step": 3})
        meta, tensors = wire.decode_frame(frame)
        assert meta == {"loss": 0.5, "step": 3}
        assert tensors == {}

    def test_frame_nbytes_matches_encode(self):
        tensors = {"a": np.ones((3, 5), np.float32),
                   "b": np.arange(4, dtype=np.int64)}
        meta = {"k": "v" * 100}
        assert wire.frame_nbytes(meta, tensors) == \
            len(wire.encode_frame(meta, tensors))

    def test_zero_copy_views_then_copy_owns(self):
        frame = wire.encode_frame(None,
                                  {"x": np.arange(8, dtype=np.float32)})
        _, views = wire.decode_frame(frame)
        assert views["x"].base is not None  # a view into the frame
        _, copies = wire.decode_frame(frame, copy=True)
        assert copies["x"].flags.owndata or copies["x"].base is None \
            or copies["x"].flags.writeable
        copies["x"][0] = 99.0  # writable, detached from the frame
        _, again = wire.decode_frame(frame)
        assert again["x"][0] == 0.0

    def test_tensor_segments_are_64_byte_aligned(self):
        # alignment is load-bearing: numpy's ALIGNED flag steers kernel
        # selection, and byte-exactness vs the JSON path depends on it
        # (relative to the frame start: the shm ring places each frame on
        # a 64-byte boundary of a page-aligned segment, so frame-relative
        # 64-alignment is absolute alignment where it matters)
        frame = wire.encode_frame({"pad": "x" * 37}, {
            "a": np.ones(3, np.int8), "b": np.ones((2, 2), np.float64)})
        base = np.frombuffer(frame, dtype=np.uint8).ctypes.data
        _, tensors = wire.decode_frame(frame)
        for name, arr in tensors.items():
            assert (arr.ctypes.data - base) % 64 == 0, name

    def test_non_contiguous_tensor_is_refused(self):
        arr = np.ones((4, 4), np.float32).T[::2]
        with pytest.raises(WireError):
            wire.encode_frame(None, {"x": arr})

    def test_encode_into_overflow_is_clean(self):
        tensors = {"x": np.ones(1024, np.float64)}
        need = wire.frame_nbytes(None, tensors)
        buf = memoryview(bytearray(need // 2))
        with pytest.raises(WireError):
            wire.encode_into(buf, None, tensors)
        # exact-size buffer succeeds
        buf = memoryview(bytearray(need))
        assert wire.encode_into(buf, None, tensors) == need


# ---------------------------------------------------------------------------
# malformed frames
# ---------------------------------------------------------------------------


class TestMalformedFrames:
    def _good(self):
        return wire.encode_frame({"m": 1}, {"x": np.ones(4, np.float32)})

    def test_bad_magic(self):
        frame = bytearray(self._good())
        frame[:4] = b"EVIL"
        with pytest.raises(WireError):
            wire.decode_frame(bytes(frame))

    def test_truncations_never_crash(self):
        good = self._good()
        for cut in range(len(good)):
            with pytest.raises(WireError):
                wire.decode_frame(good[:cut])

    def test_oversized_header_claim(self):
        import struct
        frame = bytearray(self._good())
        hlen_at = len(wire.MAGIC)
        struct.pack_into(">I", frame, hlen_at, wire.MAX_HEADER_BYTES + 1)
        with pytest.raises(WireError):
            wire.decode_frame(bytes(frame))

    def test_header_is_not_json(self):
        good = self._good()
        prefix = len(wire.MAGIC) + 4
        frame = good[:prefix] + b"{not json!" + good[prefix + 10:]
        with pytest.raises(WireError):
            wire.decode_frame(frame)

    def test_random_garbage_fuzz(self):
        rng = np.random.default_rng(7)
        for size in (0, 1, 7, 8, 64, 4096):
            blob = rng.integers(0, 256, size, dtype=np.uint8).tobytes()
            if blob[:len(wire.MAGIC)] == wire.MAGIC:  # pragma: no cover
                blob = b"\x00" + blob[1:]
            with pytest.raises(WireError):
                wire.decode_frame(blob)


# ---------------------------------------------------------------------------
# the slab ring
# ---------------------------------------------------------------------------


class TestSlabRing:
    def test_lease_cycle_and_exhaustion(self):
        with SlabRing(2, 1 << 12) as ring:
            a = ring.acquire()
            b = ring.acquire()
            assert {a, b} == {0, 1}
            assert ring.free_slots() == 0
            with pytest.raises(ServeError):
                ring.acquire(timeout=0.05)
            ring.release(a)
            assert ring.acquire() == a

    def test_frame_round_trip_through_shared_memory(self):
        with SlabRing(1, 1 << 16) as ring:
            slot = ring.acquire()
            x = np.arange(12, dtype=np.float32).reshape(3, 4)
            ring.write_frame(slot, {"state": [], "feeds": ["x"]}, {"x": x})
            meta, tensors = ring.read_frame(slot)
            assert meta == {"state": [], "feeds": ["x"]}
            assert tensors["x"].tobytes() == x.tobytes()
            # zero-copy: a write through the view lands in the segment
            tensors["x"][0, 0] = 42.0
            _, again = ring.read_frame(slot)
            assert again["x"][0, 0] == 42.0
            del meta, tensors, again
            ring.release(slot)

    def test_torn_write_is_detected(self):
        with SlabRing(1, 1 << 12) as ring:
            slot = ring.acquire()
            ring.write_frame(slot, {"ok": True}, {})
            # a writer that died after begin_write leaves an odd seq
            shm.begin_write(ring._shm.buf, slot, ring.slot_bytes)
            with pytest.raises(ServeError, match="mid-write"):
                ring.read_frame(slot)

    def test_worker_busy_marker_is_torn_to_readers(self):
        with SlabRing(1, 1 << 12) as ring:
            slot = ring.acquire()
            ring.write_frame(slot, {"ok": True}, {})
            shm.mark_busy(ring._shm.buf, slot, ring.slot_bytes)
            with pytest.raises(ServeError, match="mid-write"):
                ring.read_frame(slot)
            shm.mark_done(ring._shm.buf, slot, ring.slot_bytes)
            meta, _ = ring.read_frame(slot)
            assert meta == {"ok": True}  # length survived the markers

    def test_oversized_payload_leaves_slot_committed(self):
        with SlabRing(1, 1 << 12) as ring:
            slot = ring.acquire()
            with pytest.raises(WireError):
                ring.write_frame(slot, None,
                                 {"x": np.ones(1 << 14, np.float64)})
            # the slot is committed-empty, not torn: reusable immediately
            ring.write_frame(slot, {"after": 1}, {})
            meta, _ = ring.read_frame(slot)
            assert meta == {"after": 1}

    def test_closed_ring_refuses_leases(self):
        ring = SlabRing(1, 1 << 12)
        ring.close()
        with pytest.raises(ServeError, match="closed"):
            ring.acquire(timeout=0.05)
        ring.close()  # idempotent


# ---------------------------------------------------------------------------
# channel parity: shm vs pickle vs thread — the byte-exactness oracle
# ---------------------------------------------------------------------------


def _run_losses_and_state(backend: str, channel: str = "shm"):
    rng = np.random.default_rng(7)
    examples = [(rng.standard_normal(5).astype(np.float32),
                 np.int64(rng.integers(0, 3))) for _ in range(10)]
    with FineTuneService(workers=2, max_batch=4, backend=backend,
                         worker_channel=channel) as service:
        session = service.create_session(build_mlp, model_id="mlp",
                                         scheme="full")
        losses = [service.submit(session.id, x, y).result(60).loss
                  for x, y in examples]
        snapshot = service.snapshot(session.id)
        metrics = service.metrics.as_dict()
    return losses, snapshot, metrics


class TestChannelParity:
    def test_shm_channel_is_byte_identical_to_pickle_and_thread(self):
        l_thread, s_thread, _ = _run_losses_and_state("thread")
        l_shm, s_shm, m_shm = _run_losses_and_state("process", "shm")
        l_pkl, s_pkl, m_pkl = _run_losses_and_state("process", "pickle")
        assert l_shm == l_pkl == l_thread
        assert set(s_shm) == set(s_pkl) == set(s_thread)
        for key in s_shm:
            assert s_shm[key].tobytes() == s_pkl[key].tobytes() \
                == s_thread[key].tobytes(), key
        # and the steps really took the channels they claim
        assert m_shm.get("serve.worker.steps_shm", 0) == 10
        assert m_shm.get("serve.worker.steps_pickle", 0) == 0
        assert m_pkl.get("serve.worker.steps_pickle", 0) == 10
        # the whole point: the shm channel pickles far fewer bytes
        assert m_shm["serve.worker.serialized_bytes"] \
            < m_pkl["serve.worker.serialized_bytes"]

    def test_oversized_payload_falls_back_to_pickle(self):
        # a ring too small for the frame must degrade, not fail
        rng = np.random.default_rng(3)
        with FineTuneService(workers=1, max_batch=2, backend="process",
                             worker_channel="shm",
                             shm_slot_bytes=256) as service:
            session = service.create_session(build_mlp, model_id="mlp",
                                             scheme="full")
            x = rng.standard_normal(5).astype(np.float32)
            result = service.submit(session.id, x, np.int64(1)).result(60)
            assert np.isfinite(result.loss)
            metrics = service.metrics.as_dict()
            assert metrics.get("serve.worker.shm_fallbacks", 0) >= 1
            assert metrics.get("serve.worker.steps_pickle", 0) >= 1


# ---------------------------------------------------------------------------
# slab-ring auto-sizing: slots sized from the model's frame, not a fixed slab
# ---------------------------------------------------------------------------


class TestRingAutoSizing:
    def test_auto_slot_bytes_rounds_to_granule_with_headroom(self):
        from repro.serve.workers import ProcessPoolEngine

        granule = 64 << 10
        # tiny frames get the floor, not the old 4 MiB slab
        assert ProcessPoolEngine._auto_slot_bytes(100) == granule
        # headroom: the sized slot always fits more than the measured need
        for need in (granule, granule + 1, 1 << 20, (4 << 20) + 17):
            sized = ProcessPoolEngine._auto_slot_bytes(need)
            assert sized >= need + need // 8
            assert sized % granule == 0

    def test_ring_created_lazily_and_grows_for_bigger_frames(self):
        from repro.serve.workers import ProcessPoolEngine

        engine = ProcessPoolEngine(1, channel="shm")
        try:
            assert engine._ring is None  # no frame measured yet
            small = {"x": np.zeros(8, np.float32)}
            ring1 = engine._ensure_ring({"state": [], "feeds": ["x"]}, small)
            assert engine.ring_resizes == 0
            assert ring1.slot_bytes == 64 << 10
            engine._ring_unref(ring1)

            big = {"x": np.zeros(1 << 18, np.float32)}  # 1 MiB frame
            ring2 = engine._ensure_ring({"state": [], "feeds": ["x"]}, big)
            assert ring2 is not ring1
            assert engine.ring_resizes == 1
            assert ring2.slot_bytes >= (1 << 20) + (1 << 17)
            # the small frame reuses the grown ring — no shrink churn
            ring3 = engine._ensure_ring({"state": [], "feeds": ["x"]}, small)
            assert ring3 is ring2
            engine._ring_unref(ring2)
            engine._ring_unref(ring3)
        finally:
            engine.shutdown()

    def test_retired_ring_stays_open_until_inflight_steps_drain(self):
        from repro.serve.workers import ProcessPoolEngine

        engine = ProcessPoolEngine(1, channel="shm")
        try:
            small = {"x": np.zeros(8, np.float32)}
            ring1 = engine._ensure_ring({"state": [], "feeds": ["x"]}, small)
            slot = ring1.acquire()  # a step holds a lease on the old ring

            big = {"x": np.zeros(1 << 18, np.float32)}
            ring2 = engine._ensure_ring({"state": [], "feeds": ["x"]}, big)
            assert ring2 is not ring1
            # the in-flight step's ring is retired, not closed under it
            ring1.write_frame(slot, {"still": "alive"}, {})
            meta, _ = ring1.read_frame(slot)
            assert meta == {"still": "alive"}
            ring1.release(slot)
            engine._ring_unref(ring1)  # last lease drains → now closed
            with pytest.raises(ServeError, match="closed"):
                ring1.acquire(timeout=0.05)
            engine._ring_unref(ring2)
        finally:
            engine.shutdown()

    def test_pinned_slot_bytes_still_creates_eagerly(self):
        from repro.serve.workers import ProcessPoolEngine

        engine = ProcessPoolEngine(1, channel="shm", slot_bytes=1 << 12)
        try:
            assert engine._ring is not None
            assert engine._ring.slot_bytes == 1 << 12
            # pinned rings never grow: oversized frames raise WireError
            # (run_step turns that into the per-step pickle fallback)
            big = {"x": np.zeros(1 << 14, np.float64)}
            with pytest.raises(WireError):
                engine._ensure_ring({"state": [], "feeds": ["x"]}, big)
        finally:
            engine.shutdown()
