"""Kernel correctness against numpy references, including Winograd."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.kernels import run_op
from repro.kernels.conv2d import col2im, conv2d_forward, im2col
from repro.kernels.winograd import transform_weights, winograd_conv2d


def naive_conv2d(x, w, stride=1, padding=0, groups=1):
    """O(N^7) reference convolution."""
    n, cin, h, wd = x.shape
    cout, cin_g, kh, kw = w.shape
    xp = np.pad(x, ((0, 0), (0, 0), (padding, padding), (padding, padding)))
    ho = (h + 2 * padding - kh) // stride + 1
    wo = (wd + 2 * padding - kw) // stride + 1
    out = np.zeros((n, cout, ho, wo), dtype=np.float32)
    cg_out = cout // groups
    for b in range(n):
        for o in range(cout):
            g = o // cg_out
            for i in range(ho):
                for j in range(wo):
                    patch = xp[b, g * cin_g:(g + 1) * cin_g,
                               i * stride:i * stride + kh,
                               j * stride:j * stride + kw]
                    out[b, o, i, j] = (patch * w[o]).sum()
    return out


class TestConv2d:
    @pytest.mark.parametrize("stride,padding,groups", [
        (1, 0, 1), (1, 1, 1), (2, 1, 1), (2, 0, 1), (1, 1, 4), (1, 2, 2),
    ])
    def test_matches_naive(self, rng, stride, padding, groups):
        x = rng.standard_normal((2, 4, 7, 7)).astype(np.float32)
        w = rng.standard_normal((8, 4 // groups, 3, 3)).astype(np.float32)
        got = conv2d_forward(x, w, stride, padding, groups)
        want = naive_conv2d(x, w, stride, padding, groups)
        np.testing.assert_allclose(got, want, atol=1e-4)

    def test_depthwise(self, rng):
        x = rng.standard_normal((2, 6, 5, 5)).astype(np.float32)
        w = rng.standard_normal((6, 1, 3, 3)).astype(np.float32)
        got = conv2d_forward(x, w, 1, 1, groups=6)
        want = naive_conv2d(x, w, 1, 1, groups=6)
        np.testing.assert_allclose(got, want, atol=1e-4)

    def test_im2col_col2im_adjoint(self, rng):
        """col2im is the transpose of im2col: <im2col(x), y> == <x, col2im(y)>."""
        x = rng.standard_normal((1, 2, 6, 6)).astype(np.float64)
        cols, ho, wo = im2col(x, 3, 3, 2, 2, 1, 1)
        y = rng.standard_normal(cols.shape)
        lhs = (cols * y).sum()
        rhs = (x * col2im(y, x.shape, 3, 3, 2, 2, 1, 1)).sum()
        assert abs(lhs - rhs) < 1e-9

    def test_fused_bias_activation(self, rng):
        x = rng.standard_normal((1, 3, 5, 5)).astype(np.float32)
        w = rng.standard_normal((4, 3, 3, 3)).astype(np.float32)
        bias = rng.standard_normal(4).astype(np.float32)
        [y] = run_op("conv2d", [x, w, bias],
                     {"padding": 1, "activation": "relu"})
        ref = np.maximum(
            conv2d_forward(x, w, 1, 1) + bias.reshape(1, -1, 1, 1), 0)
        np.testing.assert_allclose(y, ref, atol=1e-4)


class TestConvGrads:
    def test_dx_matches_numeric(self, rng):
        x = rng.standard_normal((1, 2, 5, 5)).astype(np.float32)
        w = rng.standard_normal((3, 2, 3, 3)).astype(np.float32)
        g = rng.standard_normal((1, 3, 5, 5)).astype(np.float32)
        [dx] = run_op("conv2d_dx", [g, w],
                      {"padding": 1, "input_shape": x.shape})
        eps = 1e-3
        # spot-check a few coordinates
        for idx in [(0, 0, 0, 0), (0, 1, 2, 3), (0, 1, 4, 4)]:
            hi, lo = x.copy(), x.copy()
            hi[idx] += eps
            lo[idx] -= eps
            num = ((conv2d_forward(hi, w, 1, 1) * g).sum()
                   - (conv2d_forward(lo, w, 1, 1) * g).sum()) / (2 * eps)
            assert abs(dx[idx] - num) < 1e-2

    def test_dw_matches_numeric(self, rng):
        x = rng.standard_normal((2, 2, 5, 5)).astype(np.float32)
        w = rng.standard_normal((3, 2, 3, 3)).astype(np.float32)
        g = rng.standard_normal((2, 3, 3, 3)).astype(np.float32)
        [dw] = run_op("conv2d_dw", [x, g],
                      {"stride": 2, "padding": 1, "kernel_hw": (3, 3)})
        eps = 1e-3
        for idx in [(0, 0, 0, 0), (2, 1, 1, 2), (1, 0, 2, 2)]:
            hi, lo = w.copy(), w.copy()
            hi[idx] += eps
            lo[idx] -= eps
            num = ((conv2d_forward(x, hi, 2, 1) * g).sum()
                   - (conv2d_forward(x, lo, 2, 1) * g).sum()) / (2 * eps)
            assert abs(dw[idx] - num) < 1e-2

    def test_grouped_dx_dw_shapes(self, rng):
        x = rng.standard_normal((1, 4, 6, 6)).astype(np.float32)
        w = rng.standard_normal((4, 1, 3, 3)).astype(np.float32)
        g = rng.standard_normal((1, 4, 6, 6)).astype(np.float32)
        [dx] = run_op("conv2d_dx", [g, w],
                      {"padding": 1, "groups": 4, "input_shape": x.shape})
        [dw] = run_op("conv2d_dw", [x, g],
                      {"padding": 1, "groups": 4, "kernel_hw": (3, 3)})
        assert dx.shape == x.shape and dw.shape == w.shape


class TestWinograd:
    @pytest.mark.parametrize("hw,padding", [(8, 1), (7, 1), (6, 0), (9, 1)])
    def test_matches_direct(self, rng, hw, padding):
        x = rng.standard_normal((2, 3, hw, hw)).astype(np.float32)
        w = rng.standard_normal((5, 3, 3, 3)).astype(np.float32)
        got = winograd_conv2d(x, w, padding=padding)
        want = conv2d_forward(x, w, 1, padding)
        np.testing.assert_allclose(got, want, atol=1e-3)

    def test_precomputed_transform(self, rng):
        x = rng.standard_normal((1, 2, 6, 6)).astype(np.float32)
        w = rng.standard_normal((4, 2, 3, 3)).astype(np.float32)
        u = transform_weights(w)
        got = winograd_conv2d(x, w, padding=1, u=u)
        want = conv2d_forward(x, w, 1, 1)
        np.testing.assert_allclose(got, want, atol=1e-3)

    def test_rejects_non_3x3(self, rng):
        with pytest.raises(ValueError):
            winograd_conv2d(np.zeros((1, 1, 8, 8), np.float32),
                            np.zeros((1, 1, 5, 5), np.float32))

    def test_kernel_dispatch_via_algo_attr(self, rng):
        x = rng.standard_normal((1, 3, 8, 8)).astype(np.float32)
        w = rng.standard_normal((4, 3, 3, 3)).astype(np.float32)
        [direct] = run_op("conv2d", [x, w], {"padding": 1})
        [wino] = run_op("conv2d", [x, w], {"padding": 1, "algo": "winograd"})
        np.testing.assert_allclose(direct, wino, atol=1e-3)


class TestPooling:
    def test_maxpool(self, rng):
        x = rng.standard_normal((1, 2, 4, 4)).astype(np.float32)
        [y] = run_op("maxpool2d", [x], {"kernel": 2, "stride": 2})
        assert y.shape == (1, 2, 2, 2)
        assert y[0, 0, 0, 0] == x[0, 0, :2, :2].max()

    def test_maxpool_grad_routes_to_argmax(self):
        x = np.array([[[[1., 5.], [2., 3.]]]], dtype=np.float32)
        g = np.array([[[[7.]]]], dtype=np.float32)
        [dx] = run_op("maxpool2d_grad", [x, g], {"kernel": 2, "stride": 2})
        assert dx[0, 0, 0, 1] == 7.0
        assert dx.sum() == 7.0

    def test_avgpool_grad_uniform(self):
        g = np.ones((1, 1, 1, 1), dtype=np.float32)
        [dx] = run_op("avgpool2d_grad", [g],
                      {"kernel": 2, "stride": 2, "input_shape": (1, 1, 2, 2)})
        np.testing.assert_allclose(dx, 0.25 * np.ones((1, 1, 2, 2)))

    def test_global_avg_pool(self, rng):
        x = rng.standard_normal((2, 3, 4, 4)).astype(np.float32)
        [y] = run_op("global_avg_pool", [x], {})
        np.testing.assert_allclose(y, x.mean(axis=(2, 3)), atol=1e-6)


class TestNormSoftmax:
    def test_softmax_rows_sum_to_one(self, rng):
        x = (rng.standard_normal((3, 7)) * 10).astype(np.float32)
        [y] = run_op("softmax", [x], {"axis": -1})
        np.testing.assert_allclose(y.sum(-1), np.ones(3), atol=1e-5)

    def test_softmax_stable_for_large_inputs(self):
        x = np.array([[1000.0, 1000.0]], dtype=np.float32)
        [y] = run_op("softmax", [x], {"axis": -1})
        assert np.isfinite(y).all()

    def test_log_softmax_consistent(self, rng):
        x = rng.standard_normal((2, 5)).astype(np.float32)
        [ls] = run_op("log_softmax", [x], {"axis": -1})
        [s] = run_op("softmax", [x], {"axis": -1})
        np.testing.assert_allclose(np.exp(ls), s, atol=1e-5)

    def test_layernorm_normalizes(self, rng):
        x = rng.standard_normal((4, 8)).astype(np.float32)
        gamma, beta = np.ones(8, np.float32), np.zeros(8, np.float32)
        [y] = run_op("layernorm", [x, gamma, beta], {"eps": 1e-5})
        np.testing.assert_allclose(y.mean(-1), np.zeros(4), atol=1e-5)
        np.testing.assert_allclose(y.std(-1), np.ones(4), atol=1e-3)

    def test_rmsnorm(self, rng):
        x = rng.standard_normal((4, 8)).astype(np.float32)
        gamma = np.full(8, 2.0, np.float32)
        [y] = run_op("rmsnorm", [x, gamma], {"eps": 1e-6})
        rms = np.sqrt((x * x).mean(-1, keepdims=True) + 1e-6)
        np.testing.assert_allclose(y, 2 * x / rms, atol=1e-5)


class TestEmbedding:
    def test_lookup(self, rng):
        table = rng.standard_normal((10, 4)).astype(np.float32)
        ids = np.array([[1, 3], [9, 1]])
        [y] = run_op("embedding", [table, ids], {})
        np.testing.assert_array_equal(y[0, 0], table[1])
        np.testing.assert_array_equal(y[1, 0], table[9])

    def test_grad_accumulates_duplicates(self):
        ids = np.array([[0, 0, 2]])
        g = np.ones((1, 3, 4), dtype=np.float32)
        [dt] = run_op("embedding_grad", [ids, g], {"num_rows": 5})
        assert dt[0].sum() == 8.0  # two hits on row 0
        assert dt[2].sum() == 4.0
        assert dt[1].sum() == 0.0

    def test_onehot(self):
        [y] = run_op("onehot", [np.array([2, 0])], {"depth": 3})
        np.testing.assert_array_equal(
            y, np.array([[0, 0, 1], [1, 0, 0]], np.float32))


@given(st.integers(1, 4), st.integers(1, 6), st.integers(1, 6))
@settings(max_examples=25, deadline=None)
def test_elementwise_ops_match_numpy(n, h, w):
    rng = np.random.default_rng(n * 100 + h * 10 + w)
    x = rng.standard_normal((n, h, w)).astype(np.float32)
    y = rng.standard_normal((n, h, w)).astype(np.float32)
    checks = {
        "add": x + y, "sub": x - y, "mul": x * y,
        "maximum": np.maximum(x, y), "minimum": np.minimum(x, y),
    }
    for op, want in checks.items():
        [got] = run_op(op, [x, y], {})
        np.testing.assert_allclose(got, want, atol=1e-6)
    [got] = run_op("relu6", [x * 10], {})
    np.testing.assert_allclose(got, np.clip(x * 10, 0, 6), atol=1e-6)
    [got] = run_op("step", [x], {})
    np.testing.assert_array_equal(got, (x > 0).astype(np.float32))
