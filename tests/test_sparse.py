"""Sparse-update schemes, pruning equivalence, cost model, and search."""

import numpy as np
import pytest

from repro.errors import SchemeError
from repro.ir import GraphBuilder
from repro.models import build_model, paper_scheme
from repro.runtime.compiler import CompileOptions, compile_training
from repro.sparse import (SearchSpace, SensitivityResult, UpdateScheme,
                          analyze_sensitivity, backward_op_count, bias_only,
                          evolutionary_search, full_update,
                          prune_training_graph, scheme_backward_flops,
                          scheme_memory_cost)
from repro.train import SGD

from conftest import make_mlp_graph


class TestSchemeResolve:
    def test_full_update_covers_trainables(self):
        b, _ = make_mlp_graph()
        scheme = full_update(b.graph)
        assert set(scheme.updates) == b.graph.trainable

    def test_unknown_param_rejected(self):
        b, _ = make_mlp_graph()
        with pytest.raises(SchemeError):
            UpdateScheme("s", {"ghost": 1.0}).resolve(b.graph)

    def test_bad_ratio_rejected(self):
        b, _ = make_mlp_graph()
        with pytest.raises(SchemeError):
            UpdateScheme("s", {"w1": 1.5}).resolve(b.graph)
        with pytest.raises(SchemeError):
            UpdateScheme("s", {"w1": 0.0}).resolve(b.graph)

    def test_ratio_on_bias_rejected(self):
        b, _ = make_mlp_graph()
        with pytest.raises(SchemeError):
            UpdateScheme("s", {"b1": 0.5}).resolve(b.graph)

    def test_channel_slice_geometry_linear(self):
        b, _ = make_mlp_graph(din=8)
        resolved = UpdateScheme("s", {"w1": 0.5}).resolve(b.graph)
        assert resolved.slice_k["w1"] == 4
        assert resolved.slice_axis["w1"] == 0

    def test_channel_slice_geometry_conv(self):
        b = GraphBuilder("g")
        x = b.input("x", (1, 8, 4, 4))
        w = b.initializer("w", np.zeros((4, 8, 3, 3), np.float32),
                          trainable=True)
        y = b.conv2d(x, w, padding=1)
        b.mark_output(y)
        resolved = UpdateScheme("s", {"w": 0.25}).resolve(b.graph)
        assert resolved.slice_k["w"] == 2
        assert resolved.slice_axis["w"] == 1

    def test_ratio_rounding_to_full(self):
        b, _ = make_mlp_graph(din=2)
        resolved = UpdateScheme("s", {"w1": 0.99}).resolve(b.graph)
        assert "w1" not in resolved.slice_k  # rounds to full update

    def test_non_trainable_rejected(self):
        b, _ = make_mlp_graph()
        b.initializer("frozen", np.zeros(2, np.float32))
        # keep it referenced so DCE doesn't drop it
        with pytest.raises(SchemeError):
            UpdateScheme("s", {"frozen": 1.0}).resolve(b.graph)


class TestSchemeBuilders:
    def test_bias_only_on_model(self):
        g = build_model("mobilenetv2_micro", batch=2)
        scheme = bias_only(g)
        meta = g.metadata["params"]
        for param in scheme.updates:
            role = meta[param]["role"]
            assert role in ("bias", "norm_scale", "norm_shift") \
                or meta[param].get("classifier")

    def test_paper_scheme_selects_last_blocks(self):
        g = build_model("mobilenetv2_micro", batch=2)
        scheme = paper_scheme(g)
        meta = g.metadata["params"]
        blocks = sorted({m["block"] for m in meta.values() if "block" in m})
        touched = {meta[p].get("block") for p in scheme.updates
                   if "block" in meta[p]}
        assert touched and max(touched) == blocks[-1]
        assert min(touched) > blocks[0]  # early blocks frozen

    def test_paper_scheme_first_pw_only(self):
        g = build_model("mobilenetv2_micro", batch=2)
        scheme = paper_scheme(g)
        meta = g.metadata["params"]
        for p in scheme.updates:
            if meta[p].get("role") == "weight" and "block" in meta[p]:
                assert meta[p]["role_in_block"] == "first_pw"


class TestPruning:
    def _training_graph(self, scheme=None, masked=False):
        b, _ = make_mlp_graph()
        options = CompileOptions(fusion=False, winograd=False, layout=False,
                                 reorder=False, cse=False,
                                 constant_folding=False, masked_sparse=masked)
        return compile_training(b.graph, optimizer=SGD(0.1), scheme=scheme,
                                options=options), b.graph

    def test_prune_full_graph_matches_direct_sparse(self):
        scheme = UpdateScheme("s", {"w2": 1.0, "b2": 1.0})
        direct, fwd = self._training_graph(scheme)
        full, _ = self._training_graph(None)
        report = prune_training_graph(full.graph, scheme)
        assert report.applies_removed == 2
        assert report.nodes_after < report.nodes_before
        direct_ops = sorted(n.op_type for n in direct.graph.nodes)
        pruned_ops = sorted(n.op_type for n in full.graph.nodes)
        assert direct_ops == pruned_ops

    def test_prune_rejects_channel_sparse(self):
        full, _ = self._training_graph(None)
        with pytest.raises(SchemeError):
            prune_training_graph(full.graph, UpdateScheme("s", {"w1": 0.5}))

    def test_backward_op_count_shrinks_with_shallow_scheme(self):
        deep, _ = self._training_graph(UpdateScheme("s", {"w1": 1.0}))
        shallow, _ = self._training_graph(UpdateScheme("s", {"w2": 1.0}))
        assert backward_op_count(shallow.graph) \
            < backward_op_count(deep.graph)


class TestCostModel:
    def test_bias_only_needs_no_activations(self):
        b, _ = make_mlp_graph()
        cost = scheme_memory_cost(b.graph,
                                  UpdateScheme("s", {"b1": 1.0, "b2": 1.0}))
        assert cost.saved_activation_bytes == 0
        assert cost.gradient_bytes > 0

    def test_ratio_scales_activation_cost(self):
        b, _ = make_mlp_graph(din=8)
        full = scheme_memory_cost(b.graph, UpdateScheme("s", {"w1": 1.0}))
        half = scheme_memory_cost(b.graph, UpdateScheme("s", {"w1": 0.5}))
        assert half.saved_activation_bytes == full.saved_activation_bytes // 2

    def test_optimizer_state_slots(self):
        b, _ = make_mlp_graph()
        scheme = UpdateScheme("s", {"w1": 1.0})
        sgd = scheme_memory_cost(b.graph, scheme, optimizer="sgd")
        adam = scheme_memory_cost(b.graph, scheme, optimizer="adam")
        assert sgd.optimizer_state_bytes == 0
        assert adam.optimizer_state_bytes == 2 * adam.gradient_bytes

    def test_monotone_in_scheme_size(self):
        g = build_model("mcunet_micro", batch=2)
        small = scheme_memory_cost(g, paper_scheme(g))
        big = scheme_memory_cost(g, full_update(g))
        assert small.total_bytes < big.total_bytes

    def test_backward_flops_sparse_below_full(self):
        g = build_model("mcunet_micro", batch=2)
        assert scheme_backward_flops(g, paper_scheme(g)) \
            < scheme_backward_flops(g, full_update(g))


class TestSensitivityAndSearch:
    def test_sensitivity_records_deltas(self):
        b, _ = make_mlp_graph()
        accs = {"baseline": 0.5, "w1": 0.6, "w2": 0.8}

        def evaluate(scheme):
            for name in ("w1", "w2"):
                if name in scheme.updates:
                    return accs[name]
            return accs["baseline"]

        result = analyze_sensitivity(b.graph, ["w1", "w2"], evaluate)
        assert result.contribution("w2") == pytest.approx(0.3)
        assert result.contribution("w1") == pytest.approx(0.1)
        assert result.top(1)[0][0] == "w2"

    def test_contribution_interpolates_ratio(self):
        result = SensitivityResult(0.0, {("w", 0.5): 0.1, ("w", 1.0): 0.3})
        assert result.contribution("w", 0.75) == pytest.approx(0.2)
        assert result.contribution("w", 0.25) == pytest.approx(0.1)

    def test_search_finds_planted_optimum_within_budget(self):
        b, _ = make_mlp_graph(din=8, dhidden=8)
        # Plant: w2 is worth much more than w1 per byte.
        sens = SensitivityResult(0.0, {
            ("w1", 0.5): 0.01, ("w1", 1.0): 0.02,
            ("w2", 0.5): 0.20, ("w2", 1.0): 0.40,
        })
        space = SearchSpace(
            weight_options={"w1": (0, 0.5, 1.0), "w2": (0, 0.5, 1.0)},
            bias_candidates=("b1", "b2"),
        )
        budget = scheme_memory_cost(
            b.graph, UpdateScheme("m", {"w2": 1.0, "b1": 1.0, "b2": 1.0})
        ).total_bytes + 64
        result = evolutionary_search(
            b.graph, space, sens, budget, population=32, generations=20,
            seed=1, bias_contribution=lambda n: 0.05)
        assert result.memory_bytes <= budget
        assert result.scheme.updates.get("w2") == 1.0
        assert "w1" not in result.scheme.updates

    def test_search_history_improves(self):
        b, _ = make_mlp_graph()
        sens = SensitivityResult(0.0, {("w1", 1.0): 0.1, ("w2", 1.0): 0.2})
        space = SearchSpace(weight_options={"w1": (0, 1.0), "w2": (0, 1.0)},
                            bias_candidates=("b1",))
        result = evolutionary_search(
            b.graph, space, sens, memory_budget_bytes=1 << 30,
            population=16, generations=10, seed=0,
            bias_contribution=lambda n: 0.01)
        assert result.history[-1] >= result.history[0]
        assert result.fitness == pytest.approx(0.31, abs=1e-6)

    def test_empty_space_rejected(self):
        b, _ = make_mlp_graph()
        with pytest.raises(SchemeError):
            evolutionary_search(b.graph, SearchSpace(weight_options={}),
                                SensitivityResult(0.0), 1 << 20)
