"""Algebraic rewrite pass: each rule, plus random-graph semantic
preservation (property test)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ir import GraphBuilder, validate_graph
from repro.passes import AlgebraicRewritePass, PassContext
from repro.runtime import interpret


def _apply(graph):
    return AlgebraicRewritePass().run(graph, PassContext())


class TestIdentityRules:
    def test_double_transpose_cancels(self, rng):
        b = GraphBuilder("g")
        x = b.input("x", (2, 3, 4))
        t1 = b.transpose(x, (2, 0, 1))
        t2 = b.transpose(t1, (1, 2, 0))
        out = b.emit("relu", [t2])
        b.mark_output(out)
        result = _apply(b.graph)
        assert result.changed
        validate_graph(b.graph)
        assert all(n.op_type != "transpose" for n in b.graph.nodes)
        xa = rng.standard_normal((2, 3, 4)).astype(np.float32)
        np.testing.assert_allclose(
            interpret(b.graph, {"x": xa})[out], np.maximum(xa, 0))

    def test_transpose_chain_merges(self):
        b = GraphBuilder("g")
        x = b.input("x", (2, 3, 4))
        t1 = b.transpose(x, (1, 0, 2))
        t2 = b.transpose(t1, (0, 2, 1))
        b.mark_output(t2)
        _apply(b.graph)
        transposes = [n for n in b.graph.nodes if n.op_type == "transpose"]
        assert len(transposes) == 1
        validate_graph(b.graph)

    def test_reshape_chain_merges(self, rng):
        b = GraphBuilder("g")
        x = b.input("x", (2, 12))
        r1 = b.reshape(x, (2, 3, 4))
        r2 = b.reshape(r1, (24,))
        b.mark_output(r2)
        _apply(b.graph)
        assert len(b.graph.nodes) == 1
        xa = rng.standard_normal((2, 12)).astype(np.float32)
        np.testing.assert_allclose(
            interpret(b.graph, {"x": xa})[r2], xa.reshape(24))

    def test_double_neg_cancels(self, rng):
        b = GraphBuilder("g")
        x = b.input("x", (3,))
        out = b.emit("tanh", [b.neg(b.neg(x))])
        b.mark_output(out)
        _apply(b.graph)
        assert all(n.op_type != "neg" for n in b.graph.nodes)
        xa = rng.standard_normal(3).astype(np.float32)
        np.testing.assert_allclose(interpret(b.graph, {"x": xa})[out],
                                   np.tanh(xa), atol=1e-6)

    def test_useless_cast_pad_slice_removed(self):
        b = GraphBuilder("g")
        x = b.input("x", (4, 4))
        c = b.emit("cast", [x], {"dtype": "float32"})
        p = b.emit("pad", [c], {"pads": ((0, 0), (0, 0))})
        s = b.slice(p, 0, 0, 4)
        out = b.emit("relu", [s])
        b.mark_output(out)
        result = _apply(b.graph)
        assert result.stats["rewrites"] >= 3
        assert len(b.graph.nodes) == 1

    def test_mul_one_add_zero_removed(self):
        b = GraphBuilder("g")
        x = b.input("x", (3,))
        one = b.constant(np.float32(1.0))
        zero = b.constant(np.float32(0.0))
        out = b.emit("sigmoid", [b.add(b.mul(x, one), zero)])
        b.mark_output(out)
        _apply(b.graph)
        ops = [n.op_type for n in b.graph.nodes]
        assert "mul" not in ops and "add" not in ops

    def test_mul_by_real_constant_kept(self):
        b = GraphBuilder("g")
        x = b.input("x", (3,))
        two = b.constant(np.float32(2.0))
        out = b.mul(x, two)
        b.mark_output(out)
        result = _apply(b.graph)
        assert not result.changed

    def test_broadcasting_mul_one_not_removed(self):
        """mul(scalar_x, ones_vector) changes shape -> must be kept."""
        b = GraphBuilder("g")
        x = b.input("x", (1,))
        ones = b.initializer("ones", np.ones(1, np.float32))
        out = b.mul(x, ones)
        b.mark_output(out)
        # Same shape here, so it may be removed — but a true broadcast:
        b2 = GraphBuilder("g2")
        x2 = b2.input("x", (3, 1))
        one = b2.constant(np.float32(1.0))
        broad = b2.broadcast_to(b2.mul(x2, one), (3, 4))
        b2.mark_output(broad)
        _apply(b2.graph)
        validate_graph(b2.graph)

    def test_output_rewiring(self, rng):
        """A removed node whose output is a graph output gets rewired."""
        b = GraphBuilder("g")
        x = b.input("x", (2, 2))
        t = b.transpose(b.transpose(x, (1, 0)), (1, 0))
        b.mark_output(t)
        _apply(b.graph)
        xa = rng.standard_normal((2, 2)).astype(np.float32)
        out = interpret(b.graph, {"x": xa})
        np.testing.assert_allclose(list(out.values())[0], xa)


@given(st.integers(0, 500))
@settings(max_examples=25, deadline=None)
def test_rewrites_preserve_semantics_on_random_graphs(seed):
    """Property: random graphs with rewrite opportunities compute the same
    function before and after the pass."""
    rng = np.random.default_rng(seed)
    b = GraphBuilder("g")
    x = b.input("x", (2, 3, 4))
    value = x
    for _ in range(int(rng.integers(2, 8))):
        choice = rng.integers(0, 6)
        shape = b.shape(value)
        if choice == 0:
            perm = tuple(rng.permutation(len(shape)).tolist())
            value = b.transpose(value, perm)
        elif choice == 1:
            value = b.reshape(value, (-1,))
            value = b.reshape(value, (2, 3, 4))
        elif choice == 2:
            value = b.neg(b.neg(value))
        elif choice == 3:
            value = b.mul(value, b.constant(np.float32(1.0)))
        elif choice == 4:
            value = b.emit("tanh", [value])
        else:
            value = b.add(value, b.constant(np.float32(0.0)))
    b.mark_output(value)

    xa = rng.standard_normal((2, 3, 4)).astype(np.float32)
    before = interpret(b.graph, {"x": xa})[b.graph.outputs[0]]
    AlgebraicRewritePass().run(b.graph, PassContext())
    validate_graph(b.graph)
    after = interpret(b.graph, {"x": xa})[b.graph.outputs[0]]
    np.testing.assert_allclose(before, after, atol=1e-6)


def test_rewrite_shrinks_real_training_graph():
    """Autodiff emits transpose-into-matmul chains that the pass folds."""
    from repro.models import build_model
    from repro.runtime.compiler import CompileOptions, compile_training
    from repro.train import SGD

    forward = build_model("bert_micro", batch=2, seq_len=8, num_classes=2)
    program = compile_training(
        forward, optimizer=SGD(0.01),
        options=CompileOptions(materialize_state=False, fusion=False,
                               cse=False, constant_folding=False,
                               rewrite=False))
    before = len(program.graph.nodes)
    result = AlgebraicRewritePass().run(program.graph, PassContext())
    validate_graph(program.graph)
    assert result.stats["rewrites"] > 0
    assert len(program.graph.nodes) < before
    folded = [n for n in program.graph.nodes if n.op_type == "matmul"
              and (n.attrs.get("trans_a") or n.attrs.get("trans_b"))]
    assert folded, "expected matmul nodes with folded transposes"


class TestMatmulTransposeFolding:
    def test_folds_weight_transpose(self, rng):
        b = GraphBuilder("g")
        x = b.input("x", (4, 6))
        w = b.initializer(
            "w", rng.standard_normal((5, 6)).astype(np.float32))
        y = b.matmul(x, b.transpose(w, (1, 0)))
        b.mark_output(y)
        result = _apply(b.graph)
        assert result.stats["rewrites"] > 0
        validate_graph(b.graph)
        assert all(n.op_type != "transpose" for n in b.graph.nodes)
        (mm,) = [n for n in b.graph.nodes if n.op_type == "matmul"]
        assert mm.attrs.get("trans_b") is True
        xa = rng.standard_normal((4, 6)).astype(np.float32)
        np.testing.assert_allclose(
            interpret(b.graph, {"x": xa})[y],
            xa @ b.graph.initializers["w"].T, rtol=1e-5)

    def test_folds_both_sides_batched(self, rng):
        b = GraphBuilder("g")
        a = b.input("a", (2, 3, 4, 6))
        c = b.input("c", (2, 3, 5, 4))
        y = b.matmul(b.transpose(a, (0, 1, 3, 2)),
                     b.transpose(c, (0, 1, 3, 2)))
        b.mark_output(y)
        _apply(b.graph)
        validate_graph(b.graph)
        (mm,) = [n for n in b.graph.nodes if n.op_type == "matmul"]
        assert mm.attrs.get("trans_a") and mm.attrs.get("trans_b")
        aa = rng.standard_normal((2, 3, 4, 6)).astype(np.float32)
        ca = rng.standard_normal((2, 3, 5, 4)).astype(np.float32)
        want = np.swapaxes(aa, -1, -2) @ np.swapaxes(ca, -1, -2)
        np.testing.assert_allclose(
            interpret(b.graph, {"a": aa, "c": ca})[y], want, rtol=1e-5)

    def test_skips_non_last_two_perm(self, rng):
        b = GraphBuilder("g")
        a = b.input("a", (4, 2, 3, 6))
        c = b.input("c", (2, 3, 6, 5))
        # (1, 2, 0, 3) moves a batch axis; it must NOT fold.
        y = b.matmul(b.transpose(a, (1, 2, 0, 3)), c)
        b.mark_output(y)
        result = _apply(b.graph)
        assert not result.changed
        assert any(n.op_type == "transpose" for n in b.graph.nodes)

    def test_double_fold_cancels_flag(self, rng):
        """transpose on an already-trans_b matmul toggles the flag off."""
        b = GraphBuilder("g")
        x = b.input("x", (4, 6))
        w = b.initializer(
            "w", rng.standard_normal((6, 5)).astype(np.float32))
        t1 = b.transpose(w, (1, 0))
        t2 = b.transpose(t1, (1, 0))
        y = b.matmul(x, t2)
        b.mark_output(y)
        _apply(b.graph)
        validate_graph(b.graph)
        (mm,) = [n for n in b.graph.nodes if n.op_type == "matmul"]
        assert not mm.attrs.get("trans_b", False)
        xa = rng.standard_normal((4, 6)).astype(np.float32)
        np.testing.assert_allclose(
            interpret(b.graph, {"x": xa})[y],
            xa @ b.graph.initializers["w"], rtol=1e-5)
